//! Deterministic fault injection for cluster simulations.
//!
//! Real clusters are not the benign world the rest of this crate draws:
//! Fig. 3's 40-day mpiGraph trace shows links sagging and recovering, and
//! production fleets lose whole nodes mid-campaign. A [`FaultPlan`] is a
//! seeded, serializable description of such an episode — degraded links,
//! straggling GPUs, dead nodes/GPUs, and corrupted profiler readings —
//! that can be layered on top of any [`BandwidthMatrix`]/topology. Every
//! decision the plan makes (does this measurement attempt fail? is this
//! profiling sample lost?) is a pure hash of `(seed, coordinates)`, so a
//! drill replays bit-identically at any thread count and on any machine,
//! without touching the profiler's noise RNG stream.

use crate::bandwidth::BandwidthMatrix;
use crate::error::ClusterError;
use crate::temporal::TemporalDrift;
use crate::topology::{ClusterTopology, GpuId, NodeId};
use serde::{Deserialize, Serialize};

/// A directed node-to-node link running below its usual attained
/// bandwidth (congestion, a flaky cable, a misbehaving switch port).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedLink {
    /// Source node of the degraded direction.
    pub from_node: usize,
    /// Destination node of the degraded direction.
    pub to_node: usize,
    /// Multiplier in `(0, 1]` applied to every GPU pair crossing the
    /// link in this direction.
    pub factor: f64,
}

/// A GPU whose links all run slow (thermal throttling, a PCIe downgrade).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerGpu {
    /// The straggling GPU (global index).
    pub gpu: usize,
    /// Slowdown factor `>= 1`; adjacent link bandwidths are divided by it.
    pub slowdown: f64,
}

/// How an injected corruption mangles a profiler reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The benchmark returns NaN (a crashed measurement process).
    Nan,
    /// The benchmark returns zero (a timed-out transfer).
    Zero,
    /// The benchmark returns a wildly implausible number (unit confusion,
    /// bit flip): far outside the plausibility band.
    WildOutlier,
}

/// One GPU pair whose *first* profiler reading comes back corrupted; the
/// robust profiler's retry path must recover or impute it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptPair {
    /// Source GPU (global index).
    pub from_gpu: usize,
    /// Destination GPU (global index).
    pub to_gpu: usize,
    /// Corruption shape: `"nan"`, `"zero"`, or `"outlier"`.
    pub kind: String,
}

impl CorruptPair {
    /// The parsed corruption kind, if `kind` names one.
    pub fn corruption(&self) -> Option<CorruptionKind> {
        match self.kind.as_str() {
            "nan" => Some(CorruptionKind::Nan),
            "zero" => Some(CorruptionKind::Zero),
            "outlier" => Some(CorruptionKind::WildOutlier),
            _ => None,
        }
    }
}

/// A day-indexed temporal-drift episode: the ground-truth bandwidth
/// matrix is replaced by day `day` of the mean-reverting
/// [`TemporalDrift`] walk (Fig. 3's 40-day mpiGraph trace) before any
/// other ground-truth fault applies. Day 0 is the base matrix itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftEpisode {
    /// Which day of the drift walk to apply (0 = base matrix).
    pub day: usize,
    /// Per-day log-space noise scale of the walk.
    #[serde(default = "default_daily_sigma")]
    pub daily_sigma: f64,
    /// Mean-reversion strength toward the base matrix, `[0, 1]`.
    #[serde(default = "default_reversion")]
    pub reversion: f64,
}

fn default_daily_sigma() -> f64 {
    TemporalDrift::default().daily_sigma
}

fn default_reversion() -> f64 {
    TemporalDrift::default().reversion
}

/// A seeded, serializable description of one cluster-fault episode.
///
/// The plan separates *ground-truth* faults (degraded links, stragglers —
/// they change what a perfect profiler would see, via
/// [`Self::apply_to_truth`]) from *measurement* faults (corrupt pairs,
/// random measurement failures — they change only what the profiler
/// reports) and *availability* faults (failed GPUs/nodes — the degraded
/// configurator must exclude and reconfigure around them).
///
/// The default value is the zero-fault plan; running any fault-aware path
/// under it must reproduce the fault-free behavior bit for bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the plan's own stochastic decisions (measurement
    /// failures, sample loss). Independent of the profiler's noise seed.
    #[serde(default)]
    pub seed: u64,
    /// Links running below their usual attained bandwidth.
    #[serde(default)]
    pub degraded_links: Vec<DegradedLink>,
    /// GPUs whose links all run slow.
    #[serde(default)]
    pub straggler_gpus: Vec<StragglerGpu>,
    /// Dead GPUs (global indices). Their host nodes are cordoned.
    #[serde(default)]
    pub failed_gpus: Vec<usize>,
    /// Dead nodes; every hosted GPU is excluded.
    #[serde(default)]
    pub failed_nodes: Vec<usize>,
    /// GPU pairs whose first profiler reading comes back corrupted.
    #[serde(default)]
    pub corrupt_pairs: Vec<CorruptPair>,
    /// Probability in `[0, 1]` that any single measurement attempt fails
    /// outright (decided per `(pair, attempt)` by a seeded hash).
    #[serde(default)]
    pub measurement_failure_rate: f64,
    /// Probability in `[0, 1]` that a memory-profiling sample is lost
    /// (decided per sample index by a seeded hash). At `1.0` every sample
    /// is lost, forcing the analytic-estimator fallback.
    #[serde(default)]
    pub sample_loss_rate: f64,
    /// Temporal-drift episode applied to the ground truth before the
    /// link/straggler faults above.
    #[serde(default)]
    pub drift: Option<DriftEpisode>,
}

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from hashed coordinates; pure, so fault
/// decisions never perturb (or depend on) any RNG stream.
fn hash01(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut h = splitmix64(seed ^ splitmix64(tag));
    h = splitmix64(h ^ splitmix64(a));
    h = splitmix64(h ^ splitmix64(b));
    h = splitmix64(h ^ splitmix64(c));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Whether this plan injects nothing at all.
    pub fn is_zero_fault(&self) -> bool {
        self.degraded_links.is_empty()
            && self.straggler_gpus.is_empty()
            && self.failed_gpus.is_empty()
            && self.failed_nodes.is_empty()
            && self.corrupt_pairs.is_empty()
            && self.measurement_failure_rate == 0.0
            && self.sample_loss_rate == 0.0
            && self.drift.is_none()
    }

    /// Checks the plan against a topology: every referenced GPU/node must
    /// exist, factors and rates must be in range, corruption kinds must
    /// be recognized.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidFaultPlan`] describing the first problem.
    pub fn validate(&self, topo: &ClusterTopology) -> Result<(), ClusterError> {
        let bad = |reason: String| Err(ClusterError::InvalidFaultPlan { reason });
        let (nodes, gpus) = (topo.num_nodes(), topo.num_gpus());
        for l in &self.degraded_links {
            if l.from_node >= nodes || l.to_node >= nodes {
                return bad(format!(
                    "degraded link {}->{} references a node >= {nodes}",
                    l.from_node, l.to_node
                ));
            }
            if l.from_node == l.to_node {
                return bad(format!("degraded link on loopback node {}", l.from_node));
            }
            if !(l.factor.is_finite() && l.factor > 0.0 && l.factor <= 1.0) {
                return bad(format!("degradation factor {} not in (0, 1]", l.factor));
            }
        }
        for s in &self.straggler_gpus {
            if s.gpu >= gpus {
                return bad(format!("straggler gpu {} >= {gpus}", s.gpu));
            }
            if !(s.slowdown.is_finite() && s.slowdown >= 1.0) {
                return bad(format!("straggler slowdown {} must be >= 1", s.slowdown));
            }
        }
        if let Some(&g) = self.failed_gpus.iter().find(|&&g| g >= gpus) {
            return bad(format!("failed gpu {g} >= {gpus}"));
        }
        if let Some(&n) = self.failed_nodes.iter().find(|&&n| n >= nodes) {
            return bad(format!("failed node {n} >= {nodes}"));
        }
        for c in &self.corrupt_pairs {
            if c.from_gpu >= gpus || c.to_gpu >= gpus {
                return bad(format!(
                    "corrupt pair {}->{} references a gpu >= {gpus}",
                    c.from_gpu, c.to_gpu
                ));
            }
            if c.from_gpu == c.to_gpu {
                return bad(format!("corrupt pair on loopback gpu {}", c.from_gpu));
            }
            if c.corruption().is_none() {
                return bad(format!(
                    "unknown corruption kind {:?} (try \"nan\", \"zero\", \"outlier\")",
                    c.kind
                ));
            }
        }
        for (name, rate) in [
            ("measurement_failure_rate", self.measurement_failure_rate),
            ("sample_loss_rate", self.sample_loss_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return bad(format!("{name} {rate} not in [0, 1]"));
            }
        }
        if let Some(d) = &self.drift {
            TemporalDrift::new(d.daily_sigma, d.reversion).map_err(|e| {
                ClusterError::InvalidFaultPlan {
                    reason: format!("drift episode: {e}"),
                }
            })?;
            // The walk materializes one matrix per day; cap the horizon so
            // a typo'd day index cannot balloon memory.
            if d.day > 365 {
                return bad(format!("drift day {} exceeds the 365-day horizon", d.day));
            }
        }
        Ok(())
    }

    /// The ground truth under this plan: degraded links and straggler
    /// GPUs applied to `truth`. Failures and measurement corruptions do
    /// not belong here — they affect availability and observation, not
    /// what the surviving links actually attain.
    pub fn apply_to_truth(&self, truth: &BandwidthMatrix) -> BandwidthMatrix {
        // Drift first: the episode replaces the base matrix the rest of
        // the ground-truth faults apply to, keyed by the plan's own seed
        // so a drill replays bit-identically.
        let drifted: Option<BandwidthMatrix> = self.drift.as_ref().and_then(|d| {
            let model = TemporalDrift::new(d.daily_sigma, d.reversion).ok()?;
            model.series(truth, d.day + 1, self.seed).pop()
        });
        let base = drifted.as_ref().unwrap_or(truth);
        let mut out = base.clone();
        let topo = *base.topology();
        for l in &self.degraded_links {
            for a in topo.gpus_of_node(NodeId(l.from_node)) {
                for b in topo.gpus_of_node(NodeId(l.to_node)) {
                    out.set(a, b, base.between(a, b) * l.factor);
                }
            }
        }
        for s in &self.straggler_gpus {
            let g = GpuId(s.gpu);
            for other in topo.gpus() {
                if other == g {
                    continue;
                }
                out.set(g, other, out.between(g, other) / s.slowdown);
                out.set(other, g, out.between(other, g) / s.slowdown);
            }
        }
        out
    }

    /// The nodes this plan takes out of service: explicitly failed nodes
    /// plus the host of every failed GPU (exclusion is at node
    /// granularity — a node with a dead GPU is cordoned whole, since a
    /// partial node breaks the uniform `gpus_per_node` topology).
    pub fn failed_node_ids(&self, topo: &ClusterTopology) -> Vec<NodeId> {
        let mut nodes: Vec<usize> = self.failed_nodes.clone();
        nodes.extend(self.failed_gpus.iter().map(|&g| topo.node_of(GpuId(g)).0));
        nodes.sort_unstable();
        nodes.dedup();
        nodes.into_iter().map(NodeId).collect()
    }

    /// Every GPU excluded by this plan (all GPUs of
    /// [`Self::failed_node_ids`]), in index order.
    pub fn excluded_gpu_ids(&self, topo: &ClusterTopology) -> Vec<GpuId> {
        self.failed_node_ids(topo)
            .into_iter()
            .flat_map(|n| topo.gpus_of_node(n).collect::<Vec<_>>())
            .collect()
    }

    /// The nodes that remain in service, in index order.
    pub fn surviving_node_ids(&self, topo: &ClusterTopology) -> Vec<NodeId> {
        let failed = self.failed_node_ids(topo);
        topo.node_ids().filter(|n| !failed.contains(n)).collect()
    }

    /// Whether measurement attempt `attempt` of pair `from -> to` fails
    /// outright under [`Self::measurement_failure_rate`]. Pure in
    /// `(seed, from, to, attempt)`.
    pub fn measurement_fails(&self, from: usize, to: usize, attempt: usize) -> bool {
        self.measurement_failure_rate > 0.0
            && hash01(self.seed, 1, from as u64, to as u64, attempt as u64)
                < self.measurement_failure_rate
    }

    /// The corruption injected into attempt `attempt` of pair
    /// `from -> to`, if any. Explicit corrupt pairs mangle the *first*
    /// attempt only — the retry path is expected to recover them.
    pub fn corruption_for(&self, from: usize, to: usize, attempt: usize) -> Option<CorruptionKind> {
        if attempt > 0 {
            return None;
        }
        self.corrupt_pairs
            .iter()
            .find(|c| c.from_gpu == from && c.to_gpu == to)
            .and_then(CorruptPair::corruption)
    }

    /// Whether memory-profiling sample `index` is lost under
    /// [`Self::sample_loss_rate`]. Pure in `(seed, index)`.
    pub fn sample_lost(&self, index: usize) -> bool {
        self.sample_loss_rate > 0.0
            && hash01(self.seed, 2, index as u64, 0, 0) < self.sample_loss_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::HeterogeneityModel;
    use crate::link::LinkSpec;

    fn truth() -> BandwidthMatrix {
        HeterogeneityModel::realistic().generate(
            ClusterTopology::new(4, 4),
            LinkSpec::new(300.0, 2e-6),
            LinkSpec::new(11.64, 5e-6),
            21,
        )
    }

    #[test]
    fn default_plan_is_zero_fault_and_identity() {
        let plan = FaultPlan::default();
        assert!(plan.is_zero_fault());
        let t = truth();
        plan.validate(t.topology()).unwrap();
        assert_eq!(plan.apply_to_truth(&t), t);
        assert!(plan.failed_node_ids(t.topology()).is_empty());
        assert_eq!(plan.surviving_node_ids(t.topology()).len(), 4);
        assert!(!plan.measurement_fails(0, 1, 0));
        assert!(!plan.sample_lost(7));
    }

    #[test]
    fn degraded_links_and_stragglers_change_truth() {
        let t = truth();
        let plan = FaultPlan {
            degraded_links: vec![DegradedLink {
                from_node: 0,
                to_node: 1,
                factor: 0.25,
            }],
            straggler_gpus: vec![StragglerGpu {
                gpu: 12,
                slowdown: 2.0,
            }],
            ..FaultPlan::default()
        };
        plan.validate(t.topology()).unwrap();
        let d = plan.apply_to_truth(&t);
        let (a, b) = (GpuId(0), GpuId(4));
        assert!((d.between(a, b) - t.between(a, b) * 0.25).abs() < 1e-12);
        // Reverse direction untouched by the directed degradation.
        assert_eq!(d.between(b, a), t.between(b, a));
        // Straggler slows both directions of all its links.
        assert!((d.between(GpuId(12), GpuId(0)) - t.between(GpuId(12), GpuId(0)) / 2.0) < 1e-12);
        assert!((d.between(GpuId(0), GpuId(12)) - t.between(GpuId(0), GpuId(12)) / 2.0) < 1e-12);
    }

    #[test]
    fn failed_gpus_cordon_their_node() {
        let topo = ClusterTopology::new(4, 4);
        let plan = FaultPlan {
            failed_gpus: vec![5],
            failed_nodes: vec![3],
            ..FaultPlan::default()
        };
        assert_eq!(plan.failed_node_ids(&topo), vec![NodeId(1), NodeId(3)]);
        assert_eq!(plan.surviving_node_ids(&topo), vec![NodeId(0), NodeId(2)]);
        let excluded = plan.excluded_gpu_ids(&topo);
        assert_eq!(excluded.len(), 8);
        assert!(excluded.contains(&GpuId(4)) && excluded.contains(&GpuId(15)));
    }

    #[test]
    fn validation_rejects_out_of_range_plans() {
        let topo = ClusterTopology::new(2, 4);
        let cases = [
            FaultPlan {
                degraded_links: vec![DegradedLink {
                    from_node: 0,
                    to_node: 9,
                    factor: 0.5,
                }],
                ..FaultPlan::default()
            },
            FaultPlan {
                degraded_links: vec![DegradedLink {
                    from_node: 0,
                    to_node: 1,
                    factor: 1.5,
                }],
                ..FaultPlan::default()
            },
            FaultPlan {
                straggler_gpus: vec![StragglerGpu {
                    gpu: 99,
                    slowdown: 2.0,
                }],
                ..FaultPlan::default()
            },
            FaultPlan {
                failed_gpus: vec![8],
                ..FaultPlan::default()
            },
            FaultPlan {
                failed_nodes: vec![2],
                ..FaultPlan::default()
            },
            FaultPlan {
                corrupt_pairs: vec![CorruptPair {
                    from_gpu: 0,
                    to_gpu: 1,
                    kind: "gremlin".into(),
                }],
                ..FaultPlan::default()
            },
            FaultPlan {
                measurement_failure_rate: 1.5,
                ..FaultPlan::default()
            },
            FaultPlan {
                sample_loss_rate: f64::NAN,
                ..FaultPlan::default()
            },
        ];
        for plan in cases {
            assert!(
                matches!(
                    plan.validate(&topo),
                    Err(ClusterError::InvalidFaultPlan { .. })
                ),
                "plan should be rejected: {plan:?}"
            );
        }
    }

    #[test]
    fn hash_decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan {
            seed: 7,
            measurement_failure_rate: 0.3,
            sample_loss_rate: 1.0,
            ..FaultPlan::default()
        };
        let fails: Vec<bool> = (0..2000)
            .map(|i| plan.measurement_fails(i % 16, (i / 16) % 16, i % 4))
            .collect();
        let again: Vec<bool> = (0..2000)
            .map(|i| plan.measurement_fails(i % 16, (i / 16) % 16, i % 4))
            .collect();
        assert_eq!(fails, again);
        let rate = fails.iter().filter(|&&f| f).count() as f64 / fails.len() as f64;
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate}");
        // A loss rate of exactly 1.0 drops every sample.
        assert!((0..500).all(|i| plan.sample_lost(i)));
    }

    #[test]
    fn corruption_applies_to_first_attempt_only() {
        let plan = FaultPlan {
            corrupt_pairs: vec![CorruptPair {
                from_gpu: 2,
                to_gpu: 3,
                kind: "nan".into(),
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.corruption_for(2, 3, 0), Some(CorruptionKind::Nan));
        assert_eq!(plan.corruption_for(2, 3, 1), None);
        assert_eq!(plan.corruption_for(3, 2, 0), None);
    }

    #[test]
    fn drift_episode_perturbs_truth_deterministically() {
        let t = truth();
        let plan = FaultPlan {
            seed: 11,
            drift: Some(DriftEpisode {
                day: 5,
                daily_sigma: 0.05,
                reversion: 0.25,
            }),
            ..FaultPlan::default()
        };
        assert!(!plan.is_zero_fault());
        plan.validate(t.topology()).unwrap();
        let a = plan.apply_to_truth(&t);
        let b = plan.apply_to_truth(&t);
        assert_eq!(a, b, "drift must replay bit-identically");
        assert_ne!(a, t, "a non-zero drift day must perturb inter-node links");
        // Day 0 is the base matrix itself.
        let day0 = FaultPlan {
            drift: Some(DriftEpisode {
                day: 0,
                daily_sigma: 0.05,
                reversion: 0.25,
            }),
            ..FaultPlan::default()
        };
        assert_eq!(day0.apply_to_truth(&t), t);
        // Drift composes with degraded links: the factor applies to the
        // drifted matrix, not the original.
        let with_link = FaultPlan {
            degraded_links: vec![DegradedLink {
                from_node: 0,
                to_node: 1,
                factor: 0.5,
            }],
            ..plan.clone()
        };
        let composed = with_link.apply_to_truth(&t);
        let (x, y) = (GpuId(0), GpuId(4));
        assert!((composed.between(x, y) - a.between(x, y) * 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_validation_rejects_bad_episodes() {
        let topo = ClusterTopology::new(2, 4);
        for episode in [
            DriftEpisode {
                day: 3,
                daily_sigma: -0.1,
                reversion: 0.25,
            },
            DriftEpisode {
                day: 3,
                daily_sigma: 0.03,
                reversion: 1.5,
            },
            DriftEpisode {
                day: 366,
                daily_sigma: 0.03,
                reversion: 0.25,
            },
        ] {
            let plan = FaultPlan {
                drift: Some(episode),
                ..FaultPlan::default()
            };
            assert!(
                matches!(
                    plan.validate(&topo),
                    Err(ClusterError::InvalidFaultPlan { .. })
                ),
                "episode should be rejected: {episode:?}"
            );
        }
    }

    #[test]
    fn drift_round_trips_and_defaults_fill_in() {
        let sparse: FaultPlan = serde_json::from_str(r#"{"drift":{"day":4}}"#).unwrap();
        let d = sparse.drift.unwrap();
        assert_eq!(d.day, 4);
        assert_eq!(d.daily_sigma, 0.03);
        assert_eq!(d.reversion, 0.25);
        let json = serde_json::to_string(&sparse).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sparse);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 9,
            failed_nodes: vec![1],
            corrupt_pairs: vec![CorruptPair {
                from_gpu: 0,
                to_gpu: 9,
                kind: "outlier".into(),
            }],
            measurement_failure_rate: 0.05,
            ..FaultPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Sparse plans parse with defaults filled in.
        let sparse: FaultPlan = serde_json::from_str(r#"{"failed_nodes":[0]}"#).unwrap();
        assert_eq!(sparse.failed_nodes, vec![0]);
        assert_eq!(sparse.measurement_failure_rate, 0.0);
    }
}
