//! GPU hardware specifications (compute throughput and memory capacity).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Compute and memory characteristics of one GPU model.
///
/// Only two scalars matter to the configurator: how fast a GPU retires
/// training FLOPs in practice, and how much memory it has. `attainable_mfu`
/// folds kernel inefficiency, pipeline stalls other than those we model, and
/// framework overheads into a single model-FLOPs-utilization factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. "V100".
    pub name: String,
    /// Peak half-precision tensor throughput in TFLOP/s.
    pub peak_fp16_tflops: f64,
    /// Fraction of peak actually attained on transformer workloads.
    pub attainable_mfu: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// Effective sustained throughput in FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.peak_fp16_tflops * 1e12 * self.attainable_mfu
    }

    /// Device memory in GiB.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / crate::link::GIB
    }

    /// NVIDIA V100 (SXM2 16 GB) as used in the paper's mid-range cluster
    /// (the 3.1B model "reaches the GPU memory limit" there, which matches
    /// the 16 GB part).
    pub fn v100() -> Self {
        Self {
            name: "V100".to_owned(),
            peak_fp16_tflops: 125.0,
            attainable_mfu: 0.35,
            memory_bytes: 16 * (1u64 << 30),
        }
    }

    /// NVIDIA A100 (SXM4 40 GB) as used in the paper's high-end cluster.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            peak_fp16_tflops: 312.0,
            attainable_mfu: 0.40,
            memory_bytes: 40 * (1u64 << 30),
        }
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} TFLOPs fp16, {:.0} GiB)",
            self.name,
            self.peak_fp16_tflops,
            self.memory_gib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_effective_flops_below_peak() {
        let g = GpuSpec::v100();
        assert!(g.effective_flops() < g.peak_fp16_tflops * 1e12);
        assert!(g.effective_flops() > 1e13);
    }

    #[test]
    fn a100_is_faster_and_bigger() {
        let (v, a) = (GpuSpec::v100(), GpuSpec::a100());
        assert!(a.effective_flops() > v.effective_flops());
        assert!(a.memory_bytes > v.memory_bytes);
    }

    #[test]
    fn memory_gib_round_numbers() {
        assert_eq!(GpuSpec::v100().memory_gib(), 16.0);
        assert_eq!(GpuSpec::a100().memory_gib(), 40.0);
    }

    #[test]
    fn display_contains_name() {
        assert!(GpuSpec::v100().to_string().contains("V100"));
    }
}
