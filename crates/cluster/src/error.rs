//! Error types for the cluster crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or querying cluster models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A preset was asked for more nodes than it supports.
    InvalidNodeCount {
        /// Requested node count.
        requested: usize,
        /// Maximum supported node count.
        max: usize,
    },
    /// An imported bandwidth table could not be parsed.
    MalformedMatrix {
        /// What went wrong.
        reason: String,
    },
    /// A constructor argument was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A fault plan referenced hardware the topology does not have, or
    /// carried out-of-range rates/factors.
    InvalidFaultPlan {
        /// What went wrong.
        reason: String,
    },
    /// A node selection (subcluster restriction) kept zero nodes.
    EmptySelection,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidNodeCount { requested, max } => {
                write!(
                    f,
                    "requested {requested} nodes but preset supports at most {max}"
                )
            }
            ClusterError::MalformedMatrix { reason } => {
                write!(f, "malformed bandwidth table: {reason}")
            }
            ClusterError::InvalidParameter { name, reason } => {
                write!(f, "invalid {name}: {reason}")
            }
            ClusterError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            ClusterError::EmptySelection => {
                write!(f, "node selection keeps zero nodes")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = ClusterError::InvalidNodeCount {
            requested: 32,
            max: 16,
        };
        assert!(e.to_string().contains("32"));
    }
}
