//! Simulated network profiler (stand-in for mpiGraph / NCCL-tests).
//!
//! Pipette's first step (Algorithm 1, line 1) is `network_profile()`: run a
//! pairwise bandwidth benchmark on the real cluster. We simulate that by
//! reading the true attained matrix through a small multiplicative
//! measurement noise — the estimator then works with *measured* bandwidths
//! while the ground-truth simulator uses the *true* ones, reproducing the
//! estimation-error structure of Fig. 5a. The profiler also carries a cost
//! model for Table II's "Bandwidth Profiling" row.

use crate::bandwidth::BandwidthMatrix;
use crate::rand_util::normal;
use crate::topology::{ClusterTopology, GpuId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Measured bandwidth matrix, as Pipette's estimator sees it.
///
/// A thin newtype over [`BandwidthMatrix`] so the type system distinguishes
/// profiled (noisy) bandwidths from ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledBandwidth(BandwidthMatrix);

impl ProfiledBandwidth {
    /// Access the measured matrix.
    pub fn matrix(&self) -> &BandwidthMatrix {
        &self.0
    }

    /// Consumes the wrapper, returning the measured matrix.
    pub fn into_matrix(self) -> BandwidthMatrix {
        self.0
    }

    /// Treats a matrix as "profiled" without noise (for tests/ablations).
    pub fn exact(matrix: BandwidthMatrix) -> Self {
        Self(matrix)
    }
}

/// Wall-clock cost of a profiling run, for Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingCost {
    /// Total profiling time in seconds.
    pub seconds: f64,
    /// Number of directed node pairs measured.
    pub node_pairs: usize,
}

/// Simulated mpiGraph/NCCL-tests runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfiler {
    /// Relative standard deviation of a single bandwidth measurement.
    pub noise_sigma: f64,
    /// Fixed cost of launching the benchmark suite (seconds).
    pub base_seconds: f64,
    /// Cost per directed node pair (seconds).
    pub per_pair_seconds: f64,
}

impl Default for NetworkProfiler {
    fn default() -> Self {
        Self {
            noise_sigma: 0.02,
            base_seconds: 40.0,
            per_pair_seconds: 0.33,
        }
    }
}

impl NetworkProfiler {
    /// Creates a profiler with a given measurement noise and cost model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative.
    pub fn new(noise_sigma: f64, base_seconds: f64, per_pair_seconds: f64) -> Self {
        assert!(noise_sigma >= 0.0 && base_seconds >= 0.0 && per_pair_seconds >= 0.0);
        Self {
            noise_sigma,
            base_seconds,
            per_pair_seconds,
        }
    }

    /// Measures the cluster: returns the noisy matrix and the time it took.
    ///
    /// Deterministic in `seed`.
    pub fn profile(
        &self,
        truth: &BandwidthMatrix,
        seed: u64,
    ) -> (ProfiledBandwidth, ProfilingCost) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut measured = truth.clone();
        let topo = *truth.topology();
        for a in topo.gpus() {
            for b in topo.gpus() {
                if a == b {
                    continue;
                }
                let factor = normal(&mut rng, 1.0, self.noise_sigma).clamp(0.8, 1.2);
                measured.set(GpuId(a.0), GpuId(b.0), truth.between(a, b) * factor);
            }
        }
        (ProfiledBandwidth(measured), self.cost(&topo))
    }

    /// Cost of profiling a cluster of the given shape, without running it.
    pub fn cost(&self, topology: &ClusterTopology) -> ProfilingCost {
        let n = topology.num_nodes();
        let node_pairs = n * n.saturating_sub(1);
        ProfilingCost {
            seconds: self.base_seconds + self.per_pair_seconds * node_pairs as f64,
            node_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::HeterogeneityModel;
    use crate::link::LinkSpec;

    fn truth() -> BandwidthMatrix {
        HeterogeneityModel::realistic().generate(
            ClusterTopology::new(4, 4),
            LinkSpec::new(300.0, 2e-6),
            LinkSpec::new(11.64, 5e-6),
            21,
        )
    }

    #[test]
    fn measurement_is_close_to_truth() {
        let t = truth();
        let (p, _) = NetworkProfiler::default().profile(&t, 1);
        for a in t.topology().gpus() {
            for b in t.topology().gpus() {
                if a != b {
                    let ratio = p.matrix().between(a, b) / t.between(a, b);
                    assert!((ratio - 1.0).abs() < 0.21, "ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn measurement_is_noisy_but_deterministic() {
        let t = truth();
        let (p1, _) = NetworkProfiler::default().profile(&t, 1);
        let (p2, _) = NetworkProfiler::default().profile(&t, 1);
        let (p3, _) = NetworkProfiler::default().profile(&t, 2);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_ne!(p1.matrix(), &t);
    }

    #[test]
    fn cost_scales_with_node_pairs() {
        let prof = NetworkProfiler::new(0.0, 40.0, 0.33);
        let c8 = prof.cost(&ClusterTopology::new(8, 8));
        let c16 = prof.cost(&ClusterTopology::new(16, 8));
        assert_eq!(c8.node_pairs, 56);
        assert_eq!(c16.node_pairs, 240);
        // Shape from Table II: ~58 s at 8 nodes, ~120 s at 16 nodes.
        assert!((c8.seconds - 58.48).abs() < 0.1);
        assert!((c16.seconds - 119.2).abs() < 0.1);
    }

    #[test]
    fn exact_profile_has_no_noise() {
        let t = truth();
        let p = ProfiledBandwidth::exact(t.clone());
        assert_eq!(p.matrix(), &t);
        assert_eq!(p.into_matrix(), t);
    }

    #[test]
    fn zero_noise_profiler_reproduces_truth() {
        let t = truth();
        let (p, _) = NetworkProfiler::new(0.0, 0.0, 0.0).profile(&t, 9);
        for a in t.topology().gpus() {
            for b in t.topology().gpus() {
                if a != b {
                    assert!((p.matrix().between(a, b) - t.between(a, b)).abs() < 1e-9);
                }
            }
        }
    }
}
