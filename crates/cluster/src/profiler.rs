//! Simulated network profiler (stand-in for mpiGraph / NCCL-tests).
//!
//! Pipette's first step (Algorithm 1, line 1) is `network_profile()`: run a
//! pairwise bandwidth benchmark on the real cluster. We simulate that by
//! reading the true attained matrix through a small multiplicative
//! measurement noise — the estimator then works with *measured* bandwidths
//! while the ground-truth simulator uses the *true* ones, reproducing the
//! estimation-error structure of Fig. 5a. The profiler also carries a cost
//! model for Table II's "Bandwidth Profiling" row.
//!
//! Real benchmarks also *fail*: processes crash (NaN), transfers time out
//! (zero), units get confused (wild outliers). [`NetworkProfiler::profile_robust`]
//! survives all of that under an injected [`FaultPlan`] via a degradation
//! ladder — repeat, retry with backoff, aggregate robustly, and finally
//! impute from topology priors — while reporting per-pair
//! [`MeasurementQuality`] and charging the retries to the Table II cost
//! model. With a zero-fault plan and one repeat it is bit-identical to
//! [`NetworkProfiler::profile`].

use crate::bandwidth::BandwidthMatrix;
use crate::error::ClusterError;
use crate::faults::{CorruptionKind, FaultPlan};
use crate::link::LinkClass;
use crate::rand_util::normal;
use crate::topology::{ClusterTopology, GpuId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a single pair's bandwidth was obtained by the robust profiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasurementQuality {
    /// All requested samples came back valid on the first try.
    Clean,
    /// The pair needed retries and/or discarded corrupt samples, but a
    /// valid aggregate was eventually measured.
    Recovered {
        /// Extra attempts beyond the requested repeat count.
        retries: usize,
        /// Samples discarded as NaN/zero/implausible.
        corrupt_samples: usize,
    },
    /// Every attempt failed; the value was imputed from topology priors
    /// (link-class mean of valid measurements, else the nominal spec).
    Imputed {
        /// The imputed bandwidth in GiB/s.
        gib_s: f64,
        /// Attempts spent before giving up.
        retries: usize,
    },
}

/// One non-clean pair in a [`MeasurementReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairIncident {
    /// Source GPU.
    pub from: GpuId,
    /// Destination GPU.
    pub to: GpuId,
    /// What happened to the measurement.
    pub quality: MeasurementQuality,
}

/// Aggregate quality accounting of one robust profiling run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasurementReport {
    /// Directed GPU pairs measured (or imputed).
    pub pairs_measured: usize,
    /// Total retry attempts across all pairs.
    pub retries: usize,
    /// Pairs whose value had to be imputed.
    pub imputed: usize,
    /// Samples discarded as corrupt across all pairs.
    pub corrupt_samples: usize,
    /// The non-clean pairs, in measurement order.
    pub incidents: Vec<PairIncident>,
}

impl MeasurementReport {
    /// Whether every pair was measured cleanly on the first try.
    pub fn is_clean(&self) -> bool {
        self.incidents.is_empty()
    }
}

/// How repeated samples of one pair are collapsed to a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// The median (average of the two middle samples for even counts).
    /// Robust to up to half the samples being wild; the median of a
    /// single sample is that sample, preserving zero-fault bit-identity.
    #[default]
    Median,
    /// Mean after dropping the minimum and maximum (plain mean for fewer
    /// than three samples).
    TrimmedMean,
    /// The arithmetic mean.
    Mean,
}

impl Aggregation {
    fn collapse(self, samples: &mut [f64]) -> f64 {
        debug_assert!(!samples.is_empty());
        match self {
            Aggregation::Median => {
                samples.sort_by(f64::total_cmp);
                let n = samples.len();
                if n % 2 == 1 {
                    samples[n / 2]
                } else {
                    (samples[n / 2 - 1] + samples[n / 2]) / 2.0
                }
            }
            Aggregation::TrimmedMean => {
                if samples.len() < 3 {
                    return Aggregation::Mean.collapse(samples);
                }
                samples.sort_by(f64::total_cmp);
                let inner = &samples[1..samples.len() - 1];
                inner.iter().sum::<f64>() / inner.len() as f64
            }
            Aggregation::Mean => samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }
}

/// Knobs of the robust profiling ladder: how many samples to take, how to
/// aggregate them, how hard to retry, and what counts as plausible.
///
/// The default (`repeats: 1`, median, 3 retries) makes the zero-fault
/// path identical to [`NetworkProfiler::profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustProfilingPolicy {
    /// Valid samples requested per pair.
    pub repeats: usize,
    /// How repeated samples collapse to one value.
    pub aggregation: Aggregation,
    /// Extra attempts allowed per pair beyond `repeats`.
    pub max_retries: usize,
    /// Wall-clock charged per retry attempt (seconds), feeding the
    /// Table II cost model.
    pub retry_backoff_seconds: f64,
    /// A reading is plausible iff within `[nominal/band, nominal*band]`
    /// of its link class's nominal spec bandwidth.
    pub plausibility_band: f64,
}

impl Default for RobustProfilingPolicy {
    fn default() -> Self {
        Self {
            repeats: 1,
            aggregation: Aggregation::Median,
            max_retries: 3,
            retry_backoff_seconds: 0.25,
            plausibility_band: 16.0,
        }
    }
}

/// Measured bandwidth matrix, as Pipette's estimator sees it.
///
/// Wraps a [`BandwidthMatrix`] so the type system distinguishes profiled
/// (noisy) bandwidths from ground truth, and — when produced by
/// [`NetworkProfiler::profile_robust`] — carries the per-pair
/// [`MeasurementReport`]. The report is in-memory metadata only; it is
/// not serialized, so profiled matrices round-trip byte-identically to
/// the pre-robustness format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledBandwidth {
    matrix: BandwidthMatrix,
    #[serde(skip)]
    report: Option<MeasurementReport>,
}

impl ProfiledBandwidth {
    /// Access the measured matrix.
    pub fn matrix(&self) -> &BandwidthMatrix {
        &self.matrix
    }

    /// Consumes the wrapper, returning the measured matrix.
    pub fn into_matrix(self) -> BandwidthMatrix {
        self.matrix
    }

    /// Treats a matrix as "profiled" without noise (for tests/ablations).
    pub fn exact(matrix: BandwidthMatrix) -> Self {
        Self {
            matrix,
            report: None,
        }
    }

    /// The measurement-quality report, if this came from a robust
    /// profiling run.
    pub fn report(&self) -> Option<&MeasurementReport> {
        self.report.as_ref()
    }

    /// The quality of one directed pair's measurement. `Clean` for pairs
    /// with no recorded incident (including matrices without a report).
    pub fn quality(&self, from: GpuId, to: GpuId) -> MeasurementQuality {
        self.report
            .as_ref()
            .and_then(|r| {
                r.incidents
                    .iter()
                    .find(|i| i.from == from && i.to == to)
                    .map(|i| i.quality)
            })
            .unwrap_or(MeasurementQuality::Clean)
    }
}

/// Wall-clock cost of a profiling run, for Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingCost {
    /// Total profiling time in seconds.
    pub seconds: f64,
    /// Number of directed node pairs measured.
    pub node_pairs: usize,
    /// Retry attempts charged on top of the base sweep (zero for the
    /// non-robust profiler).
    #[serde(default)]
    pub retries: usize,
}

/// Simulated mpiGraph/NCCL-tests runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfiler {
    /// Relative standard deviation of a single bandwidth measurement.
    pub noise_sigma: f64,
    /// Fixed cost of launching the benchmark suite (seconds).
    pub base_seconds: f64,
    /// Cost per directed node pair (seconds).
    pub per_pair_seconds: f64,
}

impl Default for NetworkProfiler {
    fn default() -> Self {
        Self {
            noise_sigma: 0.02,
            base_seconds: 40.0,
            per_pair_seconds: 0.33,
        }
    }
}

impl NetworkProfiler {
    /// Creates a profiler with a given measurement noise and cost model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative.
    pub fn new(noise_sigma: f64, base_seconds: f64, per_pair_seconds: f64) -> Self {
        debug_assert!(noise_sigma >= 0.0 && base_seconds >= 0.0 && per_pair_seconds >= 0.0);
        Self {
            noise_sigma,
            base_seconds,
            per_pair_seconds,
        }
    }

    /// Measures the cluster: returns the noisy matrix and the time it took.
    ///
    /// Deterministic in `seed`.
    pub fn profile(
        &self,
        truth: &BandwidthMatrix,
        seed: u64,
    ) -> (ProfiledBandwidth, ProfilingCost) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut measured = truth.clone();
        let topo = *truth.topology();
        for a in topo.gpus() {
            for b in topo.gpus() {
                if a == b {
                    continue;
                }
                let factor = normal(&mut rng, 1.0, self.noise_sigma).clamp(0.8, 1.2);
                measured.set(GpuId(a.0), GpuId(b.0), truth.between(a, b) * factor);
            }
        }
        (
            ProfiledBandwidth {
                matrix: measured,
                report: None,
            },
            self.cost(&topo),
        )
    }

    /// Measures the cluster under an injected [`FaultPlan`], surviving
    /// corrupt and failed readings.
    ///
    /// The degradation ladder per directed pair:
    ///
    /// 1. take `policy.repeats` samples (each noisy, possibly corrupted
    ///    or failed by the plan);
    /// 2. retry failed/implausible samples up to `policy.max_retries`
    ///    extra attempts, each charged `retry_backoff_seconds`;
    /// 3. collapse the valid samples with `policy.aggregation`;
    /// 4. if no attempt ever succeeded — or the pair touches a cordoned
    ///    node, which cannot be measured at all — impute the value from
    ///    the link class's mean valid measurement, falling back to the
    ///    nominal spec bandwidth.
    ///
    /// Deterministic in `seed` (the plan's own decisions hash from
    /// `plan.seed`, independent of the noise stream). With a zero-fault
    /// plan and `repeats == 1` the returned matrix is bit-identical to
    /// [`Self::profile`] at the same seed.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidFaultPlan`] if the plan does not fit the
    /// topology, [`ClusterError::InvalidParameter`] if the policy is
    /// degenerate (`repeats == 0`, non-positive plausibility band).
    pub fn profile_robust(
        &self,
        truth: &BandwidthMatrix,
        seed: u64,
        plan: &FaultPlan,
        policy: &RobustProfilingPolicy,
    ) -> Result<(ProfiledBandwidth, ProfilingCost), ClusterError> {
        let topo = *truth.topology();
        plan.validate(&topo)?;
        if policy.repeats == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "repeats".into(),
                reason: "must take at least one sample per pair".into(),
            });
        }
        if !(policy.plausibility_band.is_finite() && policy.plausibility_band >= 1.0) {
            return Err(ClusterError::InvalidParameter {
                name: "plausibility_band".into(),
                reason: format!("{} must be finite and >= 1", policy.plausibility_band),
            });
        }
        if !(policy.retry_backoff_seconds.is_finite() && policy.retry_backoff_seconds >= 0.0) {
            return Err(ClusterError::InvalidParameter {
                name: "retry_backoff_seconds".into(),
                reason: format!(
                    "{} must be finite and non-negative",
                    policy.retry_backoff_seconds
                ),
            });
        }

        let degraded = plan.apply_to_truth(truth);
        let mut measured = degraded.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut report = MeasurementReport::default();
        // Per-link-class running mean of valid aggregates, the first rung
        // of the imputation prior.
        let mut class_sum = [0.0f64; 2];
        let mut class_count = [0usize; 2];
        let class_idx = |c: LinkClass| match c {
            LinkClass::IntraNode => 0,
            LinkClass::InterNode => 1,
            // pipette-lint: allow(D2) -- the profiling loops below visit only
            // a != b pairs, so a loopback class here is a broken iteration
            LinkClass::Loopback => unreachable!("loopback pairs are skipped"),
        };
        let cordoned: Vec<GpuId> = plan.excluded_gpu_ids(&topo);
        let mut to_impute: Vec<(GpuId, GpuId, usize)> = Vec::new();

        for a in topo.gpus() {
            for b in topo.gpus() {
                if a == b {
                    continue;
                }
                report.pairs_measured += 1;
                if cordoned.contains(&a) || cordoned.contains(&b) {
                    // A dead endpoint: every attempt would time out. Charge
                    // the full retry budget, draw nothing from the noise
                    // stream, and impute below.
                    report.retries += policy.max_retries;
                    to_impute.push((a, b, policy.max_retries));
                    continue;
                }
                let true_bw = degraded.between(a, b);
                let nominal = match degraded.link_class(a, b) {
                    LinkClass::IntraNode => degraded.intra_spec().bandwidth_gib_s,
                    _ => degraded.inter_spec().bandwidth_gib_s,
                };
                let (lo, hi) = (
                    nominal / policy.plausibility_band,
                    nominal * policy.plausibility_band,
                );
                let mut samples: Vec<f64> = Vec::with_capacity(policy.repeats);
                let mut corrupt = 0usize;
                let mut attempts = 0usize;
                while samples.len() < policy.repeats
                    && attempts < policy.repeats + policy.max_retries
                {
                    let factor = normal(&mut rng, 1.0, self.noise_sigma).clamp(0.8, 1.2);
                    let mut reading = true_bw * factor;
                    if let Some(kind) = plan.corruption_for(a.0, b.0, attempts) {
                        reading = match kind {
                            CorruptionKind::Nan => f64::NAN,
                            CorruptionKind::Zero => 0.0,
                            CorruptionKind::WildOutlier => reading * 1000.0,
                        };
                    } else if plan.measurement_fails(a.0, b.0, attempts) {
                        reading = f64::NAN;
                    }
                    attempts += 1;
                    if reading.is_finite() && reading > 0.0 && (lo..=hi).contains(&reading) {
                        samples.push(reading);
                    } else {
                        corrupt += 1;
                    }
                }
                let retries = attempts.saturating_sub(policy.repeats);
                report.retries += retries;
                report.corrupt_samples += corrupt;
                if samples.is_empty() {
                    to_impute.push((a, b, retries));
                    continue;
                }
                let value = policy.aggregation.collapse(&mut samples);
                measured.set(a, b, value);
                let ci = class_idx(degraded.link_class(a, b));
                class_sum[ci] += value;
                class_count[ci] += 1;
                if retries > 0 || corrupt > 0 {
                    report.incidents.push(PairIncident {
                        from: a,
                        to: b,
                        quality: MeasurementQuality::Recovered {
                            retries,
                            corrupt_samples: corrupt,
                        },
                    });
                }
            }
        }

        // Imputation pass: pairs that exhausted the ladder take the mean
        // valid measurement of their link class, else the nominal spec.
        report.imputed = to_impute.len();
        for (a, b, retries) in to_impute {
            let ci = class_idx(measured.link_class(a, b));
            let gib_s = if class_count[ci] > 0 {
                class_sum[ci] / class_count[ci] as f64
            } else {
                match measured.link_class(a, b) {
                    LinkClass::IntraNode => measured.intra_spec().bandwidth_gib_s,
                    _ => measured.inter_spec().bandwidth_gib_s,
                }
            };
            measured.set(a, b, gib_s);
            report.incidents.push(PairIncident {
                from: a,
                to: b,
                quality: MeasurementQuality::Imputed { gib_s, retries },
            });
        }
        // Incident order: recovered pairs are pushed in measurement order,
        // imputed pairs afterwards. Re-sort into pair order so consumers
        // see one deterministic ordering regardless of ladder rung.
        report.incidents.sort_by_key(|i| (i.from.0, i.to.0));

        let base = self.cost(&topo);
        let cost = ProfilingCost {
            seconds: self.base_seconds
                + self.per_pair_seconds * (base.node_pairs * policy.repeats) as f64
                + report.retries as f64 * policy.retry_backoff_seconds,
            node_pairs: base.node_pairs,
            retries: report.retries,
        };
        Ok((
            ProfiledBandwidth {
                matrix: measured,
                report: Some(report),
            },
            cost,
        ))
    }

    /// Cost of profiling a cluster of the given shape, without running it.
    pub fn cost(&self, topology: &ClusterTopology) -> ProfilingCost {
        let n = topology.num_nodes();
        let node_pairs = n * n.saturating_sub(1);
        ProfilingCost {
            seconds: self.base_seconds + self.per_pair_seconds * node_pairs as f64,
            node_pairs,
            retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{CorruptPair, DegradedLink};
    use crate::heterogeneity::HeterogeneityModel;
    use crate::link::LinkSpec;
    use proptest::prelude::*;

    fn truth() -> BandwidthMatrix {
        HeterogeneityModel::realistic().generate(
            ClusterTopology::new(4, 4),
            LinkSpec::new(300.0, 2e-6),
            LinkSpec::new(11.64, 5e-6),
            21,
        )
    }

    #[test]
    fn measurement_is_close_to_truth() {
        let t = truth();
        let (p, _) = NetworkProfiler::default().profile(&t, 1);
        for a in t.topology().gpus() {
            for b in t.topology().gpus() {
                if a != b {
                    let ratio = p.matrix().between(a, b) / t.between(a, b);
                    assert!((ratio - 1.0).abs() < 0.21, "ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn measurement_is_noisy_but_deterministic() {
        let t = truth();
        let (p1, _) = NetworkProfiler::default().profile(&t, 1);
        let (p2, _) = NetworkProfiler::default().profile(&t, 1);
        let (p3, _) = NetworkProfiler::default().profile(&t, 2);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_ne!(p1.matrix(), &t);
    }

    #[test]
    fn cost_scales_with_node_pairs() {
        let prof = NetworkProfiler::new(0.0, 40.0, 0.33);
        let c8 = prof.cost(&ClusterTopology::new(8, 8));
        let c16 = prof.cost(&ClusterTopology::new(16, 8));
        assert_eq!(c8.node_pairs, 56);
        assert_eq!(c16.node_pairs, 240);
        // Shape from Table II: ~58 s at 8 nodes, ~120 s at 16 nodes.
        assert!((c8.seconds - 58.48).abs() < 0.1);
        assert!((c16.seconds - 119.2).abs() < 0.1);
    }

    #[test]
    fn exact_profile_has_no_noise() {
        let t = truth();
        let p = ProfiledBandwidth::exact(t.clone());
        assert_eq!(p.matrix(), &t);
        assert!(p.report().is_none());
        assert_eq!(p.quality(GpuId(0), GpuId(1)), MeasurementQuality::Clean);
        assert_eq!(p.into_matrix(), t);
    }

    #[test]
    fn zero_noise_profiler_reproduces_truth() {
        let t = truth();
        let (p, _) = NetworkProfiler::new(0.0, 0.0, 0.0).profile(&t, 9);
        for a in t.topology().gpus() {
            for b in t.topology().gpus() {
                if a != b {
                    assert!((p.matrix().between(a, b) - t.between(a, b)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn zero_fault_robust_profile_is_bit_identical() {
        let t = truth();
        let prof = NetworkProfiler::default();
        let (plain, plain_cost) = prof.profile(&t, 7);
        let (robust, robust_cost) = prof
            .profile_robust(
                &t,
                7,
                &FaultPlan::default(),
                &RobustProfilingPolicy::default(),
            )
            .expect("zero-fault plan is valid");
        assert_eq!(robust.matrix(), plain.matrix());
        // Serialized forms are byte-identical: the report is skipped.
        assert_eq!(
            serde_json::to_string(&robust).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
        assert_eq!(robust_cost.seconds, plain_cost.seconds);
        assert_eq!(robust_cost.retries, 0);
        let report = robust.report().expect("robust runs carry a report");
        assert!(report.is_clean());
        assert_eq!(report.imputed, 0);
        assert_eq!(report.pairs_measured, 16 * 15);
    }

    proptest! {
        #[test]
        fn zero_fault_bit_identity_holds_for_any_seed(seed in 0u64..500) {
            let t = truth();
            let prof = NetworkProfiler::default();
            let (plain, _) = prof.profile(&t, seed);
            let (robust, _) = prof
                .profile_robust(
                    &t,
                    seed,
                    &FaultPlan::default(),
                    &RobustProfilingPolicy::default(),
                )
                .unwrap();
            prop_assert_eq!(robust.matrix(), plain.matrix());
        }
    }

    #[test]
    fn corrupt_pairs_are_recovered_by_retry() {
        let t = truth();
        let plan = FaultPlan {
            corrupt_pairs: vec![
                CorruptPair {
                    from_gpu: 0,
                    to_gpu: 5,
                    kind: "nan".into(),
                },
                CorruptPair {
                    from_gpu: 1,
                    to_gpu: 9,
                    kind: "zero".into(),
                },
                CorruptPair {
                    from_gpu: 2,
                    to_gpu: 13,
                    kind: "outlier".into(),
                },
            ],
            ..FaultPlan::default()
        };
        let (p, cost) = NetworkProfiler::default()
            .profile_robust(&t, 3, &plan, &RobustProfilingPolicy::default())
            .unwrap();
        let report = p.report().unwrap();
        assert_eq!(report.incidents.len(), 3);
        assert_eq!(report.imputed, 0);
        assert_eq!(report.corrupt_samples, 3);
        assert_eq!(report.retries, 3);
        assert!(cost.retries == 3 && cost.seconds > 0.0);
        // Each corrupted pair recovered to a plausible value on retry.
        for c in &plan.corrupt_pairs {
            let (a, b) = (GpuId(c.from_gpu), GpuId(c.to_gpu));
            assert!(matches!(
                p.quality(a, b),
                MeasurementQuality::Recovered {
                    retries: 1,
                    corrupt_samples: 1
                }
            ));
            let ratio = p.matrix().between(a, b) / t.between(a, b);
            assert!((ratio - 1.0).abs() < 0.21, "ratio {ratio}");
        }
    }

    #[test]
    fn always_failing_pairs_are_imputed_from_class_prior() {
        let t = truth();
        // Total measurement failure: every attempt of every pair dies.
        let plan = FaultPlan {
            measurement_failure_rate: 1.0,
            ..FaultPlan::default()
        };
        let (p, _) = NetworkProfiler::default()
            .profile_robust(&t, 3, &plan, &RobustProfilingPolicy::default())
            .unwrap();
        let report = p.report().unwrap();
        assert_eq!(report.imputed, 16 * 15);
        // No class has any valid measurement, so imputation lands on the
        // nominal spec bandwidths.
        assert_eq!(p.matrix().between(GpuId(0), GpuId(1)), 300.0);
        assert_eq!(p.matrix().between(GpuId(0), GpuId(4)), 11.64);
    }

    #[test]
    fn cordoned_pairs_skip_measurement_and_get_imputed() {
        let t = truth();
        let plan = FaultPlan {
            failed_nodes: vec![3],
            ..FaultPlan::default()
        };
        let policy = RobustProfilingPolicy::default();
        let (p, cost) = NetworkProfiler::default()
            .profile_robust(&t, 11, &plan, &policy)
            .unwrap();
        let report = p.report().unwrap();
        // 4 dead GPUs: pairs touching them = 2 * 4 * 12 (cross) + 4*3 (among dead).
        let dead_pairs = 2 * 4 * 12 + 4 * 3;
        assert_eq!(report.imputed, dead_pairs);
        assert_eq!(report.retries, dead_pairs * policy.max_retries);
        assert_eq!(cost.retries, report.retries);
        assert!(matches!(
            p.quality(GpuId(0), GpuId(12)),
            MeasurementQuality::Imputed { .. }
        ));
        // Healthy pairs are untouched by the cordon and stay plausible.
        assert!(matches!(
            p.quality(GpuId(0), GpuId(4)),
            MeasurementQuality::Clean
        ));
    }

    #[test]
    fn degraded_links_shift_the_measured_truth() {
        let t = truth();
        let plan = FaultPlan {
            degraded_links: vec![DegradedLink {
                from_node: 0,
                to_node: 1,
                factor: 0.5,
            }],
            ..FaultPlan::default()
        };
        let (p, _) = NetworkProfiler::new(0.0, 0.0, 0.0)
            .profile_robust(&t, 1, &plan, &RobustProfilingPolicy::default())
            .unwrap();
        let measured = p.matrix().between(GpuId(0), GpuId(4));
        assert!((measured - t.between(GpuId(0), GpuId(4)) * 0.5).abs() < 1e-9);
    }

    #[test]
    fn repeats_tighten_the_estimate() {
        let t = truth();
        let prof = NetworkProfiler::new(0.1, 0.0, 0.0);
        let policy_many = RobustProfilingPolicy {
            repeats: 9,
            ..RobustProfilingPolicy::default()
        };
        let err = |p: &ProfiledBandwidth| {
            let mut worst: f64 = 0.0;
            for a in t.topology().gpus() {
                for b in t.topology().gpus() {
                    if a != b {
                        worst = worst.max((p.matrix().between(a, b) / t.between(a, b) - 1.0).abs());
                    }
                }
            }
            worst
        };
        // Median-of-9 beats a single noisy sample on worst-case error for
        // this fixed seed (and costs 9x the per-pair time).
        let (p1, c1) = prof
            .profile_robust(
                &t,
                5,
                &FaultPlan::default(),
                &RobustProfilingPolicy::default(),
            )
            .unwrap();
        let (p9, c9) = prof
            .profile_robust(&t, 5, &FaultPlan::default(), &policy_many)
            .unwrap();
        assert!(err(&p9) < err(&p1));
        assert!(c9.seconds >= c1.seconds);
    }

    #[test]
    fn invalid_policy_and_plan_are_rejected() {
        let t = truth();
        let prof = NetworkProfiler::default();
        let bad_policy = RobustProfilingPolicy {
            repeats: 0,
            ..RobustProfilingPolicy::default()
        };
        assert!(matches!(
            prof.profile_robust(&t, 0, &FaultPlan::default(), &bad_policy),
            Err(ClusterError::InvalidParameter { .. })
        ));
        let bad_plan = FaultPlan {
            failed_nodes: vec![99],
            ..FaultPlan::default()
        };
        assert!(matches!(
            prof.profile_robust(&t, 0, &bad_plan, &RobustProfilingPolicy::default()),
            Err(ClusterError::InvalidFaultPlan { .. })
        ));
    }
}
