//! Importing measured bandwidth matrices.
//!
//! Real deployments would feed Pipette the output of mpiGraph or
//! NCCL-tests instead of a synthetic heterogeneity model. This module
//! parses the mpiGraph result table — a whitespace/comma-separated matrix
//! of per-node-pair send bandwidths (MB/s, as mpiGraph reports) — and
//! expands it to a GPU-level [`BandwidthMatrix`].

use crate::bandwidth::BandwidthMatrix;
use crate::error::ClusterError;
use crate::link::LinkSpec;
use crate::topology::{ClusterTopology, GpuId};

/// Parses an mpiGraph-style send-bandwidth table.
///
/// Expected layout (header row/column optional, `-` or `0` on the
/// diagonal):
///
/// ```text
/// to:     node0   node1   node2
/// node0   -       9500    11800
/// node1   9400    -       10100
/// node2   11700   10000   -
/// ```
///
/// Values are MB/s per node pair. Every GPU pair across two nodes
/// inherits the node-pair bandwidth; intra-node pairs run at
/// `intra_spec`'s nominal speed.
///
/// # Errors
///
/// Returns [`ClusterError::MalformedMatrix`] when the table is ragged,
/// empty, or contains unparseable/non-positive off-diagonal entries.
pub fn parse_mpigraph(
    text: &str,
    gpus_per_node: usize,
    intra_spec: LinkSpec,
    inter_spec: LinkSpec,
) -> Result<BandwidthMatrix, ClusterError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
            .collect();
        // Keep the numeric payload: "-" (diagonal) and parseable numbers.
        // Labels ("node3", "to:") are dropped; a line with no payload at
        // all is a header. A line that mixes unparseable tokens *between*
        // numbers is malformed.
        let first_numeric = cells
            .iter()
            .position(|c| *c == "-" || c.parse::<f64>().is_ok());
        let Some(first_numeric) = first_numeric else {
            continue;
        };
        let mut row = Vec::with_capacity(cells.len() - first_numeric);
        for cell in &cells[first_numeric..] {
            if *cell == "-" {
                row.push(0.0);
            } else {
                let v: f64 = cell.parse().map_err(|_| ClusterError::MalformedMatrix {
                    reason: format!("cannot parse bandwidth cell {cell:?}"),
                })?;
                row.push(v);
            }
        }
        rows.push(row);
    }
    let n = rows.len();
    if n == 0 {
        return Err(ClusterError::MalformedMatrix {
            reason: "empty table".into(),
        });
    }
    if rows.iter().any(|r| r.len() != n) {
        return Err(ClusterError::MalformedMatrix {
            reason: format!("table is not square ({n} rows)"),
        });
    }
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j && v <= 0.0 {
                return Err(ClusterError::MalformedMatrix {
                    reason: format!("non-positive bandwidth at ({i},{j})"),
                });
            }
        }
    }

    let topology = ClusterTopology::new(n, gpus_per_node);
    let mut matrix = BandwidthMatrix::homogeneous(topology, intra_spec, inter_spec);
    const MB: f64 = 1e6;
    for (i, row) in rows.iter().enumerate() {
        for (j, &mb_s) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            let gib_s = mb_s * MB / crate::link::GIB;
            for a in 0..gpus_per_node {
                for b in 0..gpus_per_node {
                    matrix.set(
                        GpuId(i * gpus_per_node + a),
                        GpuId(j * gpus_per_node + b),
                        gib_s,
                    );
                }
            }
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn specs() -> (LinkSpec, LinkSpec) {
        (LinkSpec::new(279.0, 3e-6), LinkSpec::new(11.64, 6e-6))
    }

    const SAMPLE: &str = "\
# mpiGraph send bandwidth (MB/s)
to:     node0   node1   node2
node0   -       9500    11800
node1   9400    -       10100
node2   11700   10000   -
";

    #[test]
    fn parses_labeled_table() {
        let (intra, inter) = specs();
        let m = parse_mpigraph(SAMPLE, 4, intra, inter).expect("valid table");
        assert_eq!(m.topology().num_nodes(), 3);
        assert_eq!(m.topology().gpus_per_node(), 4);
        // 9500 MB/s = 8.85 GiB/s.
        let v = m.node_pair(NodeId(0), NodeId(1));
        assert!((v - 9500.0 * 1e6 / (1024.0f64.powi(3))).abs() < 1e-9);
        // Asymmetric directions preserved.
        assert!(m.node_pair(NodeId(0), NodeId(1)) > m.node_pair(NodeId(1), NodeId(0)));
        // Intra-node pairs at nominal NVLink.
        assert_eq!(m.between(GpuId(0), GpuId(1)), intra.bandwidth_gib_s);
    }

    #[test]
    fn parses_bare_numeric_table() {
        let (intra, inter) = specs();
        let text = "0 1000\n1000 0\n";
        let m = parse_mpigraph(text, 8, intra, inter).expect("valid");
        assert_eq!(m.topology().num_nodes(), 2);
    }

    #[test]
    fn rejects_ragged_and_bad_cells() {
        let (intra, inter) = specs();
        assert!(parse_mpigraph("", 4, intra, inter).is_err());
        assert!(parse_mpigraph("0 100\n100 0 3\n", 4, intra, inter).is_err());
        assert!(parse_mpigraph("0 abc\n100 0\n", 4, intra, inter).is_err());
        assert!(parse_mpigraph("0 -5\n100 0\n", 4, intra, inter).is_err());
    }

    #[test]
    fn imported_matrix_drives_the_stack() {
        // End-to-end: an imported matrix is a first-class BandwidthMatrix.
        let (intra, inter) = specs();
        let m = parse_mpigraph(SAMPLE, 4, intra, inter).unwrap();
        assert!(m.mean_inter_node() > 8.0);
        let t = m.truncated(2);
        assert_eq!(t.topology().num_nodes(), 2);
    }
}
