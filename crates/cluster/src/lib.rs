//! Cluster substrate for the Pipette reproduction.
//!
//! The paper evaluates Pipette on two real clusters (16 nodes of 8× V100 or
//! 8× A100, NVLink intra-node, InfiniBand inter-node). This crate replaces
//! that hardware with a parameterized model of the same *observable*: a
//! pairwise attained-bandwidth matrix between GPUs, exhibiting the
//! heterogeneity that motivates fine-grained worker dedication (§IV of the
//! paper), plus the temporal drift shown in Fig. 3 and a simulated network
//! profiler standing in for mpiGraph / NCCL-tests.
//!
//! # Example
//!
//! ```
//! use pipette_cluster::presets;
//!
//! let cluster = presets::mid_range(16).build(42);
//! assert_eq!(cluster.topology().num_gpus(), 128);
//! // Inter-node links are heterogeneous: attained bandwidth differs per pair.
//! let topo = cluster.topology();
//! let a = topo.gpu(0, 0);
//! let b = topo.gpu(1, 0);
//! let c = topo.gpu(2, 0);
//! assert_ne!(cluster.bandwidth().between(a, b), cluster.bandwidth().between(a, c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod error;
pub mod faults;
pub mod hardware;
pub mod heterogeneity;
pub mod import;
pub mod link;
pub mod presets;
pub mod profiler;
pub mod rand_util;
pub mod temporal;
pub mod topology;

pub use bandwidth::BandwidthMatrix;
pub use error::ClusterError;
pub use faults::{
    CorruptPair, CorruptionKind, DegradedLink, DriftEpisode, FaultPlan, StragglerGpu,
};
pub use hardware::GpuSpec;
pub use heterogeneity::HeterogeneityModel;
pub use import::parse_mpigraph;
pub use link::{LinkClass, LinkSpec, GIB};
pub use presets::{Cluster, ClusterPreset};
pub use profiler::{
    Aggregation, MeasurementQuality, MeasurementReport, NetworkProfiler, PairIncident,
    ProfiledBandwidth, ProfilingCost, RobustProfilingPolicy,
};
pub use temporal::TemporalDrift;
pub use topology::{ClusterTopology, GpuId, NodeId};
