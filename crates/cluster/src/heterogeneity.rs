//! Generator for heterogeneous attained-bandwidth matrices.
//!
//! Real-world clusters attain different bandwidths per link even when every
//! link is nominally identical (§IV, Fig. 3; also reported by PLink and the
//! CORAL system papers the paper cites). We model the attained inter-node
//! bandwidth of each directed node pair as `nominal × efficiency`, with
//! efficiency drawn from a clipped log-normal distribution, a fraction of
//! pairs further slowed as "straggler links" (up to ~2× slower, matching
//! Fig. 4's exaggeration of real traces), and near-symmetric forward and
//! reverse directions.

use crate::bandwidth::BandwidthMatrix;
use crate::link::LinkSpec;
use crate::rand_util::{log_normal, normal};
use crate::topology::{ClusterTopology, GpuId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Statistical model of per-link attained-bandwidth heterogeneity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneityModel {
    /// Mean attained fraction of nominal inter-node bandwidth.
    pub inter_mean_efficiency: f64,
    /// Log-space standard deviation of the inter-node efficiency.
    pub inter_sigma: f64,
    /// Fraction of node pairs that are straggler links.
    pub straggler_fraction: f64,
    /// Multiplier applied to a straggler link's bandwidth (e.g. 0.5 = 2× slower).
    pub straggler_factor: f64,
    /// Log-space sigma of the forward/reverse asymmetry (small: links are
    /// "often almost symmetric").
    pub asymmetry_sigma: f64,
    /// Relative standard deviation of intra-node link efficiency.
    pub intra_sigma: f64,
    /// Mean attained fraction of nominal intra-node bandwidth.
    pub intra_mean_efficiency: f64,
}

impl HeterogeneityModel {
    /// A model matching the spread observed in the paper's 40-day trace:
    /// most links attain 60–90 % of nominal, ~10 % of pairs are ~2× slower.
    pub fn realistic() -> Self {
        Self {
            inter_mean_efficiency: 0.72,
            inter_sigma: 0.28,
            straggler_fraction: 0.08,
            straggler_factor: 0.35,
            asymmetry_sigma: 0.02,
            intra_sigma: 0.015,
            intra_mean_efficiency: 0.92,
        }
    }

    /// A degenerate model with no heterogeneity (attained == mean efficiency
    /// × nominal everywhere). Useful for ablations.
    pub fn none() -> Self {
        Self {
            inter_mean_efficiency: 1.0,
            inter_sigma: 0.0,
            straggler_fraction: 0.0,
            straggler_factor: 1.0,
            asymmetry_sigma: 0.0,
            intra_sigma: 0.0,
            intra_mean_efficiency: 1.0,
        }
    }

    /// Generates an attained-bandwidth matrix for `topology`.
    ///
    /// Heterogeneity is sampled at *node* granularity for the inter-node
    /// fabric (each directed node pair shares one InfiniBand path) with a
    /// small per-GPU-pair jitter, and at GPU granularity for the intra-node
    /// fabric. Deterministic in `seed`.
    pub fn generate(
        &self,
        topology: ClusterTopology,
        intra_spec: LinkSpec,
        inter_spec: LinkSpec,
        seed: u64,
    ) -> BandwidthMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let nodes = topology.num_nodes();

        // Forward efficiency per unordered node pair, then a near-symmetric
        // reverse direction.
        let log_mean = self.inter_mean_efficiency.ln() - 0.5 * self.inter_sigma.powi(2);

        let mut node_eff = vec![0.0f64; nodes * nodes];
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                let mut base: f64 = log_normal(&mut rng, log_mean, self.inter_sigma);
                if self.straggler_fraction > 0.0 && rng.gen::<f64>() < self.straggler_fraction {
                    base *= self.straggler_factor;
                }
                let base = base.clamp(0.05, 1.0);
                let fwd = base;
                let rev =
                    (base * normal(&mut rng, 0.0, self.asymmetry_sigma).exp()).clamp(0.05, 1.0);
                node_eff[i * nodes + j] = fwd;
                node_eff[j * nodes + i] = rev;
            }
        }

        let mut matrix = BandwidthMatrix::homogeneous(topology, intra_spec, inter_spec);
        let n = topology.num_gpus();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ga, gb) = (GpuId(a), GpuId(b));
                let bw = if topology.same_node(ga, gb) {
                    let eff = normal(
                        &mut rng,
                        self.intra_mean_efficiency,
                        self.intra_sigma * self.intra_mean_efficiency,
                    );
                    intra_spec.bandwidth_gib_s * eff.clamp(0.5, 1.0)
                } else {
                    let (na, nb) = (topology.node_of(ga).0, topology.node_of(gb).0);
                    let eff = node_eff[na * nodes + nb];
                    // Small per-GPU-pair jitter on top of the node-pair
                    // efficiency: the same IB path is shared, but NIC/PCIe
                    // effects differ slightly.
                    let jit = normal(&mut rng, 1.0, 0.01);
                    inter_spec.bandwidth_gib_s * (eff * jit).clamp(0.05, 1.0)
                };
                matrix.set(ga, gb, bw);
            }
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn topo() -> ClusterTopology {
        ClusterTopology::new(8, 8)
    }

    fn specs() -> (LinkSpec, LinkSpec) {
        (LinkSpec::new(300.0, 2e-6), LinkSpec::new(11.64, 5e-6))
    }

    #[test]
    fn deterministic_in_seed() {
        let (intra, inter) = specs();
        let m1 = HeterogeneityModel::realistic().generate(topo(), intra, inter, 7);
        let m2 = HeterogeneityModel::realistic().generate(topo(), intra, inter, 7);
        assert_eq!(m1, m2);
        let m3 = HeterogeneityModel::realistic().generate(topo(), intra, inter, 8);
        assert_ne!(m1, m3);
    }

    #[test]
    fn inter_node_links_are_heterogeneous() {
        let (intra, inter) = specs();
        let m = HeterogeneityModel::realistic().generate(topo(), intra, inter, 1);
        let mut values = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    values.push(m.node_pair(NodeId(i), NodeId(j)));
                }
            }
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.3,
            "expected meaningful spread, got {min}..{max}"
        );
        assert!(max <= inter.bandwidth_gib_s + 1e-9);
    }

    #[test]
    fn links_are_nearly_symmetric() {
        let (intra, inter) = specs();
        let m = HeterogeneityModel::realistic().generate(topo(), intra, inter, 2);
        let t = m.topology();
        let mut worst_ratio = 1.0f64;
        for i in 0..t.num_nodes() {
            for j in 0..t.num_nodes() {
                if i == j {
                    continue;
                }
                let f = m.node_pair(NodeId(i), NodeId(j));
                let r = m.node_pair(NodeId(j), NodeId(i));
                worst_ratio = worst_ratio.max(f / r).max(r / f);
            }
        }
        // "bidirectional bandwidths ... are often almost symmetric"
        assert!(worst_ratio < 1.15, "asymmetry too large: {worst_ratio}");
    }

    #[test]
    fn no_heterogeneity_model_is_flat() {
        let (intra, inter) = specs();
        let m = HeterogeneityModel::none().generate(topo(), intra, inter, 3);
        let first = m.node_pair(NodeId(0), NodeId(1));
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    let v = m.node_pair(NodeId(i), NodeId(j));
                    assert!((v / first - 1.0).abs() < 0.05, "{v} vs {first}");
                }
            }
        }
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        let (intra, inter) = specs();
        let m = HeterogeneityModel::realistic().generate(topo(), intra, inter, 4);
        assert!(m.between(GpuId(0), GpuId(1)) > 10.0 * m.between(GpuId(0), GpuId(8)));
    }
}
