//! Interconnect link classes and their nominal (document-specified) specs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The fabric a pair of GPUs communicates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same GPU — no transfer needed.
    Loopback,
    /// GPUs on the same node (NVLink / NVSwitch).
    IntraNode,
    /// GPUs on different nodes (InfiniBand).
    InterNode,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::Loopback => "loopback",
            LinkClass::IntraNode => "intra-node",
            LinkClass::InterNode => "inter-node",
        };
        f.write_str(s)
    }
}

/// Nominal link characteristics as printed on the datasheet.
///
/// The paper's point is precisely that these numbers are *not* what a real
/// cluster attains per link; [`crate::HeterogeneityModel`] perturbs them
/// into an attained-bandwidth matrix. Baselines such as AMP consume the
/// nominal values directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Peak point-to-point bandwidth in GiB/s.
    pub bandwidth_gib_s: f64,
    /// Per-message latency (the alpha term) in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Creates a spec from bandwidth (GiB/s) and latency (seconds).
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not strictly positive or latency is negative.
    pub fn new(bandwidth_gib_s: f64, latency_s: f64) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` contract for hand-authored link specs
        assert!(bandwidth_gib_s > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Self {
            bandwidth_gib_s,
            latency_s,
        }
    }

    /// Time in seconds to move `bytes` over this link at nominal speed.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gib_s * GIB)
    }
}

/// One GiB in bytes, as `f64` for bandwidth arithmetic.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Converts a link-level bandwidth in Gb/s (network convention) to GiB/s.
pub fn gbps_to_gib_s(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0 / GIB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_alpha() {
        let spec = LinkSpec::new(1.0, 1e-6);
        let t = spec.transfer_time_s(GIB as u64);
        assert!((t - 1.000001).abs() < 1e-9);
    }

    #[test]
    fn gbps_conversion() {
        // 100 Gb/s InfiniBand EDR = 12.5 GB/s ~= 11.64 GiB/s.
        let g = gbps_to_gib_s(100.0);
        assert!((g - 11.6415).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkSpec::new(0.0, 0.0);
    }

    #[test]
    fn link_class_display() {
        assert_eq!(LinkClass::IntraNode.to_string(), "intra-node");
        assert_eq!(LinkClass::InterNode.to_string(), "inter-node");
        assert_eq!(LinkClass::Loopback.to_string(), "loopback");
    }
}
