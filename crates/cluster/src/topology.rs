//! Physical cluster topology: nodes and the GPUs they host.

use crate::error::ClusterError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical GPU, globally indexed across the cluster.
///
/// GPU `g` lives on node `g / gpus_per_node` with local rank
/// `g % gpus_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(pub usize);

/// Identifier of a physical node (server) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for GpuId {
    fn from(v: usize) -> Self {
        GpuId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Shape of the cluster: `nodes × gpus_per_node` GPUs.
///
/// Both evaluation clusters in the paper (Table I) are 16 nodes × 8 GPUs;
/// the scalability study (Fig. 8) shrinks the node count to 4/8/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterTopology {
    nodes: usize,
    gpus_per_node: usize,
}

impl ClusterTopology {
    /// Creates a topology of `nodes` servers with `gpus_per_node` GPUs each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` contract; dimensions come from presets or validated specs
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(gpus_per_node > 0, "nodes must host at least one GPU");
        Self {
            nodes,
            gpus_per_node,
        }
    }

    /// Fallible variant of [`Self::new`] for dimensions that come from
    /// user input (CLI specs, imported tables).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidParameter`] if either dimension is zero.
    pub fn try_new(nodes: usize, gpus_per_node: usize) -> Result<Self, ClusterError> {
        if nodes == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "nodes".into(),
                reason: "cluster must have at least one node".into(),
            });
        }
        if gpus_per_node == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "gpus_per_node".into(),
                reason: "nodes must host at least one GPU".into(),
            });
        }
        Ok(Self {
            nodes,
            gpus_per_node,
        })
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The node hosting `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        debug_assert!(gpu.0 < self.num_gpus(), "gpu {gpu} out of range");
        NodeId(gpu.0 / self.gpus_per_node)
    }

    /// Local rank of `gpu` within its node (0-based).
    pub fn local_rank(&self, gpu: GpuId) -> usize {
        debug_assert!(gpu.0 < self.num_gpus(), "gpu {gpu} out of range");
        gpu.0 % self.gpus_per_node
    }

    /// The GPU with a given local rank on a given node.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `local_rank` are out of range.
    pub fn gpu(&self, node: usize, local_rank: usize) -> GpuId {
        debug_assert!(node < self.nodes, "node {node} out of range");
        debug_assert!(
            local_rank < self.gpus_per_node,
            "local rank {local_rank} out of range"
        );
        GpuId(node * self.gpus_per_node + local_rank)
    }

    /// Whether two GPUs share a node (and therefore the intra-node fabric).
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterator over all GPU ids in index order.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.num_gpus()).map(GpuId)
    }

    /// Iterator over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes).map(NodeId)
    }

    /// The GPUs hosted on `node`, in local-rank order.
    pub fn gpus_of_node(&self, node: NodeId) -> impl Iterator<Item = GpuId> + '_ {
        debug_assert!(node.0 < self.nodes, "node {node} out of range");
        let base = node.0 * self.gpus_per_node;
        (base..base + self.gpus_per_node).map(GpuId)
    }

    /// Restricts the topology to its first `nodes` nodes.
    ///
    /// Used by the memory-estimator training pipeline, which profiles only
    /// the first four nodes of the cluster (§VI).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the current node count.
    pub fn truncated(&self, nodes: usize) -> Self {
        debug_assert!(
            nodes > 0 && nodes <= self.nodes,
            "invalid truncation to {nodes} nodes"
        );
        Self {
            nodes,
            gpus_per_node: self.gpus_per_node,
        }
    }
}

impl fmt::Display for ClusterTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nodes x {} GPUs", self.nodes, self.gpus_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let topo = ClusterTopology::new(4, 8);
        for node in 0..4 {
            for lr in 0..8 {
                let g = topo.gpu(node, lr);
                assert_eq!(topo.node_of(g), NodeId(node));
                assert_eq!(topo.local_rank(g), lr);
            }
        }
    }

    #[test]
    fn same_node_detection() {
        let topo = ClusterTopology::new(2, 4);
        assert!(topo.same_node(GpuId(0), GpuId(3)));
        assert!(!topo.same_node(GpuId(3), GpuId(4)));
    }

    #[test]
    fn gpu_iteration_covers_all() {
        let topo = ClusterTopology::new(3, 2);
        let ids: Vec<_> = topo.gpus().collect();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], GpuId(0));
        assert_eq!(ids[5], GpuId(5));
    }

    #[test]
    fn gpus_of_node_are_contiguous() {
        let topo = ClusterTopology::new(3, 4);
        let ids: Vec<_> = topo.gpus_of_node(NodeId(1)).collect();
        assert_eq!(ids, vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)]);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let topo = ClusterTopology::new(16, 8);
        let small = topo.truncated(4);
        assert_eq!(small.num_gpus(), 32);
        assert_eq!(small.gpus_per_node(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_out_of_range() {
        ClusterTopology::new(1, 2).node_of(GpuId(2));
    }

    #[test]
    #[should_panic(expected = "invalid truncation")]
    fn truncation_rejects_growth() {
        ClusterTopology::new(2, 2).truncated(3);
    }

    #[test]
    fn try_new_rejects_zero_dimensions() {
        assert!(matches!(
            ClusterTopology::try_new(0, 8),
            Err(ClusterError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ClusterTopology::try_new(2, 0),
            Err(ClusterError::InvalidParameter { .. })
        ));
        assert_eq!(
            ClusterTopology::try_new(2, 8).unwrap(),
            ClusterTopology::new(2, 8)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(GpuId(3).to_string(), "gpu3");
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(ClusterTopology::new(2, 8).to_string(), "2 nodes x 8 GPUs");
    }
}
