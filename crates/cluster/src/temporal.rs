//! Temporal drift of attained link bandwidths.
//!
//! Fig. 3 of the paper shows a 40-day continuous mpiGraph profile of a
//! commercial cluster: each node pair's latency wanders over time while the
//! pairs stay clearly separated. We model this as a mean-reverting
//! (Ornstein–Uhlenbeck-style) multiplicative random walk around the base
//! attained bandwidth of each directed node pair.

use crate::bandwidth::BandwidthMatrix;
use crate::error::ClusterError;
use crate::rand_util::normal;
use crate::topology::GpuId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Mean-reverting daily drift of the attained bandwidth matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalDrift {
    /// Standard deviation of the daily log-space innovation.
    pub daily_sigma: f64,
    /// Strength of mean reversion toward the base matrix, in `[0, 1]`.
    pub reversion: f64,
}

impl Default for TemporalDrift {
    fn default() -> Self {
        Self {
            daily_sigma: 0.03,
            reversion: 0.25,
        }
    }
}

impl TemporalDrift {
    /// Creates a drift model.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidParameter`] if `daily_sigma` is negative or
    /// non-finite, or `reversion` is outside `[0, 1]`.
    pub fn new(daily_sigma: f64, reversion: f64) -> Result<Self, ClusterError> {
        if !(daily_sigma.is_finite() && daily_sigma >= 0.0) {
            return Err(ClusterError::InvalidParameter {
                name: "daily_sigma".into(),
                reason: format!("{daily_sigma} must be finite and non-negative"),
            });
        }
        if !(reversion.is_finite() && (0.0..=1.0).contains(&reversion)) {
            return Err(ClusterError::InvalidParameter {
                name: "reversion".into(),
                reason: format!("{reversion} must be in [0, 1]"),
            });
        }
        Ok(Self {
            daily_sigma,
            reversion,
        })
    }

    /// Produces `days` consecutive daily snapshots of the matrix.
    ///
    /// Day 0 is the base matrix itself. Inter-node links drift at node-pair
    /// granularity; intra-node links are held stable (NVLink does not share
    /// a switched fabric with other tenants). Deterministic in `seed`.
    pub fn series(&self, base: &BandwidthMatrix, days: usize, seed: u64) -> Vec<BandwidthMatrix> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = *base.topology();
        let nodes = topo.num_nodes();
        // Log-space deviation from base, per directed node pair.
        let mut dev = vec![0.0f64; nodes * nodes];
        let mut out = Vec::with_capacity(days);
        for day in 0..days {
            if day > 0 {
                for d in dev.iter_mut() {
                    let innovation = normal(&mut rng, 0.0, self.daily_sigma);
                    *d = *d * (1.0 - self.reversion) + innovation;
                }
            }
            let mut m = base.clone();
            for a in topo.gpus() {
                for b in topo.gpus() {
                    if a == b || topo.same_node(a, b) {
                        continue;
                    }
                    let (na, nb) = (topo.node_of(a).0, topo.node_of(b).0);
                    let factor = dev[na * nodes + nb].exp();
                    let bw = (base.between(a, b) * factor).min(base.inter_spec().bandwidth_gib_s);
                    m.set(GpuId(a.0), GpuId(b.0), bw.max(0.05));
                }
            }
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneity::HeterogeneityModel;
    use crate::link::LinkSpec;
    use crate::topology::{ClusterTopology, NodeId};

    fn base() -> BandwidthMatrix {
        HeterogeneityModel::realistic().generate(
            ClusterTopology::new(4, 4),
            LinkSpec::new(300.0, 2e-6),
            LinkSpec::new(11.64, 5e-6),
            11,
        )
    }

    #[test]
    fn day_zero_is_base() {
        let b = base();
        let series = TemporalDrift::default().series(&b, 3, 5);
        assert_eq!(series[0], b);
        assert_eq!(series.len(), 3);
    }

    #[test]
    fn drift_changes_inter_but_not_intra() {
        let b = base();
        let series = TemporalDrift::default().series(&b, 10, 5);
        let last = &series[9];
        // Intra-node links stable.
        assert_eq!(
            last.between(GpuId(0), GpuId(1)),
            b.between(GpuId(0), GpuId(1))
        );
        // Some inter-node link moved.
        let moved = (0..4).any(|i| {
            (0..4).any(|j| {
                i != j
                    && (last.node_pair(NodeId(i), NodeId(j)) - b.node_pair(NodeId(i), NodeId(j)))
                        .abs()
                        > 1e-6
            })
        });
        assert!(moved);
    }

    #[test]
    fn drift_is_bounded_by_nominal() {
        let b = base();
        let series = TemporalDrift::new(0.2, 0.05).unwrap().series(&b, 40, 9);
        for day in &series {
            for a in day.topology().gpus() {
                for c in day.topology().gpus() {
                    if a != c && !day.topology().same_node(a, c) {
                        let bw = day.between(a, c);
                        assert!(bw <= b.inter_spec().bandwidth_gib_s + 1e-9);
                        assert!(bw >= 0.05);
                    }
                }
            }
        }
    }

    #[test]
    fn series_is_deterministic() {
        let b = base();
        let s1 = TemporalDrift::default().series(&b, 5, 123);
        let s2 = TemporalDrift::default().series(&b, 5, 123);
        assert_eq!(s1, s2);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            TemporalDrift::new(0.1, 1.5),
            Err(ClusterError::InvalidParameter { .. })
        ));
        assert!(matches!(
            TemporalDrift::new(-0.1, 0.5),
            Err(ClusterError::InvalidParameter { .. })
        ));
        assert!(matches!(
            TemporalDrift::new(f64::NAN, 0.5),
            Err(ClusterError::InvalidParameter { .. })
        ));
        assert!(TemporalDrift::new(0.1, 0.5).is_ok());
    }
}
