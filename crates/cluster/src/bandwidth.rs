//! The attained pairwise bandwidth matrix — the central observable of the
//! paper.
//!
//! `B(g1, g2)` is the bandwidth actually achieved between two GPUs, which in
//! a real cluster differs per link (Fig. 3) even when all links share the
//! same nominal spec.

use crate::error::ClusterError;
use crate::link::{LinkClass, LinkSpec};
use crate::topology::{ClusterTopology, GpuId, NodeId};
use serde::{Deserialize, Serialize};

/// Dense GPU×GPU matrix of attained bandwidths in GiB/s.
///
/// The diagonal is conventionally `f64::INFINITY` (no transfer). The matrix
/// is *directional*: `between(a, b)` may differ slightly from
/// `between(b, a)`, mirroring the paper's observation that bidirectional
/// bandwidths are "often almost symmetric" (which motivates the SA *reverse*
/// move).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthMatrix {
    topology: ClusterTopology,
    intra_spec: LinkSpec,
    inter_spec: LinkSpec,
    /// Row-major `num_gpus x num_gpus` attained bandwidth, GiB/s. The
    /// diagonal is `INFINITY`, which JSON cannot represent, so the field
    /// round-trips through a null-aware codec.
    #[serde(with = "infinite_f64_vec")]
    data: Vec<f64>,
}

/// Serde codec mapping non-finite `f64`s to JSON `null` and back.
mod infinite_f64_vec {
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(data: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let encoded: Vec<Option<f64>> = data
            .iter()
            .map(|&v| if v.is_finite() { Some(v) } else { None })
            .collect();
        encoded.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let encoded: Vec<Option<f64>> = Vec::deserialize(d)?;
        encoded
            .into_iter()
            .map(|v| match v {
                Some(x) if x.is_finite() => Ok(x),
                Some(x) => Err(D::Error::custom(format!("non-finite bandwidth {x}"))),
                None => Ok(f64::INFINITY),
            })
            .collect()
    }
}

impl BandwidthMatrix {
    /// Builds a matrix from raw per-pair data.
    ///
    /// # Errors
    ///
    /// [`ClusterError::MalformedMatrix`] if `data` is not `num_gpus²` long
    /// or contains a non-positive or non-finite off-diagonal entry.
    pub fn from_raw(
        topology: ClusterTopology,
        intra_spec: LinkSpec,
        inter_spec: LinkSpec,
        data: Vec<f64>,
    ) -> Result<Self, ClusterError> {
        let n = topology.num_gpus();
        if data.len() != n * n {
            return Err(ClusterError::MalformedMatrix {
                reason: format!(
                    "expected {} entries for {n} gpus, got {}",
                    n * n,
                    data.len()
                ),
            });
        }
        for i in 0..n {
            for j in 0..n {
                let v = data[i * n + j];
                if i != j && !(v.is_finite() && v > 0.0) {
                    return Err(ClusterError::MalformedMatrix {
                        reason: format!("bandwidth ({i},{j}) is {v}, must be finite and positive"),
                    });
                }
            }
        }
        Ok(Self {
            topology,
            intra_spec,
            inter_spec,
            data,
        })
    }

    /// Builds a perfectly homogeneous matrix at nominal speeds.
    ///
    /// This is the world the baselines assume: every intra-node pair runs at
    /// the NVLink datasheet number and every inter-node pair at the
    /// InfiniBand datasheet number.
    pub fn homogeneous(
        topology: ClusterTopology,
        intra_spec: LinkSpec,
        inter_spec: LinkSpec,
    ) -> Self {
        let n = topology.num_gpus();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = if i == j {
                    f64::INFINITY
                } else if topology.same_node(GpuId(i), GpuId(j)) {
                    intra_spec.bandwidth_gib_s
                } else {
                    inter_spec.bandwidth_gib_s
                };
            }
        }
        Self {
            topology,
            intra_spec,
            inter_spec,
            data,
        }
    }

    /// The topology this matrix is defined over.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Nominal spec of the intra-node fabric.
    pub fn intra_spec(&self) -> LinkSpec {
        self.intra_spec
    }

    /// Nominal spec of the inter-node fabric.
    pub fn inter_spec(&self) -> LinkSpec {
        self.inter_spec
    }

    /// Link class between two GPUs.
    pub fn link_class(&self, a: GpuId, b: GpuId) -> LinkClass {
        if a == b {
            LinkClass::Loopback
        } else if self.topology.same_node(a, b) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// Per-message latency (alpha) between two GPUs, in seconds.
    pub fn latency_s(&self, a: GpuId, b: GpuId) -> f64 {
        match self.link_class(a, b) {
            LinkClass::Loopback => 0.0,
            LinkClass::IntraNode => self.intra_spec.latency_s,
            LinkClass::InterNode => self.inter_spec.latency_s,
        }
    }

    /// Attained bandwidth from `a` to `b` in GiB/s (`INFINITY` if `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn between(&self, a: GpuId, b: GpuId) -> f64 {
        let n = self.topology.num_gpus();
        debug_assert!(a.0 < n && b.0 < n, "gpu id out of range");
        self.data[a.0 * n + b.0]
    }

    /// Sets the attained bandwidth of one directed pair.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range, if `a == b`, or `gib_s <= 0`.
    pub fn set(&mut self, a: GpuId, b: GpuId, gib_s: f64) {
        let n = self.topology.num_gpus();
        debug_assert!(a.0 < n && b.0 < n, "gpu id out of range");
        debug_assert!(a != b, "cannot set loopback bandwidth");
        debug_assert!(gib_s > 0.0, "bandwidth must be positive");
        self.data[a.0 * n + b.0] = gib_s;
    }

    /// The slowest directed link among all ordered pairs drawn from `group`.
    ///
    /// This is the `min B` term of the hierarchical all-reduce latency
    /// (Eq. 6): a ring all-reduce runs at the speed of its slowest member
    /// link. Returns `INFINITY` for groups of fewer than two GPUs.
    pub fn min_over_group(&self, group: &[GpuId]) -> f64 {
        let mut min = f64::INFINITY;
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                min = min.min(self.between(a, b));
                min = min.min(self.between(b, a));
            }
        }
        min
    }

    /// Mean attained bandwidth over inter-node directed pairs.
    pub fn mean_inter_node(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in self.topology.gpus() {
            for b in self.topology.gpus() {
                if self.link_class(a, b) == LinkClass::InterNode {
                    sum += self.between(a, b);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Restricts the matrix to the first `nodes` nodes of the topology.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the node count.
    pub fn truncated(&self, nodes: usize) -> Self {
        let small = self.topology.truncated(nodes);
        let n = small.num_gpus();
        let big_n = self.topology.num_gpus();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = self.data[i * big_n + j];
            }
        }
        Self {
            topology: small,
            intra_spec: self.intra_spec,
            inter_spec: self.inter_spec,
            data,
        }
    }

    /// Restricts the matrix to an arbitrary subset of nodes (not just a
    /// prefix, unlike [`Self::truncated`]). Surviving nodes are renumbered
    /// densely in ascending order of their original ids; per-pair attained
    /// bandwidths between survivors are preserved exactly. This is the
    /// substrate of graceful degradation: after node dropout the
    /// configurator re-runs on the subcluster this returns.
    ///
    /// # Errors
    ///
    /// [`ClusterError::EmptySelection`] if `keep` is empty after
    /// de-duplication, [`ClusterError::InvalidParameter`] if it references
    /// a node outside the topology.
    pub fn select_nodes(&self, keep: &[NodeId]) -> Result<Self, ClusterError> {
        let mut nodes: Vec<usize> = keep.iter().map(|n| n.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return Err(ClusterError::EmptySelection);
        }
        if let Some(&bad) = nodes.iter().find(|&&n| n >= self.topology.num_nodes()) {
            return Err(ClusterError::InvalidParameter {
                name: "node selection".into(),
                reason: format!(
                    "node {bad} outside topology of {} nodes",
                    self.topology.num_nodes()
                ),
            });
        }
        let gpn = self.topology.gpus_per_node();
        let small = ClusterTopology::new(nodes.len(), gpn);
        let n = small.num_gpus();
        let big_n = self.topology.num_gpus();
        // Old global GPU index of each surviving GPU, in new index order.
        let old_gpu: Vec<usize> = nodes
            .iter()
            .flat_map(|&node| (0..gpn).map(move |lr| node * gpn + lr))
            .collect();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = self.data[old_gpu[i] * big_n + old_gpu[j]];
            }
        }
        Ok(Self {
            topology: small,
            intra_spec: self.intra_spec,
            inter_spec: self.inter_spec,
            data,
        })
    }

    /// Node-to-node attained bandwidth: the bandwidth between local rank 0
    /// GPUs of the two nodes. Used for reporting (Fig. 3 traces).
    pub fn node_pair(&self, a: NodeId, b: NodeId) -> f64 {
        self.between(self.topology.gpu(a.0, 0), self.topology.gpu(b.0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn specs() -> (LinkSpec, LinkSpec) {
        (LinkSpec::new(300.0, 2e-6), LinkSpec::new(11.6, 5e-6))
    }

    fn homog() -> BandwidthMatrix {
        let (intra, inter) = specs();
        BandwidthMatrix::homogeneous(ClusterTopology::new(2, 4), intra, inter)
    }

    #[test]
    fn homogeneous_matches_specs() {
        let m = homog();
        assert_eq!(m.between(GpuId(0), GpuId(1)), 300.0);
        assert_eq!(m.between(GpuId(0), GpuId(4)), 11.6);
        assert!(m.between(GpuId(3), GpuId(3)).is_infinite());
    }

    #[test]
    fn set_and_get_directed() {
        let mut m = homog();
        m.set(GpuId(0), GpuId(4), 6.0);
        assert_eq!(m.between(GpuId(0), GpuId(4)), 6.0);
        assert_eq!(m.between(GpuId(4), GpuId(0)), 11.6);
    }

    #[test]
    fn min_over_group_finds_slowest() {
        let mut m = homog();
        m.set(GpuId(0), GpuId(4), 3.0);
        assert_eq!(m.min_over_group(&[GpuId(0), GpuId(4)]), 3.0);
        assert_eq!(m.min_over_group(&[GpuId(0), GpuId(1)]), 300.0);
        assert!(m.min_over_group(&[GpuId(0)]).is_infinite());
    }

    #[test]
    fn link_class_and_latency() {
        let m = homog();
        assert_eq!(m.link_class(GpuId(0), GpuId(0)), LinkClass::Loopback);
        assert_eq!(m.link_class(GpuId(0), GpuId(1)), LinkClass::IntraNode);
        assert_eq!(m.link_class(GpuId(0), GpuId(5)), LinkClass::InterNode);
        assert_eq!(m.latency_s(GpuId(0), GpuId(5)), 5e-6);
        assert_eq!(m.latency_s(GpuId(0), GpuId(0)), 0.0);
    }

    #[test]
    fn truncation_preserves_prefix_links() {
        let mut m = homog();
        m.set(GpuId(1), GpuId(2), 200.0);
        let t = m.truncated(1);
        assert_eq!(t.topology().num_gpus(), 4);
        assert_eq!(t.between(GpuId(1), GpuId(2)), 200.0);
    }

    #[test]
    fn mean_inter_node_of_homogeneous_is_nominal() {
        let m = homog();
        assert!((m.mean_inter_node() - 11.6).abs() < 1e-12);
    }

    #[test]
    fn node_pair_uses_rank0() {
        let mut m = homog();
        m.set(GpuId(0), GpuId(4), 5.5);
        assert_eq!(m.node_pair(NodeId(0), NodeId(1)), 5.5);
    }

    #[test]
    #[should_panic(expected = "cannot set loopback")]
    fn set_rejects_loopback() {
        homog().set(GpuId(0), GpuId(0), 1.0);
    }

    #[test]
    fn from_raw_validates_shape_and_values() {
        let (intra, inter) = specs();
        let topo = ClusterTopology::new(1, 2);
        let ok = BandwidthMatrix::from_raw(
            topo,
            intra,
            inter,
            vec![f64::INFINITY, 5.0, 6.0, f64::INFINITY],
        )
        .expect("valid matrix");
        assert_eq!(ok.between(GpuId(0), GpuId(1)), 5.0);
        let short = BandwidthMatrix::from_raw(topo, intra, inter, vec![1.0; 3]);
        assert!(matches!(short, Err(ClusterError::MalformedMatrix { .. })));
        let nan = BandwidthMatrix::from_raw(
            topo,
            intra,
            inter,
            vec![f64::INFINITY, f64::NAN, 6.0, f64::INFINITY],
        );
        assert!(matches!(nan, Err(ClusterError::MalformedMatrix { .. })));
        let negative =
            BandwidthMatrix::from_raw(topo, intra, inter, vec![f64::INFINITY, -1.0, 6.0, 0.0]);
        assert!(matches!(
            negative,
            Err(ClusterError::MalformedMatrix { .. })
        ));
    }

    #[test]
    fn select_nodes_preserves_survivor_links() {
        let (intra, inter) = specs();
        let mut m = BandwidthMatrix::homogeneous(ClusterTopology::new(4, 2), intra, inter);
        // Mark links touching nodes 0 and 2 with recognizable values.
        m.set(GpuId(0), GpuId(4), 7.5); // node 0 -> node 2
        m.set(GpuId(5), GpuId(1), 8.5); // node 2 -> node 0
        let s = m.select_nodes(&[NodeId(2), NodeId(0)]).expect("selectable");
        assert_eq!(s.topology().num_nodes(), 2);
        // Node 0 stays gpus {0,1}; node 2 becomes new node 1 = gpus {2,3}.
        assert_eq!(s.between(GpuId(0), GpuId(2)), 7.5);
        assert_eq!(s.between(GpuId(3), GpuId(1)), 8.5);
        assert!(s.between(GpuId(2), GpuId(2)).is_infinite());
        // Prefix selection agrees with truncation.
        assert_eq!(
            m.select_nodes(&[NodeId(0), NodeId(1)]).unwrap(),
            m.truncated(2)
        );
    }

    #[test]
    fn select_nodes_rejects_empty_and_out_of_range() {
        let m = homog();
        assert_eq!(m.select_nodes(&[]), Err(ClusterError::EmptySelection));
        assert!(matches!(
            m.select_nodes(&[NodeId(5)]),
            Err(ClusterError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn json_round_trip_preserves_infinite_diagonal() {
        let m = homog();
        let json = serde_json::to_string(&m).expect("serializable");
        let back: BandwidthMatrix = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, m);
        assert!(back.between(GpuId(2), GpuId(2)).is_infinite());
    }
}
