//! Minimal distribution sampling helpers.
//!
//! The workspace deliberately keeps its dependency set to the offline crates
//! (`rand`, `proptest`, `criterion`, `serde`), so Gaussian and log-normal
//! sampling are implemented here via the Box–Muller transform instead of
//! pulling in `rand_distr`.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sigma²)`.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Samples a log-normal with the given *log-space* mean and sigma.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, log_mean: f64, sigma: f64) -> f64 {
    normal(rng, log_mean, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, -0.3, 0.2) > 0.0);
        }
    }

    #[test]
    fn log_normal_mean_matches_formula() {
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (mu, sigma) = (-0.25f64, 0.15f64);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| log_normal(&mut rng, mu, sigma)).sum::<f64>() / n as f64;
        let expected = (mu + sigma * sigma / 2.0).exp();
        assert!(
            (mean / expected - 1.0).abs() < 0.01,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        normal(&mut rng, 0.0, -1.0);
    }
}
