//! Dev aid: compare lexer line numbers against the real file.
fn main() {
    let path = std::env::args().nth(1).expect("path");
    let src = std::fs::read_to_string(&path).expect("read");
    let lexed = pipette_lint::lexer::lex(&src);
    let real: Vec<&str> = src.lines().collect();
    for t in &lexed.tokens {
        if let pipette_lint::lexer::TokenKind::Ident(name) = &t.kind {
            let line = real.get(t.line as usize - 1).copied().unwrap_or("");
            if !line.contains(name.as_str()) {
                println!(
                    "DRIFT at token line {}: ident `{}` not on that line: {:?}",
                    t.line, name, line
                );
                return;
            }
        }
    }
    println!("no drift");
}
