//! The gate that keeps the gate honest: lint the real workspace from the
//! test suite, so `cargo test` fails the moment a violation lands —
//! even for contributors who never run `pipette-lint` by hand.

use pipette_lint::{lint_workspace, Config};
use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has two ancestors")
}

#[test]
fn workspace_has_no_active_violations() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    let active: Vec<String> = report
        .violations()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        active.is_empty(),
        "workspace must stay lint-clean; fix or waive (with justification):\n{}",
        active.join("\n")
    );
}

#[test]
fn workspace_scan_covers_all_first_party_crates() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    for krate in [
        "bench", "cli", "cluster", "core", "lint", "mlp", "model", "obs", "serve", "sim",
    ] {
        let prefix = format!("crates/{krate}/");
        assert!(
            report.files.iter().any(|f| f.starts_with(&prefix)),
            "no files scanned under {prefix}; did the walker break?"
        );
    }
}

#[test]
fn every_waiver_carries_a_justification() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    for w in report.waivers() {
        let why = w.justification.as_deref().unwrap_or("");
        assert!(
            why.split_whitespace().count() >= 3,
            "{}:{} waives {} with a throwaway justification: {why:?}",
            w.file,
            w.line,
            w.rule
        );
    }
}

/// The PR-10 burn-down dropped the waiver count from 45 to 33. This is
/// a ratchet: new waivers need either a removed one elsewhere or a
/// deliberate bump here, reviewed like any other budget change.
const WAIVER_CEILING: usize = 33;

#[test]
fn waiver_count_never_regresses_past_the_ceiling() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    let count = report.waivers().count();
    assert!(
        count <= WAIVER_CEILING,
        "{count} waivers exceeds the ceiling of {WAIVER_CEILING}; fix the \
         violation instead of waiving it, or bump the ceiling with review"
    );
}

#[test]
fn semantic_layer_resolves_the_workspace_call_graph() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    let g = &report.graph;
    // The workspace has well over a thousand functions; if resolution
    // drops below these floors the graph rules (D6/D8/D9) are running
    // on air and their "0 active" means nothing.
    assert!(g.functions >= 500, "only {} functions parsed", g.functions);
    assert!(g.public_fns >= 200, "only {} public fns", g.public_fns);
    assert!(
        g.resolved_edges >= 300,
        "only {} resolved call edges; the resolver has regressed",
        g.resolved_edges
    );
    assert!(
        g.resolved_edges <= g.call_sites,
        "resolved more edges than call sites: {} > {}",
        g.resolved_edges,
        g.call_sites
    );
}

#[test]
fn every_first_party_manifest_is_scanned_for_d10() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    assert!(
        report.manifests.iter().any(|m| m == "Cargo.toml"),
        "workspace root manifest missing from the D10 scan"
    );
    for krate in [
        "bench", "cli", "cluster", "core", "lint", "mlp", "model", "obs", "serve", "sim",
    ] {
        let want = format!("crates/{krate}/Cargo.toml");
        assert!(
            report.manifests.contains(&want),
            "{want} missing from the D10 scan"
        );
    }
}
