//! The gate that keeps the gate honest: lint the real workspace from the
//! test suite, so `cargo test` fails the moment a violation lands —
//! even for contributors who never run `pipette-lint` by hand.

use pipette_lint::{lint_workspace, Config};
use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has two ancestors")
}

#[test]
fn workspace_has_no_active_violations() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    let active: Vec<String> = report
        .violations()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        active.is_empty(),
        "workspace must stay lint-clean; fix or waive (with justification):\n{}",
        active.join("\n")
    );
}

#[test]
fn workspace_scan_covers_all_first_party_crates() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    for krate in [
        "bench", "cli", "cluster", "core", "lint", "mlp", "model", "obs", "sim",
    ] {
        let prefix = format!("crates/{krate}/");
        assert!(
            report.files.iter().any(|f| f.starts_with(&prefix)),
            "no files scanned under {prefix}; did the walker break?"
        );
    }
}

#[test]
fn every_waiver_carries_a_justification() {
    let report = lint_workspace(repo_root(), &Config::default()).expect("lint runs");
    for w in report.waivers() {
        let why = w.justification.as_deref().unwrap_or("");
        assert!(
            why.split_whitespace().count() >= 3,
            "{}:{} waives {} with a throwaway justification: {why:?}",
            w.file,
            w.line,
            w.rule
        );
    }
}
