//! D10 — the zero-dependency invariant, machine-checked.
//!
//! Every crate in this workspace builds from the tree alone: first
//! party code under `crates/`, vendored shims under `vendor/`, no
//! network, no registry. That is a *policy* until something checks
//! it; D10 is the check. A minimal line-oriented TOML scanner walks
//! every `Cargo.toml` and flags any dependency that is not a
//! workspace-internal `path`/`workspace = true` entry: a bare version
//! string (`serde = "1.0"`), a `version =` key, `git =`, or
//! `registry =` all mean the build would leave the tree.
//!
//! The scanner understands exactly the TOML this workspace uses:
//! `[section]` headers, `key = value` lines, inline tables, and
//! dotted dependency sections (`[dependencies.foo]`). A waiver is a
//! `# pipette-lint: allow(D10) -- why` comment on the dependency's
//! own line or the line above.

use crate::rules::Diagnostic;

/// Whether a `[section]` name declares dependencies.
fn is_dep_section(name: &str) -> bool {
    let name = name.trim();
    for base in [
        "dependencies",
        "dev-dependencies",
        "build-dependencies",
        "workspace.dependencies",
    ] {
        if name == base || name.starts_with(&format!("{base}.")) {
            return true;
        }
        // `[target.'cfg(unix)'.dependencies]` and friends.
        if name.starts_with("target.")
            && (name.ends_with(base) || name.contains(&format!(".{base}.")))
        {
            return true;
        }
    }
    false
}

/// Verdict on one dependency value: `Ok` if workspace-internal.
fn value_is_internal(value: &str) -> Result<(), String> {
    let v = value.trim();
    if v.starts_with('"') || v.starts_with('\'') {
        return Err(format!(
            "bare version requirement {v} resolves from a registry"
        ));
    }
    let has = |key: &str| v.contains(&format!("{key} =")) || v.contains(&format!("{key}="));
    if has("git") {
        return Err("`git =` fetches from the network".to_string());
    }
    if has("registry") || has("version") {
        return Err("`version =`/`registry =` resolves from a registry".to_string());
    }
    if has("path") || v.contains("workspace") {
        return Ok(());
    }
    Err("no `path =` or `workspace = true`; cannot prove it stays in-tree".to_string())
}

/// Lints one `Cargo.toml`. `rel_path` is workspace-relative; returns
/// D10 diagnostics (waived ones marked) and P0/P1 pragma findings.
pub fn lint_manifest(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_dep_section = false;
    let mut section_name;
    // For a dotted section `[dependencies.foo]`, violations are judged
    // at section end from the accumulated keys.
    let mut dotted: Option<(String, u32, bool, Vec<String>)> = None; // (dep, line, waived, keys)
    let mut prev_waiver: Option<(u32, String)> = None; // (line, justification)
    let mut pending_waivers: Vec<(u32, String, bool)> = Vec::new(); // (line, just, used)

    let flush_dotted = |dotted: &mut Option<(String, u32, bool, Vec<String>)>,
                        diags: &mut Vec<Diagnostic>| {
        if let Some((dep, line, waived, keys)) = dotted.take() {
            let internal = keys.iter().any(|k| k == "path" || k == "workspace");
            let external = keys
                .iter()
                .any(|k| k == "git" || k == "version" || k == "registry");
            if !internal || external {
                diags.push(Diagnostic {
                    file: rel_path.to_string(),
                    line,
                    rule: "D10",
                    message: format!(
                        "dependency `{dep}` is not workspace-internal: section keys \
                             [{}] must include `path` and no `version`/`git`/`registry`",
                        keys.join(", ")
                    ),
                    waived,
                    justification: None,
                });
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        // A `# pipette-lint: allow(D10) -- why` waiver comment.
        let waiver_here = line
            .split_once('#')
            .map(|(_, c)| c.trim())
            .filter(|c| c.starts_with("pipette-lint"))
            .map(|c| parse_toml_pragma(rel_path, line_no, c, &mut diags));
        if line.starts_with('#') {
            if let Some(Some(just)) = waiver_here {
                prev_waiver = Some((line_no, just.clone()));
                pending_waivers.push((line_no, just, false));
            }
            continue;
        }
        if line.is_empty() {
            prev_waiver = None;
            continue;
        }
        if line.starts_with('[') {
            flush_dotted(&mut dotted, &mut diags);
            section_name = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .to_string();
            in_dep_section = is_dep_section(&section_name);
            // `[dependencies.foo]` starts a dotted dependency table.
            if let Some(rest) = section_name
                .strip_prefix("dependencies.")
                .or_else(|| section_name.strip_prefix("workspace.dependencies."))
            {
                let waived = prev_waiver.is_some();
                if waived {
                    if let Some(last) = pending_waivers.last_mut() {
                        last.2 = true;
                    }
                }
                dotted = Some((rest.to_string(), line_no, waived, Vec::new()));
                in_dep_section = false; // keys belong to the dotted table
            }
            prev_waiver = None;
            continue;
        }
        let Some((key, value)) = raw.split_once('=') else {
            prev_waiver = None;
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        // Strip a trailing comment outside quotes (good enough for the
        // values this workspace writes).
        let value = value.trim();
        if let Some((_, keys_line, _, keys)) = &mut dotted {
            let _ = keys_line;
            keys.push(key);
            continue;
        }
        if !in_dep_section {
            prev_waiver = None;
            continue;
        }
        if let Err(why) = value_is_internal(value) {
            let same_line_waiver = waiver_here.flatten();
            let waived_by = same_line_waiver
                .clone()
                .or_else(|| prev_waiver.clone().map(|(_, j)| j));
            if waived_by.is_some() {
                if let Some(last) = pending_waivers.last_mut() {
                    last.2 = true;
                }
            }
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: line_no,
                rule: "D10",
                message: format!("dependency `{key}` is not workspace-internal: {why}"),
                waived: waived_by.is_some(),
                justification: waived_by,
            });
        }
        prev_waiver = None;
    }
    flush_dotted(&mut dotted, &mut diags);
    for (line, _, used) in pending_waivers {
        if !used {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line,
                rule: "P1",
                message: "stale pragma: allow(D10) waives no dependency here".to_string(),
                waived: false,
                justification: None,
            });
        }
    }
    diags
}

/// Parses a `pipette-lint: …` comment in a manifest; only
/// `allow(D10) -- why` is meaningful here. Returns the justification,
/// pushing a P0 for anything malformed.
fn parse_toml_pragma(
    rel_path: &str,
    line: u32,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<String> {
    let mut malformed = |why: &str| {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line,
            rule: "P0",
            message: format!("malformed pragma: {why}"),
            waived: false,
            justification: None,
        });
    };
    let rest = text.trim_start_matches("pipette-lint").trim_start();
    let Some(rest) = rest.strip_prefix(':') else {
        malformed("expected `pipette-lint: allow(D10) -- <justification>`");
        return None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        malformed("expected `allow(D10)` in a manifest pragma");
        return None;
    };
    let Some(close) = rest.find(')') else {
        malformed("unclosed `allow(`");
        return None;
    };
    if rest[..close].trim() != "D10" {
        malformed("only D10 can be waived in a manifest");
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let Some(just) = after.strip_prefix("--").map(str::trim) else {
        malformed("missing `-- <justification>`");
        return None;
    };
    if just.is_empty() {
        malformed("empty justification after `--`");
        return None;
    }
    Some(just.to_string())
}

/// Collects every `Cargo.toml` the workspace owns: the root manifest
/// plus one per directory under `crates/` and `vendor/`. Paths are
/// workspace-relative with `/` separators, sorted.
pub fn collect_manifests(root: &std::path::Path) -> Vec<String> {
    let mut found = Vec::new();
    if root.join("Cargo.toml").is_file() {
        found.push("Cargo.toml".to_string());
    }
    for family in ["crates", "vendor"] {
        let dir = root.join(family);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let member = entry.path().join("Cargo.toml");
            if member.is_file() {
                if let Ok(rel) = member.strip_prefix(root) {
                    found.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| !d.waived).collect()
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\n\
                   pipette = { path = \"../core\" }\n\
                   serde = { workspace = true }\n";
        assert!(lint_manifest("crates/x/Cargo.toml", src).is_empty());
    }

    #[test]
    fn version_git_and_bare_string_deps_fail() {
        let src = "[dependencies]\n\
                   serde = \"1.0\"\n\
                   rand = { version = \"0.8\" }\n\
                   left-pad = { git = \"https://example.com/x.git\" }\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        assert_eq!(active(&d).len(), 3, "{d:?}");
        assert!(d[0].message.contains("registry"));
        assert!(d[2].message.contains("network"));
    }

    #[test]
    fn dev_and_target_dependency_sections_are_covered() {
        let src = "[dev-dependencies]\ncriterion = \"0.5\"\n\
                   [target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        assert_eq!(active(&d).len(), 2, "{d:?}");
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nversion = \"0.1.0\"\nname = \"x\"\n\
                   [features]\ndefault = []\n\n[workspace]\nmembers = [\"crates/*\"]\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn dotted_dependency_sections_are_judged_whole() {
        let good = "[dependencies.pipette]\npath = \"../core\"\n";
        assert!(lint_manifest("crates/x/Cargo.toml", good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        let d = lint_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(active(&d).len(), 1, "{d:?}");
        assert!(d[0].message.contains("serde"));
    }

    #[test]
    fn waiver_on_same_or_previous_line_works_and_stale_is_p1() {
        let src = "[dependencies]\n\
                   serde = \"1.0\" # pipette-lint: allow(D10) -- mirrored offline in CI cache\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        assert!(active(&d).is_empty(), "{d:?}");
        assert_eq!(d.iter().filter(|x| x.waived).count(), 1);

        let src = "[dependencies]\n\
                   # pipette-lint: allow(D10) -- mirrored offline in CI cache\n\
                   serde = \"1.0\"\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        assert!(active(&d).is_empty(), "{d:?}");

        let src = "[dependencies]\n\
                   # pipette-lint: allow(D10) -- waives nothing at all\n\
                   pipette = { path = \"../core\" }\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        assert_eq!(active(&d).len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "P1");
    }

    #[test]
    fn malformed_manifest_pragma_is_p0() {
        let src = "[dependencies]\n# pipette-lint: allow(D10)\nserde = \"1.0\"\n";
        let d = lint_manifest("crates/x/Cargo.toml", src);
        let rules: Vec<_> = active(&d).iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"P0") && rules.contains(&"D10"), "{d:?}");
    }
}
