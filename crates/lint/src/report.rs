//! Rendering: human-readable (clickable `file:line`), `--json`, and the
//! `--baseline` waiver snapshot.
//!
//! JSON is hand-rolled (the crate is zero-dependency) in the same
//! canonical style as `pipette-obs`: keys in fixed order, strings
//! escaped per RFC 8259, arrays sorted the way the scan produced them —
//! so two runs over the same tree emit byte-identical reports, and the
//! CI artifact diffs cleanly across commits.

use crate::rules::RULES;
use crate::WorkspaceReport;

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// The human-readable report: one `file:line: [RULE] message` per active
/// violation, then a summary of waivers and per-rule counts.
pub fn render_human(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for d in report.violations() {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            d.file, d.line, d.rule, d.message
        ));
    }
    let violations = report.violations().count();
    let waivers = report.waivers().count();
    if violations > 0 {
        out.push('\n');
    }
    out.push_str(&format!(
        "pipette-lint: {} file(s) scanned, {} violation(s), {} waiver(s)\n",
        report.files.len(),
        violations,
        waivers
    ));
    let counts = report.per_rule_counts();
    for rule in RULES {
        if let Some((active, waived)) = counts.get(rule.name) {
            out.push_str(&format!(
                "  {}: {} active, {} waived — {}\n",
                rule.name,
                active,
                waived,
                rule.summary
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    out
}

/// The `--json` machine report (`pipette-lint/v2` schema): v1 plus
/// `manifests_scanned`, a `call_graph` stats object, and a `per_rule`
/// map that lists *every* rule (zeros included) so CI can assert on a
/// rule's count without guarding against a missing key.
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\"schema\":\"pipette-lint/v2\"");
    out.push_str(&format!(",\"files_scanned\":{}", report.files.len()));
    out.push_str(&format!(
        ",\"manifests_scanned\":{}",
        report.manifests.len()
    ));
    let g = &report.graph;
    out.push_str(&format!(
        ",\"call_graph\":{{\"functions\":{},\"public_fns\":{},\"impl_blocks\":{},\
         \"modules\":{},\"call_sites\":{},\"resolved_edges\":{}}}",
        g.functions, g.public_fns, g.impl_blocks, g.modules, g.call_sites, g.resolved_edges
    ));
    let counts = report.per_rule_counts();
    out.push_str(",\"summary\":{");
    out.push_str(&format!(
        "\"violations\":{},\"waivers\":{},\"per_rule\":{{",
        report.violations().count(),
        report.waivers().count()
    ));
    let mut first = true;
    for rule in RULES {
        let (active, waived) = counts.get(rule.name).copied().unwrap_or((0, 0));
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"active\":{active},\"waived\":{waived}}}",
            rule.name
        ));
    }
    out.push_str("}},\"violations\":[");
    let mut first = true;
    for d in report.violations() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        push_kv_str(&mut out, "file", &d.file);
        out.push_str(&format!(",\"line\":{},", d.line));
        push_kv_str(&mut out, "rule", d.rule);
        out.push(',');
        push_kv_str(&mut out, "message", &d.message);
        out.push('}');
    }
    out.push_str("],\"waivers\":");
    render_waivers_into(&mut out, report);
    out.push('}');
    out.push('\n');
    out
}

/// The `--baseline` snapshot: only the waivers, so a reviewer (or a later
/// run) can diff exactly which escape hatches exist and why.
pub fn render_baseline(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\"schema\":\"pipette-lint-baseline/v1\",\"waivers\":");
    render_waivers_into(&mut out, report);
    out.push('}');
    out.push('\n');
    out
}

fn render_waivers_into(out: &mut String, report: &WorkspaceReport) {
    out.push('[');
    let mut first = true;
    for d in report.waivers() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        push_kv_str(out, "file", &d.file);
        out.push_str(&format!(",\"line\":{},", d.line));
        push_kv_str(out, "rule", d.rule);
        out.push(',');
        push_kv_str(
            out,
            "justification",
            d.justification.as_deref().unwrap_or(""),
        );
        out.push('}');
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn sample() -> WorkspaceReport {
        WorkspaceReport {
            files: vec!["crates/x/src/a.rs".into()],
            manifests: vec!["crates/x/Cargo.toml".into()],
            graph: crate::GraphStats {
                functions: 4,
                public_fns: 2,
                impl_blocks: 1,
                modules: 1,
                call_sites: 6,
                resolved_edges: 3,
            },
            diagnostics: vec![
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    rule: "D2",
                    message: "`.unwrap()` in library code; return a typed error instead".into(),
                    waived: false,
                    justification: None,
                },
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 9,
                    rule: "D1",
                    message: "`SystemTime` reads the wall clock".into(),
                    waived: true,
                    justification: Some("opt-in \"wall_ms\" extras".into()),
                },
            ],
        }
    }

    #[test]
    fn human_report_has_clickable_locations_and_summary() {
        let text = render_human(&sample());
        assert!(text.contains("crates/x/src/a.rs:3: [D2]"));
        assert!(text.contains("1 violation(s), 1 waiver(s)"));
        assert!(text.contains("D1: 0 active, 1 waived"));
    }

    #[test]
    fn json_report_is_valid_and_escapes_strings() {
        let json = render_json(&sample());
        assert!(json.contains("\"schema\":\"pipette-lint/v2\""));
        assert!(json.contains("\"files_scanned\":1"));
        assert!(json.contains("\"manifests_scanned\":1"));
        assert!(json.contains("\"call_graph\":{\"functions\":4,\"public_fns\":2"));
        assert!(json.contains("\"resolved_edges\":3"));
        assert!(json.contains("opt-in \\\"wall_ms\\\" extras"));
        // Every rule appears, zeros included, in RULES order.
        assert!(json.contains("\"D1\":{\"active\":0,\"waived\":1}"));
        assert!(json.contains("\"D2\":{\"active\":1,\"waived\":0}"));
        assert!(json.contains("\"D10\":{\"active\":0,\"waived\":0}"));
        assert!(json.contains("\"P1\":{\"active\":0,\"waived\":0}"));
        // The vendored serde_json can parse what we emit — cheap sanity
        // check that the hand-rolled writer stays RFC 8259.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn baseline_lists_only_waivers() {
        let json = render_baseline(&sample());
        assert!(json.contains("pipette-lint-baseline/v1"));
        assert!(json.contains("\"line\":9"));
        assert!(!json.contains("\"line\":3"));
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let report = WorkspaceReport::default();
        assert!(render_human(&report).contains("0 violation(s)"));
        assert!(render_json(&report).contains("\"violations\":[]"));
    }
}
