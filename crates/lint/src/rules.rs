//! The named invariant rules and the per-file rule engine.
//!
//! Each rule turns a convention the compiler cannot see into a checked
//! contract (see DESIGN.md §7f):
//!
//! * **D1 — no ambient nondeterminism.** `Instant::now`, `SystemTime`,
//!   `UNIX_EPOCH`, `thread_rng`, `RandomState`, and `rand::random` are
//!   banned outside benches/tests: recommendations must be bit-identical
//!   across runs and thread counts, and traces must be replayable.
//! * **D2 — no panics in library code.** `.unwrap()`, `.expect(…)`,
//!   `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and `assert!`
//!   family macros are banned in library crates (tests, benches,
//!   examples, and binaries keep them); faults must surface as the typed
//!   `ClusterError`/`ConfigureError` enums. `debug_assert!` is allowed.
//! * **D3 — unit-suffix discipline.** A public `f64`/`u64` field or
//!   nullary-ish getter whose name says it measures time, memory, or
//!   bandwidth must carry a unit suffix (`_ms`, `_bytes`, `_gib_s`, …):
//!   Eq. 3–6 mix all three dimensions, and an unlabeled number is how
//!   seconds get added to milliseconds.
//! * **D4 — ordered collections only.** `HashMap`/`HashSet` are banned in
//!   first-party code: their iteration (and hence serialization) order is
//!   seeded per-process, the exact nondeterminism D1 exists to keep out.
//!   Use `BTreeMap`/`BTreeSet` or a sorted `Vec` of pairs.
//! * **D5 — no allocation in hot-path regions** (opt-in). A
//!   `// pipette-lint: hot-path` marker pragma covers the next item (its
//!   attributes and doc comments included, through the matching `}`), and
//!   inside that region the allocating idioms `Box::new`, `vec!`,
//!   `.to_vec()`, `.collect()`, `String::from`, and `format!` are banned:
//!   the SA steady-state loop (DESIGN.md §7g) promises zero heap
//!   allocations per move, and this rule turns that promise into a
//!   compile-gate instead of a bench-only assertion.
//!
//! A violation can be waived only by an adjacent pragma comment:
//!
//! ```text
//! // pipette-lint: allow(D2) -- justification for this exact site
//! ```
//!
//! The pragma covers its own comment block (the justification may run
//! over several `//` lines) plus the next two source lines — enough for
//! one statement even when rustfmt wraps a method chain — must name
//! known rules, and must carry a non-empty justification after `--`;
//! anything else is a `P0` (malformed pragma). A pragma that waives
//! nothing is a `P1` (stale pragma). Neither `P0` nor `P1` can itself be
//! waived.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// Machine name, summary, and rationale of one rule (drives
/// `--list-rules` / `--explain` output; DESIGN.md stays the prose
/// source of truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Short machine name (`D1` … `D10`, `P0`, `P1`).
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The longer `--explain` text: what, why, and how to fix.
    pub explain: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "D1",
        summary: "no wall-clock or ambient RNG outside benches/tests \
                  (Instant::now, SystemTime, thread_rng, RandomState)",
        explain: "A recommendation must be bit-identical at any thread count and \
                  every trace must replay from its seed. Instant::now, SystemTime, \
                  UNIX_EPOCH, thread_rng, RandomState, and rand::random smuggle the \
                  host's clock or entropy into results. Fix: thread a seeded \
                  ChaCha8Rng or an explicit tick counter through the call chain. \
                  Benches, tests, and the bench crate are exempt.",
    },
    RuleInfo {
        name: "D2",
        summary: "no unwrap/expect/panic!/assert! in library code; \
                  surface faults as typed errors (debug_assert! allowed)",
        explain: ".unwrap(), .expect(), panic!, unreachable!, todo!, unimplemented!, \
                  and the assert! family abort the process; a configurator embedded \
                  in a training launcher must surface faults as ClusterError/\
                  ConfigureError values the caller can route. debug_assert! is \
                  allowed (dev-only). Binaries, tests, benches, examples keep their \
                  asserts. Fix: return the typed error; waive only documented \
                  `# Panics` contracts.",
    },
    RuleInfo {
        name: "D3",
        summary: "public f64/u64 time/memory/bandwidth names need a unit \
                  suffix (_ms, _bytes, _gib_s, ...)",
        explain: "Eq. 3-6 of the paper mix time, memory, and bandwidth in one \
                  objective; an unlabeled public scalar is how seconds get added to \
                  milliseconds. Any public f64/u64 field or nullary getter whose \
                  name contains a dimension word (time, latency, memory, bandwidth, \
                  ...) must end in a unit suffix. Fix: rename (`decode_latency` -> \
                  `decode_latency_ms`).",
    },
    RuleInfo {
        name: "D4",
        summary: "no HashMap/HashSet in first-party code; use BTreeMap/\
                  BTreeSet or sorted Vec pairs for deterministic order",
        explain: "std hash collections seed their hasher per process, so iteration \
                  (and any serialization derived from it) differs run to run - the \
                  exact nondeterminism D1 exists to keep out. Fix: BTreeMap/BTreeSet \
                  or a sorted Vec of pairs.",
    },
    RuleInfo {
        name: "D5",
        summary: "no heap allocation (Box::new, vec!, to_vec, collect, \
                  String::from, format!) inside a `hot-path` region",
        explain: "The SA steady-state loop promises zero heap allocations per move \
                  (DESIGN.md 7g). A `// pipette-lint: hot-path` marker covers the \
                  next item through its closing brace; inside, the allocating idioms \
                  are banned. Fix: preallocate in the arena and reuse; see D9 for \
                  the transitive version.",
    },
    RuleInfo {
        name: "D6",
        summary: "no lock-order cycles, recursive Mutex acquisition, or \
                  condvar notify/wait while holding another guard",
        explain: "Static deadlock detection for the serve daemon. Every Mutex \
                  acquisition site is extracted, the acquired-while-held relation is \
                  built (including one level through resolved calls), and a cycle \
                  (`inner -> committer` in one fn, `committer -> inner` in another) \
                  is an ABBA deadlock waiting for load. Also flagged: relocking a \
                  Mutex already held (std self-deadlocks), notifying a Condvar while \
                  still holding its guard (waiters wake into a contended lock), and \
                  Condvar::wait with a second lock held (it stays locked for the \
                  whole wait). Fix: pick one global acquisition order; drop guards \
                  before notifying.",
    },
    RuleInfo {
        name: "D7",
        summary: "no mixed-unit arithmetic/comparison (_s vs _bytes vs \
                  _per_s suffixes) through let-bindings",
        explain: "D3 makes names carry units; D7 makes the units flow. Inside a \
                  body, `+`, `-`, `+=`, `-=`, and comparisons between operands whose \
                  unit suffixes disagree (elapsed_s + queued_units, budget_ms < \
                  deadline_s) are flagged; `let` bindings propagate a known unit to \
                  suffixless locals. Operands adjacent to `*` or `/` are exempt - \
                  that is how units legitimately convert. Fix: convert explicitly \
                  and name the result with the right suffix.",
    },
    RuleInfo {
        name: "D8",
        summary: "no path from a public library fn to unwrap/expect/\
                  panic! (transitive D2, path printed)",
        explain: "D2 flags a panic site; D8 tells you which public API can hit it. \
                  For every exported pub fn in library code, a BFS over the call \
                  graph finds the nearest reachable panic idiom and prints the path \
                  (`configure -> plan -> pick_stage: .unwrap()`). Sites under an \
                  allow(D2)/allow(D8) pragma are contract, not risk, and are \
                  skipped. With Config::strict_indexing, `xs[i]` counts as a panic \
                  source too. Fix: return a typed error along the printed path.",
    },
    RuleInfo {
        name: "D9",
        summary: "no heap allocation in any fn reachable from a \
                  `hot-path` region (transitive D5, path printed)",
        explain: "Hoisting a vec! out of a hot-path region into a helper used to \
                  hide it from D5. D9 walks the call graph from every hot region \
                  and applies the same allocation ban to every reachable fn, \
                  printing how the hot path gets there. Fix: hoist the buffer into \
                  the caller's arena, or restructure so the helper is not on the \
                  hot chain.",
    },
    RuleInfo {
        name: "D10",
        summary: "no external dependencies in any Cargo.toml: only \
                  workspace-internal path deps pass",
        explain: "The workspace builds from the tree alone - first-party crates \
                  plus vendored shims, no registry, no network. D10 lints every \
                  Cargo.toml (root, crates/*, vendor/*): a dependency must carry \
                  `path = ...` or `workspace = true`; a bare version string, \
                  `version =`, `git =`, or `registry =` fails. Waive with \
                  `# pipette-lint: allow(D10) -- why` on the dependency's line.",
    },
    RuleInfo {
        name: "P0",
        summary: "malformed pipette-lint pragma (unknown rule, missing \
                  `-- justification`)",
        explain: "A waiver that does not parse protects nothing. Pragmas must be \
                  `// pipette-lint: allow(<rules>) -- <justification>` naming known \
                  waivable rules, or the bare `// pipette-lint: hot-path` region \
                  marker. P0 cannot itself be waived.",
    },
    RuleInfo {
        name: "P1",
        summary: "stale pragma: waives no violation in its comment block or the two lines after it",
        explain: "A pragma that waives nothing is a lie in the source: it documents \
                  a violation that no longer exists and will silently swallow the \
                  next real one. Delete it. P1 cannot itself be waived.",
    },
];

const WAIVABLE: &[&str] = &["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10"];

/// One finding: either an active violation or a pragma-waived one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`D1` … `D4`, `P0`, `P1`).
    pub rule: &'static str,
    /// Human-readable description of the exact finding.
    pub message: String,
    /// Whether an adjacent pragma waived it.
    pub waived: bool,
    /// The pragma's justification, when waived.
    pub justification: Option<String>,
}

/// How a file participates in the rules, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`src/**`, minus binary roots): all rules apply.
    Lib,
    /// Binary root (`src/main.rs`, `src/bin/**`): D2/D3 exempt (a CLI may
    /// abort), determinism rules D1/D4 still apply.
    Bin,
    /// Integration tests (`tests/**`): exempt from everything.
    Test,
    /// Benchmarks (`benches/**`): exempt (timing is their whole point).
    Bench,
    /// Examples (`examples/**`): exempt.
    Example,
}

/// Classifies a workspace-relative path (`crates/<name>/src/...`).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // parts = ["crates", crate_name, top, ...]
    match parts.get(2).copied() {
        Some("tests") => FileClass::Test,
        Some("benches") => FileClass::Bench,
        Some("examples") => FileClass::Example,
        Some("src") => {
            if parts.get(3).copied() == Some("bin") || parts.last().copied() == Some("main.rs") {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        _ => FileClass::Lib,
    }
}

/// The crate segment of a workspace-relative path, or "" at top level.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => "",
    }
}

/// Engine configuration: which crates get a blanket pass per rule.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates where D1 does not apply at all. Default: `bench` — the
    /// experiment/benchmark crate whose purpose is measuring wall time.
    pub d1_exempt_crates: Vec<String>,
    /// When set, D8 also counts `xs[i]` slice/array indexing as a
    /// panic sink. Off by default: indexing after an explicit bounds
    /// check is pervasive and the signal-to-noise is poor.
    pub strict_indexing: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            d1_exempt_crates: vec!["bench".to_string()],
            strict_indexing: false,
        }
    }
}

/// A parsed `// pipette-lint: allow(R1,R2) -- justification` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Pragma {
    pub(crate) line: u32,
    pub(crate) rules: Vec<String>,
    pub(crate) justification: String,
}

/// Recognizes pragma comments; anything starting with `pipette-lint` that
/// does not parse becomes a `P0` diagnostic. Doc comments never match:
/// their captured text starts with the extra `/` or `!` marker. Returns
/// waiver pragmas, the lines of `hot-path` region markers, and the
/// malformed-pragma diagnostics.
pub(crate) fn parse_pragmas(
    file: &str,
    comments: &[Comment],
) -> (Vec<Pragma>, Vec<u32>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut hot_marks = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        if !text.starts_with("pipette-lint") {
            continue;
        }
        let mut malformed = |why: &str| {
            bad.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: "P0",
                message: format!("malformed pragma: {why}"),
                waived: false,
                justification: None,
            });
        };
        let rest = text["pipette-lint".len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            malformed("expected `pipette-lint: allow(<rules>) -- <justification>`");
            continue;
        };
        let rest = rest.trim_start();
        if let Some(after_marker) = rest.strip_prefix("hot-path") {
            if after_marker.trim().is_empty() {
                hot_marks.push(c.line);
            } else {
                malformed("unexpected text after `hot-path` region marker");
            }
            continue;
        }
        let Some(rest) = rest.strip_prefix("allow(") else {
            malformed("expected `allow(<rules>)` or `hot-path` after `pipette-lint:`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed("unclosed `allow(`");
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            malformed("`allow()` names no rules");
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !WAIVABLE.contains(&r.as_str())) {
            malformed(&format!(
                "unknown or unwaivable rule `{unknown}` (waivable: {})",
                WAIVABLE.join(", ")
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(justification) = after.strip_prefix("--").map(str::trim) else {
            malformed("missing `-- <justification>`");
            continue;
        };
        if justification.is_empty() {
            malformed("empty justification after `--`");
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            rules,
            justification: justification.to_string(),
        });
    }
    (pragmas, hot_marks, bad)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item, so inline
/// unit-test modules keep their asserts. The scan is structural: after
/// the attribute it skips further attributes, then swallows either a
/// braced item (to its matching `}`) or a `;`-terminated one.
pub(crate) fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if punct_at(tokens, i) == Some('#')
            && punct_at(tokens, i + 1) == Some('[')
            && ident_at(tokens, i + 2) == Some("cfg")
            && punct_at(tokens, i + 3) == Some('(')
        {
            // Find the attribute's closing `]`, noting whether `test`
            // appears anywhere inside (covers `cfg(all(test, …))`).
            let start = i;
            let mut j = i + 4;
            let mut brackets = 1usize;
            let mut has_test = false;
            while j < tokens.len() && brackets > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => brackets += 1,
                    TokenKind::Punct(']') => brackets -= 1,
                    TokenKind::Ident(s) if s == "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Skip trailing attributes, then the gated item itself.
                while punct_at(tokens, j) == Some('#') && punct_at(tokens, j + 1) == Some('[') {
                    let mut b = 1usize;
                    j += 2;
                    while j < tokens.len() && b > 0 {
                        match &tokens[j].kind {
                            TokenKind::Punct('[') => b += 1,
                            TokenKind::Punct(']') => b -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let mut depth = 0usize;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokenKind::Punct(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                mask[start..j.min(tokens.len())]
                    .iter_mut()
                    .for_each(|m| *m = true);
                i = j;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Exclusive token index just past the item starting at `j`: skips any
/// leading `#[…]` attributes, then swallows either a braced item (to its
/// matching `}`) or a `;`-terminated one — the same structural scan
/// `test_region_mask` uses.
fn item_end(tokens: &[Token], mut j: usize) -> usize {
    while punct_at(tokens, j) == Some('#') && punct_at(tokens, j + 1) == Some('[') {
        let mut b = 1usize;
        j += 2;
        while j < tokens.len() && b > 0 {
            match &tokens[j].kind {
                TokenKind::Punct('[') => b += 1,
                TokenKind::Punct(']') => b -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Marks every token inside a `// pipette-lint: hot-path` region: each
/// marker covers the next item (attributes and all, through its matching
/// `}`). Returns the mask and the lines of markers that cover no code —
/// those become `P1` stale-pragma diagnostics.
pub(crate) fn hot_region_mask(tokens: &[Token], marks: &[u32]) -> (Vec<bool>, Vec<u32>) {
    let mut mask = vec![false; tokens.len()];
    let mut stale = Vec::new();
    for &mark_line in marks {
        let Some(start) = tokens.iter().position(|t| t.line > mark_line) else {
            stale.push(mark_line);
            continue;
        };
        let end = item_end(tokens, start);
        mask[start..end.min(tokens.len())]
            .iter_mut()
            .for_each(|m| *m = true);
    }
    (mask, stale)
}

/// Names that say an `f64`/`u64` carries a physical dimension.
const DIMENSION_WORDS: &[&str] = &[
    "time",
    "latency",
    "duration",
    "elapsed",
    "memory",
    "bandwidth",
    "bw",
    "wall",
];

/// Approved unit suffixes (a name may also *be* a bare unit, e.g.
/// `seconds`). Seeded from the workspace's latency (`_s`, `_ms`),
/// memory (`_bytes`, `_gib`), and bandwidth (`_gib_s`, `_gbps`) modules.
const UNIT_SUFFIXES: &[&str] = &[
    "_ns",
    "_us",
    "_ms",
    "_s",
    "_secs",
    "_seconds",
    "_minutes",
    "_hours",
    "_bits",
    "_bytes",
    "_kib",
    "_mib",
    "_gib",
    "_kb",
    "_mb",
    "_gb",
    "_gbps",
    "_mbps",
    "_gib_s",
    "_bytes_s",
    "_flops",
    "_gflops",
    "_tflops",
    "_per_s",
    "_per_sec",
    "_per_iter",
    "_hz",
    "_pct",
    "_ratio",
    "_factor",
    "_frac",
    "_iters",
    "_count",
    "_rank",
    "_id",
    "_idx",
    "_seed",
];

fn has_dimension_word(name: &str) -> bool {
    name.split('_').any(|w| DIMENSION_WORDS.contains(&w))
}

fn has_unit_suffix(name: &str) -> bool {
    UNIT_SUFFIXES
        .iter()
        .any(|s| name.ends_with(s) || name == &s[1..])
}

/// Identifiers the panic rule bans when followed by `!`.
pub(crate) const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Item-introducing keywords that rule out a `pub <name>: f64` field.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "mod", "use", "trait", "type", "const", "static", "crate", "impl",
    "unsafe", "async", "extern", "union", "in", "self", "super",
];

/// Everything the per-file pass learned about one source file, kept
/// alive so the workspace-level graph rules (D6, D8, D9) can append
/// findings *before* waivers are attached — a pragma must be able to
/// waive a graph finding exactly like a local one.
pub(crate) struct FileAnalysis {
    /// Workspace-relative path.
    pub(crate) rel_path: String,
    /// Path-derived classification.
    pub(crate) class: FileClass,
    /// The lexed source (tokens + comments).
    pub(crate) lexed: crate::lexer::Lexed,
    /// The parsed symbol table.
    pub(crate) items: crate::items::FileItems,
    /// Per-token `#[cfg(test)]` mask.
    pub(crate) in_test: Vec<bool>,
    /// Per-token `hot-path` region mask.
    pub(crate) in_hot: Vec<bool>,
    /// Waiver pragmas, in source order.
    pub(crate) pragmas: Vec<Pragma>,
    /// Unwaivable P0/P1 findings discovered during parsing.
    pub(crate) pre_diags: Vec<Diagnostic>,
    /// Local-rule findings (D1–D5, D7); waivers not yet attached.
    pub(crate) found: Vec<Diagnostic>,
}

impl FileAnalysis {
    /// Inclusive line ranges covered by an `allow(D2)`/`allow(D8)`
    /// pragma (the pragma's comment block plus two lines), used by D8
    /// to treat documented panic contracts as exempt sinks.
    pub(crate) fn panic_waived_ranges(&self) -> Vec<(u32, u32)> {
        let comment_lines: std::collections::BTreeSet<u32> =
            self.lexed.comments.iter().map(|c| c.line).collect();
        self.pragmas
            .iter()
            .filter(|p| p.rules.iter().any(|r| r == "D2" || r == "D8"))
            .map(|p| {
                let mut block_end = p.line;
                while comment_lines.contains(&(block_end + 1)) {
                    block_end += 1;
                }
                (p.line, block_end + 2)
            })
            .collect()
    }
}

/// Runs the local (single-file) rules over one source file. The
/// returned analysis feeds the graph rules and [`finalize`].
pub(crate) fn analyze_file(rel_path: &str, src: &str, cfg: &Config) -> FileAnalysis {
    let class = classify(rel_path);
    let krate = crate_of(rel_path);
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let items = crate::items::parse_items(tokens);
    let in_test = test_region_mask(tokens);
    let (pragmas, hot_marks, mut diags) = parse_pragmas(rel_path, &lexed.comments);
    let (in_hot, stale_hot) = hot_region_mask(tokens, &hot_marks);

    let mut found: Vec<Diagnostic> = Vec::new();
    let mut emit = |line: u32, rule: &'static str, message: String| {
        found.push(Diagnostic {
            file: rel_path.to_string(),
            line,
            rule,
            message,
            waived: false,
            justification: None,
        });
    };

    let d1_applies = matches!(class, FileClass::Lib | FileClass::Bin)
        && !cfg.d1_exempt_crates.iter().any(|c| c == krate);
    let d2_applies = class == FileClass::Lib;
    let d3_applies = class == FileClass::Lib;
    let d4_applies = matches!(class, FileClass::Lib | FileClass::Bin);
    // D5 is opt-in via the marker, so it applies wherever markers appear.
    let d5_applies = true;

    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let line = tokens[i].line;
        let id = match ident_at(tokens, i) {
            Some(id) => id,
            None => continue,
        };

        if d1_applies {
            let d1_hit = match id {
                "Instant"
                    if punct_at(tokens, i + 1) == Some(':')
                        && punct_at(tokens, i + 2) == Some(':')
                        && ident_at(tokens, i + 3) == Some("now") =>
                {
                    Some("`Instant::now()` reads the wall clock")
                }
                "SystemTime" => Some("`SystemTime` reads the wall clock"),
                "UNIX_EPOCH" => Some("`UNIX_EPOCH` anchors wall-clock arithmetic"),
                "thread_rng" => Some("`thread_rng()` is ambient, unseeded randomness"),
                "RandomState" => Some("`RandomState` seeds hashing per-process"),
                "random"
                    if punct_at(tokens, i.wrapping_sub(1)) == Some(':')
                        && ident_at(tokens, i.wrapping_sub(3)) == Some("rand") =>
                {
                    Some("`rand::random()` is ambient, unseeded randomness")
                }
                _ => None,
            };
            if let Some(what) = d1_hit {
                emit(
                    line,
                    "D1",
                    format!("{what}; results must be replayable from seeds alone"),
                );
            }
        }

        if d2_applies {
            if (id == "unwrap" || id == "expect")
                && punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                && punct_at(tokens, i + 1) == Some('(')
            {
                emit(
                    line,
                    "D2",
                    format!("`.{id}()` in library code; return a typed error instead"),
                );
            } else if PANIC_MACROS.contains(&id) && punct_at(tokens, i + 1) == Some('!') {
                emit(
                    line,
                    "D2",
                    format!("`{id}!` in library code; return a typed error instead"),
                );
            }
        }

        if d4_applies && (id == "HashMap" || id == "HashSet") {
            emit(
                line,
                "D4",
                format!(
                    "`{id}` has per-process iteration order; use `BTree{}` or a sorted `Vec`",
                    &id[4..]
                ),
            );
        }

        if d5_applies && in_hot[i] {
            let d5_hit = match id {
                "Box"
                    if punct_at(tokens, i + 1) == Some(':')
                        && punct_at(tokens, i + 2) == Some(':')
                        && ident_at(tokens, i + 3) == Some("new") =>
                {
                    Some("`Box::new` heap-allocates")
                }
                "String"
                    if punct_at(tokens, i + 1) == Some(':')
                        && punct_at(tokens, i + 2) == Some(':')
                        && ident_at(tokens, i + 3) == Some("from") =>
                {
                    Some("`String::from` heap-allocates")
                }
                "vec" if punct_at(tokens, i + 1) == Some('!') => Some("`vec!` heap-allocates"),
                "format" if punct_at(tokens, i + 1) == Some('!') => {
                    Some("`format!` heap-allocates")
                }
                "to_vec" if punct_at(tokens, i.wrapping_sub(1)) == Some('.') => {
                    Some("`.to_vec()` copies into a fresh heap buffer")
                }
                "collect" if punct_at(tokens, i.wrapping_sub(1)) == Some('.') => {
                    Some("`.collect()` builds a fresh heap container")
                }
                _ => None,
            };
            if let Some(what) = d5_hit {
                emit(
                    line,
                    "D5",
                    format!("{what} inside a `hot-path` region; use a preallocated arena"),
                );
            }
        }

        if d3_applies && id == "pub" && punct_at(tokens, i + 1) != Some('(') {
            // `pub <name>: f64,` — a public struct field.
            if let (Some(name), Some(':'), Some(ty)) = (
                ident_at(tokens, i + 1),
                punct_at(tokens, i + 2).unwrap_or(' ').into(),
                ident_at(tokens, i + 3),
            ) {
                let terminated = matches!(punct_at(tokens, i + 4), Some(',') | Some('}'));
                if (ty == "f64" || ty == "u64")
                    && terminated
                    && !ITEM_KEYWORDS.contains(&name)
                    && has_dimension_word(name)
                    && !has_unit_suffix(name)
                {
                    emit(
                        tokens[i + 1].line,
                        "D3",
                        format!(
                            "public `{ty}` field `{name}` measures a physical quantity \
                             but has no unit suffix (e.g. `{name}_ms`, `{name}_bytes`)"
                        ),
                    );
                }
            }
            // `pub fn <name>(…) -> f64` — a public getter.
            if ident_at(tokens, i + 1) == Some("fn") {
                if let Some(name) = ident_at(tokens, i + 2) {
                    if let Some((ty, sig_ok)) = fn_scalar_return(tokens, i + 3) {
                        if sig_ok && has_dimension_word(name) && !has_unit_suffix(name) {
                            emit(
                                tokens[i + 2].line,
                                "D3",
                                format!(
                                    "public fn `{name}` returns a bare `{ty}` measuring a \
                                     physical quantity; add a unit suffix (e.g. `{name}_ms`)"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // A hot-path marker that covers no code is as stale as an unused
    // waiver: the region it promises to protect does not exist.
    for line in stale_hot {
        diags.push(Diagnostic {
            file: rel_path.to_string(),
            line,
            rule: "P1",
            message: "stale pragma: `hot-path` marker is followed by no code item".to_string(),
            waived: false,
            justification: None,
        });
    }

    // D7 — unit dataflow, body by body (test code keeps its shortcuts).
    if matches!(class, FileClass::Lib | FileClass::Bin) {
        for f in &items.fns {
            if in_test.get(f.sig_start).copied().unwrap_or(false) {
                continue;
            }
            if let Some((open, close)) = f.body {
                crate::units::check_body(rel_path, tokens, open, close, &mut found);
            }
        }
    }

    FileAnalysis {
        rel_path: rel_path.to_string(),
        class,
        lexed,
        items,
        in_test,
        in_hot,
        pragmas,
        pre_diags: diags,
        found,
    }
}

/// Attaches waivers and emits stale-pragma P1s over the union of the
/// local findings and `global` (graph-rule) findings, producing the
/// file's final diagnostic list.
pub(crate) fn finalize(analysis: FileAnalysis, global: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let FileAnalysis {
        rel_path,
        lexed,
        pragmas,
        pre_diags: mut diags,
        mut found,
        ..
    } = analysis;
    found.extend(global);

    // Attach waivers. A pragma covers its whole comment block (multi-line
    // justifications) and the two lines after it (a statement, even when
    // rustfmt wraps the method chain carrying the violation).
    let comment_lines: std::collections::BTreeSet<u32> =
        lexed.comments.iter().map(|c| c.line).collect();
    let mut used = vec![false; pragmas.len()];
    for v in &mut found {
        let covering = pragmas.iter().position(|p| {
            let mut block_end = p.line;
            while comment_lines.contains(&(block_end + 1)) {
                block_end += 1;
            }
            (p.line..=block_end + 2).contains(&v.line) && p.rules.iter().any(|r| r == v.rule)
        });
        if let Some(pi) = covering {
            used[pi] = true;
            v.waived = true;
            v.justification = Some(pragmas[pi].justification.clone());
        }
    }
    for (p, used) in pragmas.iter().zip(&used) {
        if !used {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: p.line,
                rule: "P1",
                message: format!(
                    "stale pragma: allow({}) waives no violation on this or the next line",
                    p.rules.join(",")
                ),
                waived: false,
                justification: None,
            });
        }
    }
    diags.extend(found);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// For a `pub fn name` whose token after the name starts at `i` (at the
/// `(` or a `<…>` generic list), returns `Some((ty, true))` when the
/// return type is exactly a bare `f64`/`u64`.
fn fn_scalar_return(tokens: &[Token], mut i: usize) -> Option<(&'static str, bool)> {
    // Skip a generic parameter list if present. Generic bounds with
    // `->` inside (`Fn() -> T`) do not occur on the simple getters this
    // rule targets; a miscount only costs a false negative.
    if punct_at(tokens, i) == Some('<') {
        let mut depth = 0usize;
        while i < tokens.len() {
            match punct_at(tokens, i) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if punct_at(tokens, i) != Some('(') {
        return None;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match punct_at(tokens, i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if punct_at(tokens, i) != Some('-') || punct_at(tokens, i + 1) != Some('>') {
        return None;
    }
    let ty = match ident_at(tokens, i + 2) {
        Some("f64") => "f64",
        Some("u64") => "u64",
        _ => return None,
    };
    let after = i + 3;
    let bare = matches!(punct_at(tokens, after), Some('{') | Some(';'))
        || ident_at(tokens, after) == Some("where");
    Some((ty, bare))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/core/src/fixture.rs", src, &Config::default())
    }

    fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| !d.waived).collect()
    }

    #[test]
    fn d1_flags_wall_clock_and_ambient_rng() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D1", "D1"]);
    }

    #[test]
    fn d1_negative_seeded_rng_and_elapsed_math() {
        let src = "fn f(seed: u64) { let rng = ChaCha8Rng::seed_from_u64(seed); }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn d1_exempt_in_bench_crate_and_tests_dir() {
        let src = "fn f() { let t = Instant::now(); }";
        let cfg = Config::default();
        assert!(lint_source("crates/bench/src/util.rs", src, &cfg).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src, &cfg).is_empty());
    }

    #[test]
    fn d1_waived_by_pragma_with_justification() {
        let src = "// pipette-lint: allow(D1) -- opt-in wall_ms extras only\n\
                   fn f() { let t = Instant::now(); }";
        let diags = lint_lib(src);
        assert!(active(&diags).is_empty(), "{diags:?}");
        let waived: Vec<_> = diags.iter().filter(|d| d.waived).collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(
            waived[0].justification.as_deref(),
            Some("opt-in wall_ms extras only")
        );
    }

    #[test]
    fn d2_flags_unwrap_expect_and_panic_macros() {
        let src = "fn f(x: Option<u32>) -> u32 { assert!(true); x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
                   fn h() { panic!(\"boom\"); }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D2", "D2", "D2", "D2"]);
    }

    #[test]
    fn d2_negative_debug_assert_unwrap_or_and_cfg_test() {
        let src = "fn f(x: Option<u32>) -> u32 { debug_assert!(x.is_some()); x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { assert!(Some(1).unwrap() == 1); panic!(); }\n}";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d2_exempt_in_binary_roots() {
        let src = "fn main() { std::fs::read(\"x\").unwrap(); }";
        let cfg = Config::default();
        assert!(lint_source("crates/cli/src/main.rs", src, &cfg).is_empty());
        assert!(lint_source("crates/bench/src/bin/b.rs", src, &cfg).is_empty());
    }

    #[test]
    fn d2_waiver_same_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // pipette-lint: allow(D2) -- checked by caller\n}";
        let diags = lint_lib(src);
        assert!(active(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn d3_flags_unsuffixed_public_scalars() {
        let src = "pub struct S {\n  pub decode_latency: f64,\n  pub peak_memory: u64,\n}\n\
                   impl S { pub fn total_time(&self) -> f64 { self.decode_latency } }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D3", "D3", "D3"]);
    }

    #[test]
    fn d3_negative_suffixed_private_or_structured() {
        let src = "pub struct S {\n  pub decode_latency_ms: f64,\n  pub memory_bytes: u64,\n\
                   \n  latency: f64,\n  pub memory_parts: Vec<f64>,\n  pub seconds: f64,\n}\n\
                   impl S { pub fn memory_gib(&self) -> f64 { 0.0 }\n\
                   pub fn latency_breakdown(&self) -> Result<f64, ()> { Ok(0.0) } }";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d4_flags_hash_collections_also_in_bins() {
        let src = "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D4", "D4"]);
        let bin = lint_source(
            "crates/cli/src/main.rs",
            "fn main() { let s: HashSet<u8> = Default::default(); }",
            &Config::default(),
        );
        assert_eq!(active(&bin).len(), 1);
    }

    #[test]
    fn d4_negative_btree_and_strings() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f() { let msg = \"HashMap is banned\"; } // HashMap in a comment";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn pragma_without_justification_is_p0() {
        let src = "// pipette-lint: allow(D2)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let diags = lint_lib(src);
        let rules: Vec<_> = active(&diags).iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"P0"), "{diags:?}");
        assert!(rules.contains(&"D2"), "a malformed pragma must not waive");
    }

    #[test]
    fn pragma_unknown_rule_is_p0_and_stale_pragma_is_p1() {
        let src = "// pipette-lint: allow(Z9) -- nope\nfn f() {}";
        let diags = lint_lib(src);
        assert_eq!(
            active(&diags).iter().map(|d| d.rule).collect::<Vec<_>>(),
            vec!["P0"]
        );
        let src = "// pipette-lint: allow(D2) -- nothing here violates\nfn f() {}";
        let diags = lint_lib(src);
        assert_eq!(
            active(&diags).iter().map(|d| d.rule).collect::<Vec<_>>(),
            vec!["P1"]
        );
    }

    #[test]
    fn d5_flags_allocs_only_inside_hot_region() {
        let src = "fn cold() -> Vec<u32> { vec![1, 2] }\n\
                   // pipette-lint: hot-path\n\
                   fn hot(xs: &[u32]) -> Vec<u32> {\n\
                     let b = Box::new(1);\n\
                     let v = xs.to_vec();\n\
                     let c: Vec<u32> = xs.iter().copied().collect();\n\
                     let s = String::from(\"x\");\n\
                     let m = format!(\"{}\", 1);\n\
                     vec![*b]\n\
                   }\n\
                   fn cold_again() -> String { format!(\"ok\") }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D5"; 6], "one per alloc idiom, none outside");
    }

    #[test]
    fn d5_region_covers_attributes_and_doc_comments() {
        let src = "// pipette-lint: hot-path\n\
                   /// Doc comment between marker and item.\n\
                   #[inline]\n\
                   pub fn hot(&self) { let v = self.xs.to_vec(); }\n\
                   fn cold() { let v = x.to_vec(); }";
        let diags = lint_lib(src);
        let d5 = active(&diags).iter().filter(|d| d.rule == "D5").count();
        assert_eq!(d5, 1, "only the marked fn is a region: {diags:?}");
    }

    #[test]
    fn d5_waived_by_allow_pragma() {
        let src = "// pipette-lint: hot-path\n\
                   fn hot() {\n\
                     // pipette-lint: allow(D5) -- cold-start warmup only\n\
                     let v = xs.to_vec();\n\
                   }";
        let diags = lint_lib(src);
        assert!(active(&diags).is_empty(), "{diags:?}");
        assert_eq!(diags.iter().filter(|d| d.waived).count(), 1);
    }

    #[test]
    fn d5_clean_hot_region_is_not_stale() {
        let src = "// pipette-lint: hot-path\n\
                   fn hot(a: &mut [f64]) { a[0] = 1.0; }";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "a clean region is the goal: {diags:?}");
    }

    #[test]
    fn hot_path_marker_with_trailing_text_is_p0() {
        let src = "// pipette-lint: hot-path because fast\nfn f() {}";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["P0"]);
    }

    #[test]
    fn hot_path_marker_at_eof_is_p1() {
        let src = "fn f() {}\n// pipette-lint: hot-path";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["P1"]);
    }

    #[test]
    fn d5_skips_cfg_test_code_inside_region() {
        let src = "// pipette-lint: hot-path\n\
                   fn hot() { let x = 1; }\n\
                   #[cfg(test)]\nmod tests { fn t() { let v = vec![1]; } }";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn doc_comment_mentioning_pragma_grammar_is_ignored() {
        let src = "/// Write `// pipette-lint: allow(D2) -- why` to waive.\nfn f() {}";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn cfg_test_region_ends_at_matching_brace() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
                   fn after(x: Option<u32>) -> u32 { x.unwrap() }";
        let rules: Vec<_> = active(&lint_lib(src)).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D2"], "only the post-module unwrap counts");
    }
}
