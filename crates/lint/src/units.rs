//! D7 — unit-dimension dataflow.
//!
//! D3 makes public scalar *names* carry a unit suffix; D7 makes the
//! suffixes mean something: inside a function body, `+`, `-`, compound
//! assignment, and comparisons between two operands whose units are
//! *both* known and *different* are flagged. `elapsed_s + queued_units`
//! is a bug no test catches until a latency estimate is off by a
//! factor of a work-queue depth; `budget_ms < deadline_s` is the same
//! bug wearing a comparison.
//!
//! Unit knowledge comes from three places, in priority order: the
//! identifier's own suffix (`_s`, `_bytes`, `_per_s`, …, canonicalized
//! so `_secs` and `_seconds` both mean seconds), a `let` binding whose
//! initializer had exactly one known unit (propagation), and function
//! parameters (their names are identifiers like any other). An operand
//! adjacent to `*` or `/` is deliberately *unknown*: multiplication
//! and division are how units legitimately convert (`y_s * 1000.0` is
//! on its way to milliseconds), so only the additive and comparison
//! operators — which require dimensional agreement — are checked.

use crate::lexer::{Token, TokenKind};
use crate::rules::Diagnostic;
use std::collections::BTreeMap;

/// Suffix → canonical unit. Same-dimension different-unit pairs (`_ms`
/// vs `_s`) are still mismatches: adding them without a conversion is
/// exactly the bug this rule exists for.
const UNIT_CANON: &[(&str, &str)] = &[
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_s", "s"),
    ("_secs", "s"),
    ("_seconds", "s"),
    ("_minutes", "min"),
    ("_hours", "h"),
    ("_bits", "bits"),
    ("_bytes", "bytes"),
    ("_kib", "kib"),
    ("_mib", "mib"),
    ("_gib", "gib"),
    ("_kb", "kb"),
    ("_mb", "mb"),
    ("_gb", "gb"),
    ("_gbps", "gbps"),
    ("_mbps", "mbps"),
    ("_gib_s", "gib/s"),
    ("_bytes_s", "bytes/s"),
    ("_flops", "flops"),
    ("_gflops", "gflops"),
    ("_tflops", "tflops"),
    ("_per_s", "1/s"),
    ("_per_sec", "1/s"),
    ("_hz", "1/s"),
    ("_units", "units"),
];

/// The canonical unit an identifier's suffix implies, if any. Longest
/// suffix wins, so `bw_gib_s` is bandwidth, not seconds.
pub fn unit_of_name(name: &str) -> Option<&'static str> {
    let mut best: Option<(usize, &'static str)> = None;
    for (suffix, canon) in UNIT_CANON {
        if (name.ends_with(suffix) && name.len() > suffix.len()) || name == &suffix[1..] {
            let len = suffix.len();
            if best.map(|(l, _)| len > l).unwrap_or(true) {
                best = Some((len, canon));
            }
        }
    }
    best.map(|(_, c)| c)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// The operand immediately left of the operator at `op`: walks back
/// over a dotted chain with optional trailing `()`, returning the
/// unit-bearing identifier (the last chain segment) and the token
/// index where the chain starts. `None` for literals, parens, or
/// anything else a name cannot be read from.
fn left_operand(tokens: &[Token], op: usize) -> Option<(String, usize)> {
    let mut k = op.checked_sub(1)?;
    // A trailing call: `self.elapsed_s()` — skip the `()`.
    if punct_at(tokens, k) == Some(')') {
        if punct_at(tokens, k.checked_sub(1)?) != Some('(') {
            return None; // a real argument list: too complex to name
        }
        k = k.checked_sub(2)?;
    }
    let name = ident_at(tokens, k)?.to_string();
    let mut start = k;
    while start >= 2
        && punct_at(tokens, start - 1) == Some('.')
        && ident_at(tokens, start - 2).is_some()
    {
        start -= 2;
    }
    Some((name, start))
}

/// The operand immediately right of the operator at `op`: a dotted
/// chain read forward, with optional trailing `()`. Returns the last
/// segment's name and the exclusive end index of the chain.
fn right_operand(tokens: &[Token], op: usize) -> Option<(String, usize)> {
    let mut k = op + 1;
    let mut name = ident_at(tokens, k)?.to_string();
    k += 1;
    while punct_at(tokens, k) == Some('.') {
        match ident_at(tokens, k + 1) {
            Some(seg) => {
                name = seg.to_string();
                k += 2;
            }
            None => return None,
        }
    }
    if punct_at(tokens, k) == Some('(') {
        if punct_at(tokens, k + 1) != Some(')') {
            return None;
        }
        k += 2;
    }
    Some((name, k))
}

/// Checks one function body (`open`..=`close` token range); emits D7
/// diagnostics into `out`. `file` is for diagnostics only.
pub fn check_body(
    file: &str,
    tokens: &[Token],
    open: usize,
    close: usize,
    out: &mut Vec<Diagnostic>,
) {
    // Propagated unit environment: `let x = total_s;` teaches `x`.
    let mut env: BTreeMap<String, &'static str> = BTreeMap::new();
    let unit_of = |env: &BTreeMap<String, &'static str>, name: &str| -> Option<&'static str> {
        unit_of_name(name).or_else(|| env.get(name).copied())
    };
    let mut i = open + 1;
    while i < close {
        // `let x = <single known-unit chain> ;` propagation (only when
        // `x` itself has no suffix — a suffixed name is authoritative).
        if ident_at(tokens, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(tokens, j) == Some("mut") {
                j += 1;
            }
            if let Some(var) = ident_at(tokens, j) {
                if unit_of_name(var).is_none() && punct_at(tokens, j + 1) == Some('=') {
                    if let Some((name, end)) = right_operand(tokens, j + 1) {
                        if punct_at(tokens, end) == Some(';') {
                            if let Some(u) = unit_of(&env, &name) {
                                env.insert(var.to_string(), u);
                            }
                        }
                    }
                }
            }
        }
        // The operator classes that demand unit agreement.
        let p = punct_at(tokens, i);
        let op: Option<(&str, usize)> = match p {
            Some('+') | Some('-') => {
                let c = if p == Some('+') { "+" } else { "-" };
                // `->` is not arithmetic; `+=`/`-=` span two tokens.
                if p == Some('-') && punct_at(tokens, i + 1) == Some('>') {
                    None
                } else if punct_at(tokens, i + 1) == Some('=') {
                    Some((if c == "+" { "+=" } else { "-=" }, 2))
                } else {
                    Some((c, 1))
                }
            }
            Some('<') => {
                // `<<` is a shift; `<T>` generics fail the both-units
                // test naturally (type names carry no unit).
                if punct_at(tokens, i + 1) == Some('<') {
                    None
                } else if punct_at(tokens, i + 1) == Some('=') {
                    Some(("<=", 2))
                } else {
                    Some(("<", 1))
                }
            }
            Some('>') => {
                if punct_at(tokens, i + 1) == Some('>')
                    || punct_at(tokens, i.wrapping_sub(1)) == Some('-')
                {
                    None
                } else if punct_at(tokens, i + 1) == Some('=') {
                    Some((">=", 2))
                } else {
                    Some((">", 1))
                }
            }
            Some('=')
                if punct_at(tokens, i + 1) == Some('=')
                    && punct_at(tokens, i.wrapping_sub(1)) != Some('=')
                    && punct_at(tokens, i.wrapping_sub(1)) != Some('!')
                    && punct_at(tokens, i.wrapping_sub(1)) != Some('<')
                    && punct_at(tokens, i.wrapping_sub(1)) != Some('>') =>
            {
                Some(("==", 2))
            }
            Some('!') if punct_at(tokens, i + 1) == Some('=') => Some(("!=", 2)),
            _ => None,
        };
        if let Some((op_text, width)) = op {
            let lhs = left_operand(tokens, i);
            let rhs = right_operand(tokens, i + width - 1);
            if let (Some((lname, lstart)), Some((rname, mut rend))) = (lhs, rhs) {
                // A cast is transparent for adjacency: `bytes as f64 / d`
                // is still a division of `bytes`.
                while ident_at(tokens, rend) == Some("as") && ident_at(tokens, rend + 1).is_some() {
                    rend += 2;
                }
                // An operand touching `*` or `/` is mid-conversion:
                // its effective unit is no longer its name's unit.
                let l_converted =
                    lstart > 0 && matches!(punct_at(tokens, lstart - 1), Some('*') | Some('/'));
                let r_converted = matches!(punct_at(tokens, rend), Some('*') | Some('/'));
                if !l_converted && !r_converted {
                    if let (Some(lu), Some(ru)) = (unit_of(&env, &lname), unit_of(&env, &rname)) {
                        if lu != ru {
                            out.push(Diagnostic {
                                file: file.to_string(),
                                line: tokens[i].line,
                                rule: "D7",
                                message: format!(
                                    "`{lname} {op_text} {rname}` mixes units: `{lname}` is \
                                     [{lu}] but `{rname}` is [{ru}]; convert explicitly \
                                     before combining"
                                ),
                                waived: false,
                                justification: None,
                            });
                        }
                    }
                }
            }
            i += width;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(body: &str) -> Vec<Diagnostic> {
        let src = format!("fn f() {{ {body} }}");
        let lexed = lex(&src);
        let items = crate::items::parse_items(&lexed.tokens);
        let (open, close) = items.fns[0].body.unwrap();
        let mut out = Vec::new();
        check_body("crates/a/src/lib.rs", &lexed.tokens, open, close, &mut out);
        out
    }

    #[test]
    fn mixed_dimension_addition_is_flagged() {
        let d = run("let x = elapsed_s + queued_units;");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("[s]") && d[0].message.contains("[units]"));
    }

    #[test]
    fn same_dimension_different_unit_is_flagged() {
        let d = run("let t = budget_ms - slack_s;");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn matching_units_and_unitless_are_clean() {
        assert!(run("let x = a_s + b_s; let y = n + m; let z = a_s + plain;").is_empty());
    }

    #[test]
    fn comparisons_and_compound_assigns_are_checked() {
        assert_eq!(run("if deadline_s < elapsed_ms { }").len(), 1);
        assert_eq!(run("total_bytes += extra_gib;").len(), 1);
        assert_eq!(run("if size_bytes == cap_bytes { }").len(), 0);
        assert_eq!(run("if size_bytes != cap_s { }").len(), 1);
    }

    #[test]
    fn let_propagation_carries_units() {
        let d = run("let total = elapsed_s; let bad = total + mem_bytes;");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`total + mem_bytes`"));
    }

    #[test]
    fn field_chains_and_getter_calls_use_last_segment() {
        assert_eq!(
            run("let x = self.stats.elapsed_s + self.peak_bytes;").len(),
            1
        );
        assert_eq!(run("let x = t.elapsed_s() + m.bytes_total();").len(), 0);
        assert_eq!(run("let x = t.elapsed_s() + m.total_bytes();").len(), 1);
    }

    #[test]
    fn conversion_via_mul_div_is_not_flagged() {
        assert!(run("let ms = secs_s * 1000.0; let x = a_ms + b_s * 1000.0;").is_empty());
        assert!(run("let x = a_bytes / span_s + rate_bytes_s;").is_empty());
        // A cast between the operand and the divide is still a divide.
        assert!(run("let t = latency_s + n_bytes as f64 / bw;").is_empty());
    }

    #[test]
    fn shifts_generics_and_arrows_are_ignored() {
        assert!(run("let x = flags_bits << 2; let v: Vec<f64> = Vec::new();").is_empty());
        assert!(run("let f = |a_s: f64| -> f64 { a_s };").is_empty());
    }

    #[test]
    fn bandwidth_suffix_outranks_seconds_suffix() {
        assert_eq!(unit_of_name("link_gib_s"), Some("gib/s"));
        assert_eq!(unit_of_name("wait_s"), Some("s"));
        assert_eq!(unit_of_name("s"), Some("s"));
        assert_eq!(unit_of_name("plain"), None);
    }
}
