//! D8 — panic reachability from the public surface, and
//! D9 — transitive hot-path no-alloc, both walks over the call graph.
//!
//! **D8** upgrades D2 from a site check to a reachability check: for
//! every exported `pub` library function, a breadth-first search over
//! resolved edges looks for the nearest function containing a panic
//! idiom (`.unwrap()`, `.expect(…)`, the `panic!` macro family, and —
//! under `Config::strict_indexing` — `xs[i]` indexing, whose implicit
//! bounds check is a panic in disguise). The finding lands on the
//! *public* function and prints the path, which is the information D2
//! cannot give: not "there is an unwrap" but "your API surface can
//! hit it". Sites covered by a `D2`/`D8` waiver pragma are exempt —
//! a documented `# Panics` contract stays a contract, not a finding.
//!
//! **D9** extends D5 through the graph: every function reachable from
//! a `// pipette-lint: hot-path` region is checked for the same
//! allocating idioms D5 bans, so hoisting the `vec!` into a helper no
//! longer hides it. The finding lands on the allocation site and
//! prints how the hot path reaches it.

use crate::graph::{CallGraph, FileSyms};
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, FileClass, PANIC_MACROS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Everything the reachability rules need beyond the graph itself,
/// indexed per file (parallel to `syms`).
pub struct ReachInput<'a> {
    /// Per-file symbol inputs (same order the graph was built from).
    pub syms: &'a [FileSyms<'a>],
    /// The workspace call graph.
    pub graph: &'a CallGraph,
    /// Per-file classification.
    pub class: &'a [FileClass],
    /// Per-file, per-token `hot-path` region mask.
    pub in_hot: &'a [Vec<bool>],
    /// Per-file inclusive line ranges covered by an `allow(D2)` or
    /// `allow(D8)` pragma: panic sites inside are contract, not risk.
    pub panic_waived: &'a [Vec<(u32, u32)>],
    /// Whether `xs[i]` indexing counts as a panic idiom (see
    /// `Config::strict_indexing`).
    pub strict_indexing: bool,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// The first unwaived panic site in each function's body:
/// `node -> (line, what)`.
fn panic_sites(input: &ReachInput<'_>) -> BTreeMap<usize, (u32, String)> {
    let mut sites = BTreeMap::new();
    for (node, n) in input.graph.nodes.iter().enumerate() {
        if n.in_test || input.class[n.file] != FileClass::Lib {
            continue;
        }
        let fs = &input.syms[n.file];
        let Some((open, close)) = fs.items.fns[n.local_idx].body else {
            continue;
        };
        let owner_of = fs.items.owner_of_token(fs.tokens.len());
        let waived = &input.panic_waived[n.file];
        for (i, owner) in owner_of.iter().enumerate().take(close).skip(open + 1) {
            if *owner != Some(n.local_idx) || fs.in_test[i] {
                continue;
            }
            let line = fs.tokens[i].line;
            if waived.iter().any(|&(lo, hi)| (lo..=hi).contains(&line)) {
                continue;
            }
            let what: Option<String> = match ident_at(fs.tokens, i) {
                Some(id @ ("unwrap" | "expect"))
                    if punct_at(fs.tokens, i.wrapping_sub(1)) == Some('.')
                        && punct_at(fs.tokens, i + 1) == Some('(') =>
                {
                    Some(format!("`.{id}()`"))
                }
                Some(id)
                    if PANIC_MACROS.contains(&id) && punct_at(fs.tokens, i + 1) == Some('!') =>
                {
                    Some(format!("`{id}!`"))
                }
                Some(id)
                    if input.strict_indexing
                        && punct_at(fs.tokens, i + 1) == Some('[')
                        && ident_at(fs.tokens, i + 2).is_some() =>
                {
                    Some(format!("`{id}[…]` indexing (bounds check panics)"))
                }
                _ => None,
            };
            if let Some(what) = what {
                sites.entry(node).or_insert((line, what));
            }
        }
    }
    sites
}

/// D8: every exported `pub` library fn that can reach a panic site.
pub fn check_panic_reachability(input: &ReachInput<'_>) -> Vec<Diagnostic> {
    let graph = input.graph;
    let sites = panic_sites(input);
    let adj = graph.adjacency();
    let mut diags = Vec::new();
    for (node, n) in graph.nodes.iter().enumerate() {
        if !n.is_pub || n.in_test || input.class[n.file] != FileClass::Lib {
            continue;
        }
        let path = graph.shortest_path(
            node,
            &adj,
            |x| sites.contains_key(&x),
            |x| !graph.nodes[x].in_test,
        );
        if let Some(path) = path {
            let sink = *path.last().unwrap_or(&node);
            let (sline, what) = &sites[&sink];
            diags.push(Diagnostic {
                file: graph.files[n.file].clone(),
                line: n.line,
                rule: "D8",
                message: format!(
                    "public fn `{}` can reach {what} at {}:{sline} via {}; external callers \
                     can panic the library — return a typed error along this path",
                    n.qualified(),
                    graph.files[graph.nodes[sink].file],
                    graph.render_path(&path)
                ),
                waived: false,
                justification: None,
            });
        }
    }
    diags
}

/// D9: allocation idioms in any function transitively reachable from a
/// `hot-path` region (the region itself is D5's job).
pub fn check_hot_reachability(input: &ReachInput<'_>) -> Vec<Diagnostic> {
    let graph = input.graph;
    // Seed set: functions whose body overlaps a hot region.
    let mut hot_direct: BTreeSet<usize> = BTreeSet::new();
    for (node, n) in graph.nodes.iter().enumerate() {
        let fs = &input.syms[n.file];
        if let Some((open, close)) = fs.items.fns[n.local_idx].body {
            let mask = &input.in_hot[n.file];
            if (open..=close).any(|i| mask.get(i).copied().unwrap_or(false)) {
                hot_direct.insert(node);
            }
        }
    }
    // Multi-source BFS recording how each function was reached.
    let adj = graph.adjacency();
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = hot_direct.iter().copied().collect();
    let mut reached: BTreeSet<usize> = hot_direct.clone();
    while let Some(cur) = queue.pop_front() {
        for &(next, _) in &adj[cur] {
            if graph.nodes[next].in_test || !reached.insert(next) {
                continue;
            }
            prev.insert(next, cur);
            queue.push_back(next);
        }
    }
    let render_route = |node: usize| -> String {
        let mut path = vec![node];
        let mut at = node;
        while let Some(&p) = prev.get(&at) {
            path.push(p);
            at = p;
        }
        path.reverse();
        graph.render_path(&path)
    };
    let mut diags = Vec::new();
    for &node in &reached {
        if hot_direct.contains(&node) {
            continue; // D5 already polices in-region code
        }
        let n = &graph.nodes[node];
        let fs = &input.syms[n.file];
        let Some((open, close)) = fs.items.fns[n.local_idx].body else {
            continue;
        };
        let owner_of = fs.items.owner_of_token(fs.tokens.len());
        for (i, owner) in owner_of.iter().enumerate().take(close).skip(open + 1) {
            if *owner != Some(n.local_idx) || fs.in_test[i] {
                continue;
            }
            let what = match ident_at(fs.tokens, i) {
                Some("Box")
                    if punct_at(fs.tokens, i + 1) == Some(':')
                        && punct_at(fs.tokens, i + 2) == Some(':')
                        && ident_at(fs.tokens, i + 3) == Some("new") =>
                {
                    Some("`Box::new`")
                }
                Some("String")
                    if punct_at(fs.tokens, i + 1) == Some(':')
                        && punct_at(fs.tokens, i + 2) == Some(':')
                        && ident_at(fs.tokens, i + 3) == Some("from") =>
                {
                    Some("`String::from`")
                }
                Some("vec") if punct_at(fs.tokens, i + 1) == Some('!') => Some("`vec!`"),
                Some("format") if punct_at(fs.tokens, i + 1) == Some('!') => Some("`format!`"),
                Some("to_vec") if punct_at(fs.tokens, i.wrapping_sub(1)) == Some('.') => {
                    Some("`.to_vec()`")
                }
                Some("collect") if punct_at(fs.tokens, i.wrapping_sub(1)) == Some('.') => {
                    Some("`.collect()`")
                }
                _ => None,
            };
            if let Some(what) = what {
                diags.push(Diagnostic {
                    file: graph.files[n.file].clone(),
                    line: fs.tokens[i].line,
                    rule: "D9",
                    message: format!(
                        "{what} allocates in `{}`, which a `hot-path` region reaches via {}; \
                         hoist the buffer or move the helper out of the hot call chain",
                        n.qualified(),
                        render_route(node)
                    ),
                    waived: false,
                    justification: None,
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::rules::{hot_region_mask, parse_pragmas, test_region_mask};

    struct Owned {
        rel_path: String,
        tokens: Vec<Token>,
        items: crate::items::FileItems,
        in_test: Vec<bool>,
        in_hot: Vec<bool>,
        waived: Vec<(u32, u32)>,
    }

    fn prep(src: &str) -> Owned {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let in_test = test_region_mask(&lexed.tokens);
        let (pragmas, hot_marks, _) = parse_pragmas("f.rs", &lexed.comments);
        let (in_hot, _) = hot_region_mask(&lexed.tokens, &hot_marks);
        let waived = pragmas
            .iter()
            .filter(|p| p.rules.iter().any(|r| r == "D2" || r == "D8"))
            .map(|p| (p.line, p.line + 2))
            .collect();
        Owned {
            rel_path: "crates/a/src/lib.rs".into(),
            tokens: lexed.tokens,
            items,
            in_test,
            in_hot,
            waived,
        }
    }

    fn run(src: &str, strict: bool) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let o = prep(src);
        let syms = vec![FileSyms {
            rel_path: &o.rel_path,
            tokens: &o.tokens,
            items: &o.items,
            in_test: &o.in_test,
        }];
        let graph = build_graph(&syms);
        let input = ReachInput {
            syms: &syms,
            graph: &graph,
            class: &[FileClass::Lib],
            in_hot: std::slice::from_ref(&o.in_hot),
            panic_waived: std::slice::from_ref(&o.waived),
            strict_indexing: strict,
        };
        (
            check_panic_reachability(&input),
            check_hot_reachability(&input),
        )
    }

    #[test]
    fn transitive_panic_path_is_printed_at_the_public_fn() {
        let src = "pub fn entry(x: Option<u32>) -> u32 { mid(x) }\n\
                   fn mid(x: Option<u32>) -> u32 { deep(x) }\n\
                   fn deep(x: Option<u32>) -> u32 { x.unwrap() }";
        let (d8, _) = run(src, false);
        assert_eq!(d8.len(), 1, "{d8:?}");
        assert_eq!(d8[0].line, 1, "finding lands on the public fn");
        assert!(
            d8[0].message.contains("entry -> mid -> deep"),
            "{}",
            d8[0].message
        );
        assert!(d8[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn waived_sink_and_private_caller_are_clean() {
        let src = "pub fn entry(x: Option<u32>) -> u32 { mid(x) }\n\
                   fn mid(x: Option<u32>) -> u32 {\n\
                   // pipette-lint: allow(D2) -- contract: caller checked is_some\n\
                   x.unwrap()\n}\n\
                   fn lone(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        let (d8, _) = run(src, false);
        assert!(d8.is_empty(), "{d8:?}");
    }

    #[test]
    fn strict_indexing_is_a_sink_only_when_asked() {
        let src = "pub fn entry(xs: &[u32], i: usize) -> u32 { pick(xs, i) }\n\
                   fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }";
        let (lenient, _) = run(src, false);
        assert!(lenient.is_empty(), "{lenient:?}");
        let (strict, _) = run(src, true);
        assert_eq!(strict.len(), 1, "{strict:?}");
        assert!(strict[0].message.contains("indexing"));
    }

    #[test]
    fn hot_path_reaches_helper_allocs_transitively() {
        let src = "// pipette-lint: hot-path\n\
                   fn hot_step() { helper(); }\n\
                   fn helper() { let v = xs.to_vec(); deeper(); }\n\
                   fn deeper() { let b = Box::new(1); }\n\
                   fn cold() { let v = ys.to_vec(); }";
        let (_, d9) = run(src, false);
        assert_eq!(d9.len(), 2, "{d9:?}");
        assert!(
            d9[0].message.contains("hot_step -> helper"),
            "{}",
            d9[0].message
        );
        assert!(d9[1].message.contains("hot_step -> helper -> deeper"));
    }

    #[test]
    fn test_code_is_outside_both_walks() {
        let src = "pub fn entry() -> u32 { 1 }\n\
                   #[cfg(test)]\nmod tests { fn t() { entry(); None.unwrap(); } }";
        let (d8, d9) = run(src, false);
        assert!(d8.is_empty() && d9.is_empty(), "{d8:?} {d9:?}");
    }
}
