//! The brace-structure item parser: from a token stream to a per-file
//! symbol table.
//!
//! `pipette-lint` v1 pattern-matched token runs; the graph rules
//! (D6–D9) need to know *which function* a token belongs to, whether
//! that function is `pub`, and what `impl` block owns it. This module
//! recovers exactly that much structure — modules, `impl`/`trait`
//! blocks, and `fn` items with their body token ranges — from the
//! [`crate::lexer`] output, without building an AST. The parse is a
//! single forward pass with a scope stack: a `mod`/`impl`/`trait`/`fn`
//! header arms a *pending scope* that the next `{` at signature level
//! adopts; every `}` pops the frames opened at its depth. Anything the
//! parser does not understand degrades to an anonymous block, never a
//! mis-attribution: a function we fail to record costs a false
//! negative in a lint, not a phantom violation.

use crate::lexer::{Token, TokenKind};

/// One `fn` item recovered from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing inline-module path within the file (`["sub", "inner"]`).
    pub module: Vec<String>,
    /// The `impl`/`trait` type that owns it (`Server` for
    /// `impl Server { fn f }`), or `None` for a free function.
    pub owner: Option<String>,
    /// Whether the item is exported `pub` (a restricted `pub(crate)` /
    /// `pub(super)` does **not** count: graph rules that reason about
    /// the public surface care about what external callers can reach).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Inclusive token range `[open brace, close brace]` of the body;
    /// `None` for a bodiless trait-method signature.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `owner::name` when owned, else just `name` — the display form
    /// used in call-path diagnostics.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The symbol table for one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Count of inline `mod name { … }` blocks.
    pub modules: usize,
    /// Count of `impl` blocks.
    pub impls: usize,
}

impl FileItems {
    /// Maps each token index to the innermost `fn` (index into
    /// [`FileItems::fns`]) whose body contains it. Signature tokens
    /// belong to no body, so a definition never looks like a call site.
    pub fn owner_of_token(&self, token_count: usize) -> Vec<Option<usize>> {
        let mut owner = vec![None; token_count];
        // Source order means a nested fn is visited after its parent
        // and overwrites the parent's claim on the inner range, so the
        // innermost fn wins without any explicit nesting bookkeeping.
        for (idx, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                for slot in owner
                    .iter_mut()
                    .take(close.min(token_count.saturating_sub(1)) + 1)
                    .skip(open)
                {
                    *slot = Some(idx);
                }
            }
        }
        owner
    }
}

#[derive(Debug, Clone)]
enum Pending {
    Mod(String),
    Owner(String),
    Fn { fn_idx: usize },
}

#[derive(Debug)]
enum Frame {
    Mod,
    Owner,
    Fn { fn_idx: usize, open: usize },
    Block,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Whether the `fn` at token `i` is exported `pub`: walks back over the
/// qualifier run (`const`/`unsafe`/`async`/`extern "C"`), accepting a
/// bare `pub` and rejecting a restricted `pub(...)`.
fn fn_is_pub(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Ident(s)
                if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") =>
            {
                continue;
            }
            TokenKind::Literal => continue, // an `extern "C"` ABI string
            TokenKind::Punct(')') => {
                // `pub(crate)` / `pub(super)` / `pub(in path)`: restricted.
                return false;
            }
            TokenKind::Ident(s) if s == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Extracts the owning type name from an `impl`/`trait` header starting
/// just after the keyword at `i`: the last path segment of the
/// implemented-on type (`impl fmt::Display for LintError` → `LintError`,
/// `impl<S> Pool<S>` → `Pool`), scanning only angle-depth-0 idents and
/// cutting at a `where` clause or the body `{`.
fn owner_name(tokens: &[Token], mut i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => break,
            TokenKind::Punct(';') if angle <= 0 => break,
            TokenKind::Ident(s) if angle <= 0 => {
                if s == "where" {
                    break;
                }
                if s == "for" {
                    saw_for = true;
                } else if saw_for {
                    // Keep the last segment: `cache::Cache` → `Cache`.
                    after_for = Some(s.as_str());
                } else {
                    last = Some(s.as_str());
                }
            }
            _ => {}
        }
        i += 1;
    }
    after_for.or(last).map(str::to_string)
}

/// Parses one file's tokens into its symbol table.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut mod_path: Vec<String> = Vec::new();
    let mut owner_stack: Vec<String> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Ident(kw) if kw == "mod" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    // `mod name;` is an out-of-line declaration — its
                    // file is scanned on its own; only `mod name {` opens
                    // a scope here.
                    if punct_at(tokens, i + 2) == Some('{') {
                        pending = Some(Pending::Mod(name.to_string()));
                    }
                    i += 2;
                    continue;
                }
            }
            TokenKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                // A `trait` scope also owns its default-bodied methods.
                if kw == "impl" {
                    out.impls += 1;
                }
                if let Some(name) = owner_name(tokens, i + 1) {
                    pending = Some(Pending::Owner(name));
                }
            }
            TokenKind::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    out.fns.push(FnItem {
                        name: name.to_string(),
                        module: mod_path.clone(),
                        owner: owner_stack.last().cloned(),
                        is_pub: fn_is_pub(tokens, i),
                        line: tokens[i].line,
                        sig_start: i,
                        body: None,
                    });
                    pending = Some(Pending::Fn {
                        fn_idx: out.fns.len() - 1,
                    });
                    i += 2;
                    continue;
                }
            }
            TokenKind::Punct(';') => {
                // A bodiless trait-method signature (or `mod x;` missed
                // above) discharges whatever header was pending.
                pending = None;
            }
            TokenKind::Punct('{') => match pending.take() {
                Some(Pending::Mod(name)) => {
                    out.modules += 1;
                    mod_path.push(name);
                    stack.push(Frame::Mod);
                }
                Some(Pending::Owner(name)) => {
                    owner_stack.push(name);
                    stack.push(Frame::Owner);
                }
                Some(Pending::Fn { fn_idx }) => {
                    stack.push(Frame::Fn { fn_idx, open: i });
                }
                None => stack.push(Frame::Block),
            },
            TokenKind::Punct('}') => match stack.pop() {
                Some(Frame::Mod) => {
                    mod_path.pop();
                }
                Some(Frame::Owner) => {
                    owner_stack.pop();
                }
                Some(Frame::Fn { fn_idx, open }) => {
                    out.fns[fn_idx].body = Some((open, i));
                }
                Some(Frame::Block) | None => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_pubness() {
        let fi = items(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\n\
             pub const unsafe fn d() {}\npub async fn e() {}",
        );
        let flags: Vec<(String, bool)> =
            fi.fns.iter().map(|f| (f.name.clone(), f.is_pub)).collect();
        assert_eq!(
            flags,
            vec![
                ("a".into(), true),
                ("b".into(), false),
                ("c".into(), false),
                ("d".into(), true),
                ("e".into(), true),
            ]
        );
        assert!(fi.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let fi = items(
            "struct S;\nimpl S { pub fn m(&self) {} }\n\
             impl<'a> Pool<'a> { fn grab(&self) {} }\n\
             impl std::fmt::Display for LintError { fn fmt(&self) {} }",
        );
        let owners: Vec<(String, Option<String>)> = fi
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            owners,
            vec![
                ("m".into(), Some("S".into())),
                ("grab".into(), Some("Pool".into())),
                ("fmt".into(), Some("LintError".into())),
            ]
        );
        assert_eq!(fi.impls, 3);
        assert_eq!(fi.fns[0].qualified(), "S::m");
    }

    #[test]
    fn inline_modules_nest_and_pop() {
        let fi = items("mod outer { mod inner { fn deep() {} } fn shallow() {} }\nfn top() {}");
        let mods: Vec<(String, Vec<String>)> = fi
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone()))
            .collect();
        assert_eq!(
            mods,
            vec![
                ("deep".into(), vec!["outer".into(), "inner".into()]),
                ("shallow".into(), vec!["outer".into()]),
                ("top".into(), vec![]),
            ]
        );
        assert_eq!(fi.modules, 2);
    }

    #[test]
    fn body_ranges_exclude_signatures_and_nested_fns_win() {
        let src = "fn outer() { helper(); fn inner() { deep(); } tail(); }";
        let lexed = lex(src);
        let fi = parse_items(&lexed.tokens);
        let owner = fi.owner_of_token(lexed.tokens.len());
        let tok = |name: &str| {
            lexed
                .tokens
                .iter()
                .position(|t| t.kind == TokenKind::Ident(name.into()))
                .unwrap()
        };
        // The `outer` name token is signature, not body.
        assert_eq!(owner[tok("outer")], None);
        assert_eq!(
            fi.fns[fi.owner_of_token(lexed.tokens.len())[tok("helper")].unwrap()].name,
            "outer"
        );
        assert_eq!(fi.fns[owner[tok("deep")].unwrap()].name, "inner");
        assert_eq!(fi.fns[owner[tok("tail")].unwrap()].name, "outer");
    }

    #[test]
    fn trait_signatures_have_no_body_but_defaults_do() {
        let fi = items("trait T { fn sig(&self); fn dflt(&self) { work(); } }");
        assert_eq!(fi.fns.len(), 2);
        assert_eq!(fi.fns[0].body, None);
        assert!(fi.fns[1].body.is_some());
        assert_eq!(fi.fns[1].owner.as_deref(), Some("T"));
    }

    #[test]
    fn braces_in_expressions_do_not_confuse_scoping() {
        let fi = items(
            "fn f(x: u32) -> u32 { match x { 0 => { zero() } _ => x } }\n\
             fn g() { if cond { a(); } else { b(); } let s = S { f: 1 }; }",
        );
        assert_eq!(fi.fns.len(), 2);
        let (o0, c0) = fi.fns[0].body.unwrap();
        let (o1, _) = fi.fns[1].body.unwrap();
        assert!(c0 < o1, "f's body must close before g's opens");
        assert!(o0 < c0);
    }

    #[test]
    fn generic_signatures_and_where_clauses_parse() {
        let fi = items("pub fn pick<T: Ord>(xs: &[T]) -> Option<&T> where T: Clone { xs.first() }");
        assert_eq!(fi.fns.len(), 1);
        assert!(fi.fns[0].is_pub);
        assert!(fi.fns[0].body.is_some());
    }
}
