//! D6 — static lock-order analysis over the call graph.
//!
//! The serve daemon (DESIGN.md §7j) made pipette a long-running
//! multi-threaded process; a lock-order inversion there is a hang in
//! production that no tier-1 test reproduces. This module extracts
//! every `Mutex` acquisition site, tracks which locks are *held* at
//! each point of a function body, and builds the acquired-while-held
//! relation — including through one level of resolved calls, so
//! `{ let q = self.lock(); self.helper() }` still records
//! `inner -> <whatever helper locks>`. Four findings come out:
//!
//! * **lock-order cycle** — the global acquired-while-held digraph
//!   has a cycle (`A -> B` in one function, `B -> A` in another):
//!   the classic ABBA deadlock, reported with one example site per
//!   edge.
//! * **recursive acquisition** — a lock acquired while already held
//!   (`std::sync::Mutex` self-deadlocks on this).
//! * **notify under lock** — a `Condvar` notified while the guard
//!   protecting its predicate is still held: legal, but every waiter
//!   wakes straight into a contended mutex; drop the guard first
//!   (the daemon's `worker_loop`/`finish_input` discipline).
//! * **wait while holding another lock** — `Condvar::wait` releases
//!   only the guard it is given; any *other* lock stays held for the
//!   entire blocked wait, starving its users.
//!
//! Lock identity is name-based and deliberately scoped: `self.field`
//! receivers become `Owner.field` (comparable across functions and
//! files — the identities real deadlocks are made of), while bare
//! locals are scoped to their function (`file:fn:name`), so two
//! unrelated locals never fabricate a cross-function cycle. Aliasing
//! through references defeats name identity; that limitation is
//! documented in DESIGN.md §7k rather than papered over.

use crate::graph::{CallGraph, FileSyms};
use crate::lexer::{Token, TokenKind};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// The dotted receiver chain ending at the `.` token `dot`, outermost
/// segment first: `self.state.inner.lock()` → `["self","state","inner"]`.
/// An index (`cells[i]`) is skipped back over; a call or other complex
/// receiver yields `None`.
fn receiver_chain(tokens: &[Token], dot: usize) -> Option<Vec<String>> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot; // invariant: tokens[j] is the `.` before a segment
    loop {
        let mut k = j.checked_sub(1)?;
        // Skip one trailing index expression: `base[i]`.
        if punct_at(tokens, k) == Some(']') {
            let mut depth = 1usize;
            while depth > 0 {
                k = k.checked_sub(1)?;
                match punct_at(tokens, k) {
                    Some(']') => depth += 1,
                    Some('[') => depth -= 1,
                    _ => {}
                }
            }
            k = k.checked_sub(1)?;
        }
        let seg = ident_at(tokens, k)?;
        segs.push(seg.to_string());
        if k >= 1 && punct_at(tokens, k - 1) == Some('.') {
            j = k - 1;
        } else {
            break;
        }
    }
    segs.reverse();
    Some(segs)
}

/// One direct acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    lock: String,
    line: u32,
}

/// Canonical lock identity for a receiver chain observed in `node`.
fn lock_id(graph: &CallGraph, node: usize, chain: &[String]) -> String {
    let n = &graph.nodes[node];
    if chain.first().map(String::as_str) == Some("self") && chain.len() >= 2 {
        let owner = n.owner.as_deref().unwrap_or("?");
        return format!("{owner}.{}", chain[1..].join("."));
    }
    if chain.len() == 1 && chain[0].chars().all(|c| c.is_ascii_uppercase() || c == '_') {
        // A static: file-global identity.
        return format!("{}:{}", graph.files[n.file], chain[0]);
    }
    format!(
        "{}:{}:{}",
        graph.files[n.file],
        n.qualified(),
        chain.join(".")
    )
}

/// Scans one body for direct `.lock()` acquisitions (no held-tracking).
fn direct_acquisitions(graph: &CallGraph, files: &[FileSyms<'_>], node: usize) -> Vec<Acq> {
    let n = &graph.nodes[node];
    let fs = &files[n.file];
    let Some((open, close)) = fs.items.fns[n.local_idx].body else {
        return Vec::new();
    };
    let owner_of = fs.items.owner_of_token(fs.tokens.len());
    let mut out = Vec::new();
    for (i, owner) in owner_of.iter().enumerate().take(close).skip(open + 1) {
        if *owner != Some(n.local_idx) {
            continue;
        }
        if ident_at(fs.tokens, i) == Some("lock")
            && punct_at(fs.tokens, i.wrapping_sub(1)) == Some('.')
            && punct_at(fs.tokens, i + 1) == Some('(')
        {
            if let Some(chain) = receiver_chain(fs.tokens, i - 1) {
                // `self.lock()` is a call to a first-party helper, not a
                // std `Mutex` acquisition; the held-tracking pass follows
                // it through the call graph instead.
                if chain.len() == 1 && chain[0] == "self" {
                    continue;
                }
                out.push(Acq {
                    lock: lock_id(graph, node, &chain),
                    line: fs.tokens[i].line,
                });
            }
        }
    }
    out
}

#[derive(Debug)]
struct Held {
    lock: String,
    vars: Vec<String>,
    /// Brace depth the guard dies below (let-bound) …
    depth: usize,
    /// … or at the next `;` (an unbound temporary).
    stmt_scoped: bool,
}

/// One acquired-while-held observation.
#[derive(Debug, Clone)]
struct HeldEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

/// Runs the full D6 analysis; returns unwaived diagnostics.
pub fn check_locks(files: &[FileSyms<'_>], graph: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Pass 1: each function's direct acquisitions (the one-hop table).
    let direct: Vec<Vec<Acq>> = (0..graph.nodes.len())
        .map(|n| direct_acquisitions(graph, files, n))
        .collect();
    // Per-caller resolved out-edges, by callee name, for the held walk.
    let mut callee_by_name: Vec<BTreeMap<&str, usize>> = vec![BTreeMap::new(); graph.nodes.len()];
    for e in &graph.edges {
        callee_by_name[e.caller].insert(graph.nodes[e.callee].name.as_str(), e.callee);
    }

    // Pass 2: held-tracking walk of every body.
    let mut edges: Vec<HeldEdge> = Vec::new();
    for (node, n) in graph.nodes.iter().enumerate() {
        if n.in_test {
            continue;
        }
        let fs = &files[n.file];
        let Some((open, close)) = fs.items.fns[n.local_idx].body else {
            continue;
        };
        let owner_of = fs.items.owner_of_token(fs.tokens.len());
        let tokens = fs.tokens;
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 1usize;
        // Statement context since the last `;`/`{`/`}`.
        let mut stmt_let_vars: Vec<String> = Vec::new();
        let mut stmt_has_let = false;
        let mut stmt_conditional = false; // `if let` / `while let` / `match`
        let record_edges =
            |held: &[Held], to: &str, line: u32, via: &str, edges: &mut Vec<HeldEdge>| {
                for h in held {
                    edges.push(HeldEdge {
                        from: h.lock.clone(),
                        to: to.to_string(),
                        file: graph.files[n.file].clone(),
                        line,
                        via: via.to_string(),
                    });
                }
            };
        let mut i = open + 1;
        while i < close {
            if owner_of[i] != Some(n.local_idx) {
                i += 1;
                continue;
            }
            match &tokens[i].kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                    stmt_has_let = false;
                    stmt_let_vars.clear();
                    stmt_conditional = false;
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                    stmt_has_let = false;
                    stmt_let_vars.clear();
                    stmt_conditional = false;
                }
                TokenKind::Punct(';') => {
                    held.retain(|h| !h.stmt_scoped);
                    stmt_has_let = false;
                    stmt_let_vars.clear();
                    stmt_conditional = false;
                }
                TokenKind::Ident(id) => {
                    match id.as_str() {
                        "if" | "while" | "match" => stmt_conditional = true,
                        "let" => {
                            stmt_has_let = true;
                            // Collect pattern idents up to `=`, skipping
                            // wrappers: `let Ok(mut g)` binds `g`.
                            let mut j = i + 1;
                            stmt_let_vars.clear();
                            while j < close {
                                match &tokens[j].kind {
                                    TokenKind::Punct('=') | TokenKind::Punct(';') => break,
                                    TokenKind::Ident(p)
                                        if !matches!(
                                            p.as_str(),
                                            "Ok" | "Some" | "Err" | "mut" | "ref"
                                        ) =>
                                    {
                                        // Stop at a type annotation.
                                        if punct_at(tokens, j.wrapping_sub(1)) == Some(':') {
                                            break;
                                        }
                                        stmt_let_vars.push(p.clone());
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                        "lock"
                            if punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                                && punct_at(tokens, i + 1) == Some('(') =>
                        {
                            let line = tokens[i].line;
                            if let Some(chain) = receiver_chain(tokens, i - 1) {
                                let acquired: Vec<String> =
                                    if chain.len() == 1 && chain[0] == "self" {
                                        // Helper: what it directly locks.
                                        callee_by_name[node]
                                            .get("lock")
                                            .map(|&c| {
                                                direct[c].iter().map(|a| a.lock.clone()).collect()
                                            })
                                            .unwrap_or_default()
                                    } else {
                                        vec![lock_id(graph, node, &chain)]
                                    };
                                for m in &acquired {
                                    if held.iter().any(|h| &h.lock == m) {
                                        diags.push(Diagnostic {
                                            file: graph.files[n.file].clone(),
                                            line,
                                            rule: "D6",
                                            message: format!(
                                                "recursive acquisition of `{m}` in `{}`; a \
                                                 std Mutex self-deadlocks when relocked by \
                                                 its holder",
                                                n.qualified()
                                            ),
                                            waived: false,
                                            justification: None,
                                        });
                                    }
                                    record_edges(&held, m, line, &n.qualified(), &mut edges);
                                }
                                let h_depth = if stmt_conditional { depth + 1 } else { depth };
                                for m in acquired {
                                    held.push(Held {
                                        lock: m,
                                        vars: stmt_let_vars.clone(),
                                        depth: h_depth,
                                        stmt_scoped: !stmt_has_let,
                                    });
                                }
                            }
                        }
                        "drop" if punct_at(tokens, i + 1) == Some('(') => {
                            if let Some(var) = ident_at(tokens, i + 2) {
                                if punct_at(tokens, i + 3) == Some(')') {
                                    held.retain(|h| !h.vars.iter().any(|v| v == var));
                                }
                            }
                        }
                        "notify_all" | "notify_one"
                            if punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                                && punct_at(tokens, i + 1) == Some('(')
                                && !held.is_empty() =>
                        {
                            let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                            diags.push(Diagnostic {
                                file: graph.files[n.file].clone(),
                                line: tokens[i].line,
                                rule: "D6",
                                message: format!(
                                    "`.{id}()` in `{}` while holding `{}`; drop the guard \
                                     before notifying so waiters do not wake into a \
                                     contended mutex",
                                    n.qualified(),
                                    locks.join("`, `")
                                ),
                                waived: false,
                                justification: None,
                            });
                        }
                        "wait" | "wait_while" | "wait_timeout"
                            if punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                                && punct_at(tokens, i + 1) == Some('(')
                                && held.len() > 1 =>
                        {
                            let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                            diags.push(Diagnostic {
                                file: graph.files[n.file].clone(),
                                line: tokens[i].line,
                                rule: "D6",
                                message: format!(
                                    "`.{id}()` in `{}` releases only its own guard; also \
                                     held: `{}` — those stay locked for the entire wait",
                                    n.qualified(),
                                    locks.join("`, `")
                                ),
                                waived: false,
                                justification: None,
                            });
                        }
                        callee => {
                            // One call hop: `f()` / `self.f()` / `T::f()`
                            // while holding L records L -> every lock f
                            // directly acquires.
                            if !held.is_empty()
                                && punct_at(tokens, i + 1) == Some('(')
                                && callee != "lock"
                            {
                                if let Some(&c) = callee_by_name[node].get(callee) {
                                    for a in &direct[c] {
                                        record_edges(
                                            &held,
                                            &a.lock,
                                            tokens[i].line,
                                            &format!(
                                                "{} -> {} (acquires at line {})",
                                                n.qualified(),
                                                graph.nodes[c].qualified(),
                                                a.line
                                            ),
                                            &mut edges,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Pass 3: cycle detection on the acquired-while-held digraph.
    diags.extend(find_cycles(&edges));
    diags
}

/// Finds cycles in the lock digraph; each distinct cycle (as a sorted
/// lock set) is reported once, at its lexicographically-first edge site.
fn find_cycles(edges: &[HeldEdge]) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut site: BTreeMap<(&str, &str), &HeldEdge> = BTreeMap::new();
    for e in edges {
        if e.from == e.to {
            continue; // recursive acquisition is reported at its site
        }
        adj.entry(&e.from).or_default().insert(&e.to);
        site.entry((&e.from, &e.to)).or_insert(e);
    }
    let mut diags = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    // For each edge u -> v, a path v ->* u closes a cycle. The graph is
    // tiny (locks, not functions), so a BFS per edge is fine.
    for (&(u, v), &e) in &site {
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([v]);
        let mut seen: BTreeSet<&str> = BTreeSet::from([v]);
        let mut found = false;
        while let Some(cur) = queue.pop_front() {
            if cur == u {
                found = true;
                break;
            }
            if let Some(nexts) = adj.get(cur) {
                for &nx in nexts {
                    if seen.insert(nx) {
                        prev.insert(nx, cur);
                        queue.push_back(nx);
                    }
                }
            }
        }
        if !found {
            continue;
        }
        // Reconstruct u -> v -> (intermediates of the v ->* u path) -> u.
        let mut cycle = vec![u.to_string(), v.to_string()];
        {
            let mut at = u;
            let mut back = Vec::new();
            while let Some(&p) = prev.get(at) {
                if p == v {
                    break;
                }
                back.push(p);
                at = p;
            }
            back.reverse();
            cycle.extend(back.iter().map(|s| s.to_string()));
        }
        let mut key: Vec<String> = cycle.clone();
        key.sort();
        key.dedup();
        if !reported.insert(key) {
            continue;
        }
        let mut ring = cycle.clone();
        ring.push(u.to_string());
        diags.push(Diagnostic {
            file: e.file.clone(),
            line: e.line,
            rule: "D6",
            message: format!(
                "lock-order cycle: {} (edge `{u}` -> `{v}` acquired in {}); threads taking \
                 these locks in different orders can deadlock — pick one global order",
                ring.join(" -> "),
                e.via
            ),
            waived: false,
            justification: None,
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::items::parse_items;
    use crate::lexer::lex;

    struct Owned {
        rel_path: String,
        tokens: Vec<Token>,
        items: crate::items::FileItems,
        in_test: Vec<bool>,
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let owned = Owned {
            rel_path: "crates/a/src/lib.rs".into(),
            tokens: lexed.tokens,
            items: parse_items(&lex(src).tokens),
            in_test: crate::rules::test_region_mask(&lex(src).tokens),
        };
        let syms = vec![FileSyms {
            rel_path: &owned.rel_path,
            tokens: &owned.tokens,
            items: &owned.items,
            in_test: &owned.in_test,
        }];
        let graph = build_graph(&syms);
        check_locks(&syms, &graph)
    }

    #[test]
    fn abba_inversion_is_a_cycle() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn ba(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n}";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.message.contains("lock-order cycle")),
            "{d:?}"
        );
        assert!(d[0].message.contains("S.a") && d[0].message.contains("S.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
                   fn ab2(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn guard_dropped_before_second_lock_is_clean() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) { let a = self.a.lock(); drop(a); let b = self.b.lock(); }\n\
                   fn ba(&self) { let b = self.b.lock(); drop(b); let a = self.a.lock(); }\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn block_scope_releases_guard() {
        let src = "struct S;\nimpl S {\n\
                   fn ab(&self) { { let a = self.a.lock(); } let b = self.b.lock(); }\n\
                   fn ba(&self) { { let b = self.b.lock(); } let a = self.a.lock(); }\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let src = "struct S;\nimpl S {\n\
                   fn f(&self) { let a = self.m.lock(); let b = self.m.lock(); }\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("recursive acquisition"));
    }

    #[test]
    fn notify_under_lock_is_flagged_and_after_drop_is_clean() {
        let bad = "struct S;\nimpl S {\n\
                   fn f(&self) { let g = self.inner.lock(); self.cv.notify_all(); }\n}";
        let d = run(bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("notify_all"));
        let good = "struct S;\nimpl S {\n\
                    fn f(&self) { let g = self.inner.lock(); drop(g); self.cv.notify_all(); }\n}";
        assert!(run(good).is_empty(), "{:?}", run(good));
    }

    #[test]
    fn one_call_hop_builds_the_edge() {
        let src = "struct S;\nimpl S {\n\
                   fn outer(&self) { let a = self.a.lock(); self.inner_b(); }\n\
                   fn inner_b(&self) { let b = self.b.lock(); }\n\
                   fn rev(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n}";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.message.contains("lock-order cycle")),
            "one-hop edge a->b plus direct b->a must close the cycle: {d:?}"
        );
    }

    #[test]
    fn helper_named_lock_holds_what_it_locks() {
        let src = "struct S;\nimpl S {\n\
                   fn lock(&self) { let g = self.inner.lock(); }\n\
                   fn f(&self) { let q = self.lock(); self.cv.notify_one(); }\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("notify_one") && d[0].message.contains("S.inner"));
    }

    #[test]
    fn wait_while_holding_another_lock_is_flagged() {
        let src = "struct S;\nimpl S {\n\
                   fn f(&self) { let a = self.a.lock(); let g = self.b.lock(); \
                   let g = self.cv.wait(g); }\n}";
        let d = run(src);
        assert!(
            d.iter()
                .any(|x| x.message.contains("releases only its own guard")),
            "{d:?}"
        );
    }

    #[test]
    fn locals_in_different_fns_do_not_fabricate_cycles() {
        let src = "fn f(a: &M, b: &M) { let x = a.lock(); let y = b.lock(); }\n\
                   fn g(a: &M, b: &M) { let y = b.lock(); let x = a.lock(); }";
        // Same textual names, but lock ids are fn-scoped, so no cycle.
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn if_let_guard_scope_ends_with_its_block() {
        let src = "struct S;\nimpl S {\n\
                   fn f(&self) { if let Ok(g) = self.a.lock() { work(); } \
                   let b = self.b.lock(); }\n\
                   fn r(&self) { let b = self.b.lock(); if let Ok(g) = self.a.lock() { } }\n}";
        // f: a's guard dies with the if-block, so f contributes no edge;
        // r contributes b -> a; no cycle.
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
