//! `pipette-lint` — scan the workspace's first-party crates for
//! invariant violations.
//!
//! ```sh
//! pipette-lint                      # human-readable report, exit 1 on violations
//! pipette-lint --json               # machine report (pipette-lint/v2)
//! pipette-lint --baseline waivers.json   # snapshot current waivers
//! pipette-lint --list-rules         # what each rule enforces
//! pipette-lint --explain D6         # the long-form story behind one rule
//! pipette-lint --strict-indexing    # D8 also counts `xs[i]` as a panic sink
//! pipette-lint --root ../elsewhere  # lint another checkout
//! ```
//!
//! Exit codes: `0` clean, `1` active violations, `2` usage or I/O error.

use pipette_lint::report::{render_baseline, render_human, render_json};
use pipette_lint::{lint_workspace, Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pipette-lint [--root <dir>] [--json] [--baseline <path>] [--list-rules] \
         [--explain <RULE>] [--strict-indexing]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut cfg = Config::default();
    let mut baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--strict-indexing" => cfg.strict_indexing = true,
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    return usage();
                };
                match RULES.iter().find(|r| r.name.eq_ignore_ascii_case(name)) {
                    Some(rule) => {
                        println!(
                            "{}: {}\n\n{}",
                            rule.name,
                            rule.summary
                                .split_whitespace()
                                .collect::<Vec<_>>()
                                .join(" "),
                            rule.explain
                        );
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("pipette-lint: no rule named `{name}`; try --list-rules");
                        return ExitCode::from(2);
                    }
                }
            }
            "--list-rules" => {
                for rule in RULES {
                    println!(
                        "{}: {}",
                        rule.name,
                        rule.summary
                            .split_whitespace()
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(path) => baseline = Some(PathBuf::from(path)),
                    None => return usage(),
                }
            }
            other => {
                eprintln!("pipette-lint: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }

    let report = match lint_workspace(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pipette-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = baseline {
        if let Err(e) = std::fs::write(&path, render_baseline(&report)) {
            eprintln!(
                "pipette-lint: cannot write baseline {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "pipette-lint: baseline with {} waiver(s) written to {}",
            report.waivers().count(),
            path.display()
        );
    }

    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
