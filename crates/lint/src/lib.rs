//! `pipette-lint` — the workspace invariant checker.
//!
//! Pipette's headline guarantees live outside the type system: a
//! recommendation is bit-identical at any thread count, a telemetry trace
//! replays, a fault surfaces as a typed error. This crate turns those
//! conventions into a CI-gated contract: a hand-rolled Rust scanner
//! ([`lexer`]) feeds a small rule engine ([`rules`]) that walks every
//! first-party crate under `crates/` (never `vendor/`) and reports
//! violations of the named rules `D1`–`D4`, honoring inline
//! `// pipette-lint: allow(<rule>) -- <justification>` waivers.
//!
//! The library API is what the fixture tests and the workspace-clean
//! integration test drive; the `pipette-lint` binary adds human and
//! `--json` output plus `--baseline` waiver snapshots for CI.

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{classify, lint_source, Config, Diagnostic, FileClass, RuleInfo, RULES};

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything one workspace scan produced.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Files scanned, workspace-relative, in deterministic (sorted) order.
    pub files: Vec<String>,
    /// All findings — waived and active — in file/line order.
    pub diagnostics: Vec<Diagnostic>,
}

impl WorkspaceReport {
    /// Active (unwaived) violations.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// Pragma-waived findings.
    pub fn waivers(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived)
    }

    /// Whether the scan found no active violations.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// `(active, waived)` counts per rule, in rule order.
    pub fn per_rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for d in &self.diagnostics {
            let slot = counts.entry(d.rule).or_default();
            if d.waived {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        counts
    }
}

/// Why a scan could not complete.
#[derive(Debug)]
pub enum LintError {
    /// The workspace root has no `crates/` directory.
    NoCratesDir {
        /// The root that was searched.
        root: PathBuf,
    },
    /// A directory or file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::NoCratesDir { root } => {
                write!(f, "no crates/ directory under {}", root.display())
            }
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::NoCratesDir { .. } => None,
        }
    }
}

/// Collects every first-party `.rs` file under `<root>/crates`, sorted
/// for deterministic reports; `target/` and dotted directories are
/// skipped. Returned paths are workspace-relative with `/` separators.
pub fn collect_sources(root: &Path) -> Result<Vec<String>, LintError> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(LintError::NoCratesDir {
            root: root.to_path_buf(),
        });
    }
    let mut files = Vec::new();
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|source| LintError::Io {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError::Io {
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans the whole workspace under `root` with `cfg`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, LintError> {
    let files = collect_sources(root)?;
    let mut diagnostics = Vec::new();
    for rel in &files {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        diagnostics.extend(lint_source(rel, &src, cfg));
    }
    Ok(WorkspaceReport { files, diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crates_dir_is_a_typed_error() {
        let err = lint_workspace(Path::new("/nonexistent-pipette-root"), &Config::default());
        assert!(matches!(err, Err(LintError::NoCratesDir { .. })));
        assert!(err.unwrap_err().to_string().contains("crates/"));
    }

    #[test]
    fn per_rule_counts_split_active_and_waived() {
        let report = WorkspaceReport {
            files: Vec::new(),
            diagnostics: vec![
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 1,
                    rule: "D2",
                    message: "m".into(),
                    waived: false,
                    justification: None,
                },
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 2,
                    rule: "D2",
                    message: "m".into(),
                    waived: true,
                    justification: Some("why".into()),
                },
            ],
        };
        assert_eq!(report.per_rule_counts().get("D2"), Some(&(1, 1)));
        assert!(!report.is_clean());
    }
}
