//! `pipette-lint` — the workspace invariant checker.
//!
//! Pipette's headline guarantees live outside the type system: a
//! recommendation is bit-identical at any thread count, a telemetry
//! trace replays, a fault surfaces as a typed error, the serve daemon
//! never deadlocks. This crate turns those conventions into a
//! CI-gated contract in two layers:
//!
//! * a hand-rolled Rust scanner ([`lexer`]) feeds the *local* rule
//!   engine ([`rules`]), which walks every first-party crate under
//!   `crates/` (never `vendor/`) checking the site rules `D1`–`D5`
//!   and `D7`;
//! * a brace-structure item parser ([`items`]) builds a per-crate
//!   symbol table, [`graph`] resolves a workspace-wide call graph
//!   over it, and the *graph* rules run on top: lock-order deadlock
//!   detection ([`locks`], `D6`), panic reachability from the public
//!   surface and transitive hot-path allocation ([`reach`],
//!   `D8`/`D9`);
//! * every `Cargo.toml` is checked against the zero-dependency
//!   invariant ([`manifest`], `D10`).
//!
//! All rules honor inline
//! `// pipette-lint: allow(<rule>) -- <justification>` waivers. The
//! library API is what the fixture tests and the workspace-clean
//! integration test drive; the `pipette-lint` binary adds human and
//! `--json` output (`pipette-lint/v2` schema with call-graph stats),
//! `--explain <RULE>`, and `--baseline` waiver snapshots for CI.

pub mod graph;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod manifest;
pub mod reach;
pub mod report;
pub mod rules;
pub mod units;

pub use graph::GraphStats;
pub use rules::{classify, Config, Diagnostic, FileClass, RuleInfo, RULES};

use graph::FileSyms;
use reach::ReachInput;
use rules::FileAnalysis;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything one workspace scan produced.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Source files scanned, workspace-relative, sorted.
    pub files: Vec<String>,
    /// Manifests (`Cargo.toml`) scanned, workspace-relative, sorted.
    pub manifests: Vec<String>,
    /// All findings — waived and active — in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Call-graph summary from the semantic layer.
    pub graph: GraphStats,
}

impl WorkspaceReport {
    /// Active (unwaived) violations.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// Pragma-waived findings.
    pub fn waivers(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived)
    }

    /// Whether the scan found no active violations.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// `(active, waived)` counts per rule, in rule order.
    pub fn per_rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for d in &self.diagnostics {
            let slot = counts.entry(d.rule).or_default();
            if d.waived {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        counts
    }
}

/// Why a scan could not complete.
#[derive(Debug)]
pub enum LintError {
    /// The workspace root has no `crates/` directory.
    NoCratesDir {
        /// The root that was searched.
        root: PathBuf,
    },
    /// A directory or file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::NoCratesDir { root } => {
                write!(f, "no crates/ directory under {}", root.display())
            }
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::NoCratesDir { .. } => None,
        }
    }
}

/// Collects every first-party `.rs` file under `<root>/crates`, sorted
/// for deterministic reports; `target/` and dotted directories are
/// skipped. Returned paths are workspace-relative with `/` separators.
pub fn collect_sources(root: &Path) -> Result<Vec<String>, LintError> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(LintError::NoCratesDir {
            root: root.to_path_buf(),
        });
    }
    let mut files = Vec::new();
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|source| LintError::Io {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError::Io {
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints in-memory sources and manifests: the full pipeline (local
/// rules, call graph, graph rules, manifest rule) minus the
/// filesystem. This is the entry the fixture tests drive.
pub fn lint_files(
    sources: &[(String, String)],
    manifests: &[(String, String)],
    cfg: &Config,
) -> WorkspaceReport {
    // Phase 1 — local analysis per file.
    let analyses: Vec<FileAnalysis> = sources
        .iter()
        .map(|(rel, src)| rules::analyze_file(rel, src, cfg))
        .collect();

    // Phase 2 — the semantic layer and its graph rules.
    let syms: Vec<FileSyms<'_>> = analyses
        .iter()
        .map(|a| FileSyms {
            rel_path: &a.rel_path,
            tokens: &a.lexed.tokens,
            items: &a.items,
            in_test: &a.in_test,
        })
        .collect();
    let call_graph = graph::build_graph(&syms);
    let class: Vec<FileClass> = analyses.iter().map(|a| a.class).collect();
    let in_hot: Vec<Vec<bool>> = analyses.iter().map(|a| a.in_hot.clone()).collect();
    let panic_waived: Vec<Vec<(u32, u32)>> =
        analyses.iter().map(|a| a.panic_waived_ranges()).collect();
    let input = ReachInput {
        syms: &syms,
        graph: &call_graph,
        class: &class,
        in_hot: &in_hot,
        panic_waived: &panic_waived,
        strict_indexing: cfg.strict_indexing,
    };
    let mut global: Vec<Diagnostic> = locks::check_locks(&syms, &call_graph);
    global.extend(reach::check_panic_reachability(&input));
    global.extend(reach::check_hot_reachability(&input));
    let mut global_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in global {
        global_by_file.entry(d.file.clone()).or_default().push(d);
    }

    // Phase 3 — waiver attachment per file, then the manifest rule.
    let mut diagnostics = Vec::new();
    for a in analyses {
        let extra = global_by_file.remove(&a.rel_path).unwrap_or_default();
        diagnostics.extend(rules::finalize(a, extra));
    }
    for (rel, src) in manifests {
        diagnostics.extend(manifest::lint_manifest(rel, src));
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    WorkspaceReport {
        files: sources.iter().map(|(rel, _)| rel.clone()).collect(),
        manifests: manifests.iter().map(|(rel, _)| rel.clone()).collect(),
        diagnostics,
        graph: call_graph.stats,
    }
}

/// Lints one file's source text through the full pipeline (the graph
/// rules see just this file). `rel_path` is workspace-relative and
/// only used for classification and diagnostics.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    lint_files(&[(rel_path.to_string(), src.to_string())], &[], cfg).diagnostics
}

/// Scans the whole workspace under `root` with `cfg`: every `.rs`
/// under `crates/` plus every owned `Cargo.toml`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, LintError> {
    let files = collect_sources(root)?;
    let read = |rel: &String| -> Result<(String, String), LintError> {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        Ok((rel.clone(), src))
    };
    let sources = files.iter().map(read).collect::<Result<Vec<_>, _>>()?;
    let manifests = manifest::collect_manifests(root)
        .iter()
        .map(read)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(lint_files(&sources, &manifests, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crates_dir_is_a_typed_error() {
        let err = lint_workspace(Path::new("/nonexistent-pipette-root"), &Config::default());
        assert!(matches!(err, Err(LintError::NoCratesDir { .. })));
        assert!(err.unwrap_err().to_string().contains("crates/"));
    }

    #[test]
    fn per_rule_counts_split_active_and_waived() {
        let report = WorkspaceReport {
            files: Vec::new(),
            manifests: Vec::new(),
            graph: GraphStats::default(),
            diagnostics: vec![
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 1,
                    rule: "D2",
                    message: "m".into(),
                    waived: false,
                    justification: None,
                },
                Diagnostic {
                    file: "crates/x/src/a.rs".into(),
                    line: 2,
                    rule: "D2",
                    message: "m".into(),
                    waived: true,
                    justification: Some("why".into()),
                },
            ],
        };
        assert_eq!(report.per_rule_counts().get("D2"), Some(&(1, 1)));
        assert!(!report.is_clean());
    }

    #[test]
    fn lint_files_runs_graph_rules_across_files() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "pub fn entry(x: Option<u32>) -> u32 { helper_unwrap(x) }".to_string(),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "pub fn helper_unwrap(x: Option<u32>) -> u32 { x.unwrap_or(0) }".to_string(),
            ),
        ];
        let report = lint_files(&sources, &[], &Config::default());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.graph.functions == 2 && report.graph.resolved_edges == 1);
    }

    #[test]
    fn lint_files_flags_cross_file_panic_paths_and_manifests() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "pub fn entry(x: Option<u32>) -> u32 { grab_value(x) }".to_string(),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "pub fn grab_value(x: Option<u32>) -> u32 { x.unwrap() }".to_string(),
            ),
        ];
        let manifests = vec![(
            "crates/a/Cargo.toml".to_string(),
            "[dependencies]\nserde = \"1.0\"\n".to_string(),
        )];
        let report = lint_files(&sources, &manifests, &Config::default());
        let rules: Vec<&str> = report.violations().map(|d| d.rule).collect();
        // entry -> grab_value (D8 on both pub fns), the D2 site itself,
        // and the external dependency.
        assert!(rules.contains(&"D8") && rules.contains(&"D2") && rules.contains(&"D10"));
        let d8 = report
            .violations()
            .find(|d| d.rule == "D8" && d.file == "crates/a/src/lib.rs")
            .expect("cross-file D8");
        assert!(d8.message.contains("entry -> grab_value"), "{}", d8.message);
    }
}
