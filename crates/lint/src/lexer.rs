//! A minimal Rust lexer for *invariant scanning*.
//!
//! Like `pipette-cli`'s `jsonscan`, this is a hand-rolled scanner, not a
//! real frontend: it splits Rust source into identifiers, punctuation,
//! literals, and comments, tracking line numbers, so the rule engine can
//! pattern-match token runs (`Instant :: now`, `. unwrap (`) without ever
//! being fooled by the same characters inside a string, char literal, or
//! comment. It is deliberately lossy — numeric values, string contents,
//! and multi-character operators are not needed by any rule — but it must
//! never *mis-classify*: a `"..."` that leaked tokens or a `//` that
//! swallowed code would produce phantom violations or, worse, silently
//! mask real ones.
//!
//! Handled: line and (nested) block comments, doc comments, string
//! literals with escapes, raw strings `r"…"`/`r#"…"#`, byte strings
//! `b"…"`/`br#"…"#`, char literals vs. lifetimes, raw identifiers
//! `r#match`, and numeric literals (including `1.0e-3` and `0xff`).

/// What a token is; contents are kept only where a rule can read them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers are unprefixed).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, …).
    Punct(char),
    /// A string/char/numeric literal; contents are irrelevant to rules.
    Literal,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// The token itself.
    pub kind: TokenKind,
}

/// A comment (line or block), with its text *after* the `//` or `/*`.
///
/// For a doc comment (`/// …`, `//! …`) the extra marker character is the
/// first character of `text`, which is exactly what keeps documentation
/// that *mentions* a pragma from ever being parsed as one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body, excluding the opening `//`/`/*` and closing `*/`.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (rules read pragmas out of these).
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Splits `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end-of-file, which is the forgiving behavior
/// a linter wants on work-in-progress source.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(false),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed(),
                _ => {
                    // Multibyte UTF-8 only occurs inside strings/comments in
                    // this workspace; treat a stray lead byte as punctuation
                    // and let char_indices-free scanning continue safely.
                    self.push(TokenKind::Punct(char::from(b.min(0x7f))));
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.tokens.push(Token {
            line: self.line,
            kind,
        });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let text_start = self.pos + 2;
        let mut end = text_start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: start_line,
            text: self.src[text_start..end].to_string(),
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let text_start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        let mut text_end = self.bytes.len();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    if depth == 0 {
                        text_end = self.pos;
                        self.pos += 2;
                        break;
                    }
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            line: start_line,
            text: self.src[text_start..text_end.max(text_start)].to_string(),
        });
    }

    /// A plain (escaped) or raw (escape-free) double-quoted string; the
    /// opening `"` is at `self.pos`.
    fn string(&mut self, raw: bool) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'\\' if !raw => {
                    // Line continuations (`\` before a newline) and `\n`
                    // escapes both skip a byte; only the former crosses a
                    // real line boundary, which must still be counted.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Literal,
        });
    }

    /// A raw string whose `r` prefix has been consumed; `self.pos` is at
    /// the first `#` or `"`. Terminates on `"` followed by `hashes` `#`s.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                    self.pos += 1;
                    if closed {
                        self.pos += hashes;
                        break;
                    }
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Literal,
        });
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at a leading `'`.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        match next {
            // `'x` where `x` starts an identifier: a char literal only if a
            // closing quote immediately follows one ident char ('a'); any
            // longer identifier run ('static, 'outer) is a lifetime.
            Some(b) if is_ident_start(b) => {
                let mut j = self.pos + 2;
                while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
                    j += 1;
                }
                if j == self.pos + 2 && self.bytes.get(j) == Some(&b'\'') {
                    self.push(TokenKind::Literal);
                    self.pos = j + 1;
                } else {
                    self.push(TokenKind::Lifetime);
                    self.pos = j;
                }
            }
            // Escaped or non-identifier char literal: '\n', '\'', '(', …
            Some(_) => {
                let line = self.line;
                self.pos += 1;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        b'\n' => break, // stray quote; bail out leniently
                        _ => self.pos += 1,
                    }
                }
                self.out.tokens.push(Token {
                    line,
                    kind: TokenKind::Literal,
                });
            }
            None => {
                self.push(TokenKind::Punct('\''));
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if is_ident_continue(b) {
                self.pos += 1;
                // `1e-3` / `0x…` exponents: a sign directly after e/E/p/P
                // belongs to the literal.
                if matches!(b, b'e' | b'E' | b'p' | b'P')
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                {
                    self.pos += 1;
                }
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.5`, but not `1..n` (range) or `1.max(2)` (method call).
                self.pos += 1;
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Literal,
        });
    }

    /// An identifier, or a string with an `r`/`b`/`br` prefix, or a raw
    /// identifier `r#match`.
    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match (text, self.peek(0)) {
            ("r" | "b" | "br" | "rb", Some(b'"')) => {
                if text.starts_with('b') && !text.contains('r') {
                    self.string(false); // b"…" still has escapes
                } else {
                    self.raw_string();
                }
            }
            ("r" | "br" | "rb", Some(b'#')) => {
                // `r#"…"#` is a raw string; `r#match` is a raw identifier.
                let mut j = self.pos;
                while self.bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'"') {
                    self.raw_string();
                } else {
                    self.pos += 1; // skip `#`
                    let istart = self.pos;
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    let raw = self.src[istart..self.pos].to_string();
                    self.push(TokenKind::Ident(raw));
                }
            }
            _ => {
                let owned = text.to_string();
                self.push(TokenKind::Ident(owned));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_invisible() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap in /* a nested */ block */
            let a = "Instant::now()";
            let b = r#"thread_rng()"#;
            let c = b"SystemTime";
            let d = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let", "a", "let", "b", "let", "c", "let", "d", "real_ident"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'y'; x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(idents(src).contains(&"c".to_string()));
    }

    #[test]
    fn comments_capture_text_and_doc_marker() {
        let lexed = lex("/// doc mention\n// pipette-lint: allow(D1) -- why\ncode();");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "/ doc mention");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].text, " pipette-lint: allow(D1) -- why");
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // A `\` before the newline joins the lines inside the literal but
        // still ends a real source line — tokens after the string must not
        // drift (this bit us on real code: waivers landed two lines off).
        let src = "let s = \"one \\\n    two\";\nafter();";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("after".into()))
            .expect("after token");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let src = "let x = 1.5e-3; for i in 0..10 { y(1.0); } let h = 0xff_u64;";
        let ids = idents(src);
        assert!(ids.contains(&"for".to_string()));
        assert!(!ids.contains(&"e".to_string()), "exponent leaked: {ids:?}");
        // `0..10` must not swallow the range dots.
        let dots = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_identifiers_are_unprefixed() {
        assert_eq!(
            idents("r#type r#match plain"),
            vec!["type", "match", "plain"]
        );
    }

    #[test]
    fn multiline_raw_string_tracks_lines() {
        let src = "a();\nlet s = r#\"line\nline\"#;\nb();";
        let lexed = lex(src);
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }
}
