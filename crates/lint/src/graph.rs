//! The workspace call graph: call-site extraction and name resolution
//! over the per-file symbol tables from [`crate::items`].
//!
//! Resolution is deliberately conservative. The graph rules (D6, D8,
//! D9) turn an edge into a *violation path*, so a wrong edge is a
//! phantom finding — far worse than a missing one. A call site
//! resolves only when the evidence is unambiguous:
//!
//! * `self.helper()` resolves inside the caller's own `impl` block;
//! * `Type::method(…)` and `Self::method(…)` resolve through the
//!   owner index;
//! * `module::func(…)` resolves when the qualifier names the callee's
//!   inline module or file;
//! * a bare `helper()` prefers a same-file definition, then a
//!   workspace-unique name;
//! * `.method()` on an arbitrary receiver resolves only when exactly
//!   one first-party method has that name *and* the name is not a
//!   common `std` method (`.len()`, `.lock()`, …) that would
//!   misattribute standard-library calls to a first-party namesake.
//!
//! Everything else stays an unresolved site, counted in
//! [`GraphStats::call_sites`] so the report still shows how much of
//! the workspace the graph saw.

use crate::items::FileItems;
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One function in the workspace-wide graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Owning `impl`/`trait` type, if any.
    pub owner: Option<String>,
    /// Exported-`pub` flag (restricted `pub(crate)` is `false`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
    /// Index into the defining file's [`FileItems::fns`].
    pub local_idx: usize,
}

impl FnNode {
    /// `Owner::name` or `name`, for diagnostics.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved caller→callee edge (deduplicated per pair; `line` is
/// the first call site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the first call site in the caller.
    pub line: u32,
}

/// Headline numbers for the `--json` report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// `fn` items across the workspace.
    pub functions: usize,
    /// Of those, exported-`pub`.
    pub public_fns: usize,
    /// `impl` blocks.
    pub impl_blocks: usize,
    /// Inline `mod` blocks.
    pub modules: usize,
    /// Call sites considered (resolved or not).
    pub call_sites: usize,
    /// Unique resolved caller→callee pairs.
    pub resolved_edges: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Workspace-relative file paths, indexed by [`FnNode::file`].
    pub files: Vec<String>,
    /// All functions.
    pub nodes: Vec<FnNode>,
    /// Resolved edges, sorted by `(caller, callee)`.
    pub edges: Vec<CallEdge>,
    /// Summary counters.
    pub stats: GraphStats,
}

/// One file's worth of input to the graph builder.
pub struct FileSyms<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// The file's token stream.
    pub tokens: &'a [Token],
    /// Its parsed symbol table.
    pub items: &'a FileItems,
    /// Per-token `#[cfg(test)]` mask (same length as `tokens`).
    pub in_test: &'a [bool],
}

/// Method names so common on `std` types that a dotted call must not
/// resolve to a first-party namesake.
const COMMON_STD_METHODS: &[&str] = &[
    "new",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "next",
    "min",
    "max",
    "abs",
    "sqrt",
    "powi",
    "powf",
    "to_string",
    "into",
    "from",
    "as_ref",
    "as_str",
    "as_slice",
    "cmp",
    "eq",
    "fmt",
    "lock",
    "unwrap",
    "expect",
    "collect",
    "map",
    "filter",
    "fold",
    "contains",
    "clear",
    "extend",
    "split",
    "join",
    "find",
    "position",
    "sort",
    "sort_by",
    "drain",
    "take",
    "write",
    "read",
    "flush",
    "wait",
    "drop",
    "default",
    "clamp",
    "floor",
    "ceil",
    "round",
    "trim",
    "parse",
];

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "unsafe", "break", "continue", "where", "impl", "dyn", "ref", "mut", "box", "await", "use",
    "pub", "crate", "super", "self", "Self", "Some", "Ok", "Err", "None", "Box", "Vec", "String",
];

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Builds the workspace graph from per-file symbol tables.
pub fn build_graph(files: &[FileSyms<'_>]) -> CallGraph {
    let mut graph = CallGraph::default();
    // Flatten nodes and build the resolution indexes.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fidx, fs) in files.iter().enumerate() {
        graph.files.push(fs.rel_path.to_string());
        graph.stats.impl_blocks += fs.items.impls;
        graph.stats.modules += fs.items.modules;
        for (lidx, f) in fs.items.fns.iter().enumerate() {
            let node = FnNode {
                file: fidx,
                name: f.name.clone(),
                owner: f.owner.clone(),
                is_pub: f.is_pub,
                line: f.line,
                in_test: fs.in_test.get(f.sig_start).copied().unwrap_or(false),
                local_idx: lidx,
            };
            graph.nodes.push(node);
        }
    }
    graph.stats.functions = graph.nodes.len();
    graph.stats.public_fns = graph
        .nodes
        .iter()
        .filter(|n| n.is_pub && !n.in_test)
        .count();
    for (nidx, node) in graph.nodes.iter().enumerate() {
        let fs = &files[node.file];
        let f = &fs.items.fns[node.local_idx];
        by_name.entry(f.name.as_str()).or_default().push(nidx);
        if let Some(owner) = &f.owner {
            by_owner
                .entry((owner.as_str(), f.name.as_str()))
                .or_default()
                .push(nidx);
            methods_by_name
                .entry(f.name.as_str())
                .or_default()
                .push(nidx);
        }
    }
    // A fast path for `module::func(` resolution: does the candidate's
    // defining file or inline-module path mention the qualifier?
    let module_matches = |cand: usize, qual: &str| -> bool {
        let node = &graph.nodes[cand];
        let f = &files[node.file].items.fns[node.local_idx];
        f.module.iter().any(|m| m == qual)
            || files[node.file].rel_path.ends_with(&format!("/{qual}.rs"))
            || files[node.file].rel_path.contains(&format!("/{qual}/"))
    };

    // Walk every fn body, extract call sites, resolve.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut nodes_of_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for (nidx, node) in graph.nodes.iter().enumerate() {
        nodes_of_file[node.file].push(nidx);
    }
    for (fidx, fs) in files.iter().enumerate() {
        let owner_of = fs.items.owner_of_token(fs.tokens.len());
        for &caller in &nodes_of_file[fidx] {
            let local = graph.nodes[caller].local_idx;
            let Some((open, close)) = fs.items.fns[local].body else {
                continue;
            };
            let caller_owner = graph.nodes[caller].owner.clone();
            for (i, owner) in owner_of.iter().enumerate().take(close).skip(open + 1) {
                // A nested fn's body belongs to the nested fn.
                if *owner != Some(local) {
                    continue;
                }
                let Some(name) = ident_at(fs.tokens, i) else {
                    continue;
                };
                if punct_at(fs.tokens, i + 1) != Some('(') {
                    continue;
                }
                if NON_CALL_IDENTS.contains(&name) {
                    continue;
                }
                let prev = punct_at(fs.tokens, i.wrapping_sub(1));
                let resolved: Option<usize> = if prev == Some('.') {
                    // `recv.name(`: self-receiver resolves in the
                    // caller's impl; otherwise only a workspace-unique,
                    // non-std method name.
                    graph.stats.call_sites += 1;
                    let self_recv = ident_at(fs.tokens, i.wrapping_sub(2)) == Some("self");
                    let own = caller_owner
                        .as_deref()
                        .and_then(|o| by_owner.get(&(o, name)))
                        .and_then(|c| (c.len() == 1).then(|| c[0]));
                    if self_recv && own.is_some() {
                        own
                    } else if COMMON_STD_METHODS.contains(&name) {
                        None
                    } else {
                        methods_by_name
                            .get(name)
                            .and_then(|c| (c.len() == 1).then(|| c[0]))
                    }
                } else if prev == Some(':') && punct_at(fs.tokens, i.wrapping_sub(2)) == Some(':') {
                    // `Qual::name(`.
                    graph.stats.call_sites += 1;
                    let qual = ident_at(fs.tokens, i.wrapping_sub(3));
                    match qual {
                        Some("Self") => caller_owner
                            .as_deref()
                            .and_then(|o| by_owner.get(&(o, name)))
                            .and_then(|c| (c.len() == 1).then(|| c[0])),
                        Some(q) => {
                            if let Some(c) = by_owner.get(&(q, name)) {
                                (c.len() == 1).then(|| c[0])
                            } else {
                                let cands = by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
                                let in_mod: Vec<usize> = cands
                                    .iter()
                                    .copied()
                                    .filter(|&c| module_matches(c, q))
                                    .collect();
                                if in_mod.len() == 1 {
                                    Some(in_mod[0])
                                } else if cands.len() == 1 {
                                    Some(cands[0])
                                } else {
                                    None
                                }
                            }
                        }
                        None => None,
                    }
                } else if prev != Some('!') {
                    // A bare `name(`: same-file first, then unique name.
                    graph.stats.call_sites += 1;
                    let cands = by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
                    let same_file: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| graph.nodes[c].file == fidx)
                        .collect();
                    if same_file.len() == 1 {
                        Some(same_file[0])
                    } else if cands.len() == 1 {
                        Some(cands[0])
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(callee) = resolved {
                    if seen.insert((caller, callee)) {
                        graph.edges.push(CallEdge {
                            caller,
                            callee,
                            line: fs.tokens[i].line,
                        });
                    }
                }
            }
        }
    }
    graph.edges.sort_by_key(|e| (e.caller, e.callee));
    graph.stats.resolved_edges = graph.edges.len();
    graph
}

impl CallGraph {
    /// Caller-indexed adjacency: `adj[caller]` lists `(callee, line)`.
    pub fn adjacency(&self) -> Vec<Vec<(usize, u32)>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.caller].push((e.callee, e.line));
        }
        adj
    }

    /// Breadth-first shortest path from `from` to any node where
    /// `is_sink` holds, traversing only nodes where `allowed` holds.
    /// Returns node indices from `from` to the sink inclusive; the
    /// start itself may be the sink (path of length 1).
    pub fn shortest_path(
        &self,
        from: usize,
        adj: &[Vec<(usize, u32)>],
        is_sink: impl Fn(usize) -> bool,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if !allowed(from) {
            return None;
        }
        if is_sink(from) {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut visited: BTreeSet<usize> = BTreeSet::from([from]);
        while let Some(cur) = queue.pop_front() {
            for &(next, _) in &adj[cur] {
                if !visited.insert(next) || !allowed(next) {
                    continue;
                }
                prev.insert(next, cur);
                if is_sink(next) {
                    let mut path = vec![next];
                    let mut at = next;
                    while let Some(&p) = prev.get(&at) {
                        path.push(p);
                        at = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Renders a node path as `a -> B::b -> c` for diagnostics.
    pub fn render_path(&self, path: &[usize]) -> String {
        path.iter()
            .map(|&n| self.nodes[n].qualified())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    struct Owned {
        rel_path: String,
        tokens: Vec<Token>,
        items: FileItems,
        in_test: Vec<bool>,
    }

    fn prep(files: &[(&str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let items = parse_items(&lexed.tokens);
                let in_test = crate::rules::test_region_mask(&lexed.tokens);
                Owned {
                    rel_path: path.to_string(),
                    tokens: lexed.tokens,
                    items,
                    in_test,
                }
            })
            .collect()
    }

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let owned = prep(files);
        let syms: Vec<FileSyms<'_>> = owned
            .iter()
            .map(|o| FileSyms {
                rel_path: &o.rel_path,
                tokens: &o.tokens,
                items: &o.items,
                in_test: &o.in_test,
            })
            .collect();
        build_graph(&syms)
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.caller].qualified(), g.nodes[e.callee].qualified()))
            .collect()
    }

    #[test]
    fn bare_calls_prefer_same_file_then_unique() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn top() { helper(); other(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn other() {}"),
        ]);
        assert_eq!(
            edge_names(&g),
            vec![
                ("top".into(), "helper".into()),
                ("top".into(), "other".into()),
            ]
        );
    }

    #[test]
    fn shadowed_names_do_not_resolve_across_files() {
        // Two files define `shared`; a third calls it. Ambiguous:
        // better no edge than a wrong one.
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn shared() {}"),
            ("crates/b/src/lib.rs", "pub fn shared() {}"),
            ("crates/c/src/lib.rs", "pub fn call() { shared(); }"),
        ]);
        assert!(edge_names(&g).is_empty(), "{:?}", edge_names(&g));
        assert_eq!(g.stats.call_sites, 1);
    }

    #[test]
    fn self_and_qualified_method_calls_resolve_to_impl() {
        let src = "struct S;\nimpl S {\n  fn a(&self) { self.b(); Self::c(); }\n  fn b(&self) {}\n  fn c() {}\n}";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(
            edge_names(&g),
            vec![
                ("S::a".into(), "S::b".into()),
                ("S::a".into(), "S::c".into())
            ]
        );
    }

    #[test]
    fn type_qualified_cross_crate_calls_resolve() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct W;\nimpl W { pub fn build() {} }",
            ),
            ("crates/b/src/lib.rs", "pub fn go() { W::build(); }"),
        ]);
        assert_eq!(edge_names(&g), vec![("go".into(), "W::build".into())]);
    }

    #[test]
    fn module_qualified_calls_resolve_by_path() {
        let g = graph_of(&[
            ("crates/a/src/latency/model.rs", "pub fn fit() {}"),
            (
                "crates/b/src/lib.rs",
                "pub fn fit() {}\npub fn go() { model::fit(); }",
            ),
        ]);
        assert_eq!(edge_names(&g), vec![("go".into(), "fit".into())]);
        let (_, callee) = (g.edges[0].caller, g.edges[0].callee);
        assert_eq!(
            g.files[g.nodes[callee].file],
            "crates/a/src/latency/model.rs"
        );
    }

    #[test]
    fn common_std_method_names_never_resolve_on_foreign_receivers() {
        let src = "struct S;\nimpl S { pub fn len(&self) -> usize { 0 } }\n\
                   pub fn go(v: &[u8]) { let _n = v.len(); }";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert!(edge_names(&g).is_empty(), "{:?}", edge_names(&g));
    }

    #[test]
    fn unique_first_party_method_resolves_through_any_receiver() {
        let src = "struct S;\nimpl S { pub fn recompute_spans(&self) {} }\n\
                   pub fn go(s: &S) { s.recompute_spans(); }";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(
            edge_names(&g),
            vec![("go".into(), "S::recompute_spans".into())]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_call_sites() {
        let src = "pub fn go(x: u32) -> u32 { if (x > 1) { return x; } vec![1]; assert_ne!(x, 9); match (x) { _ => x } }";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(g.stats.call_sites, 0, "{:?}", g.stats);
    }

    #[test]
    fn shortest_path_finds_transitive_route() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() {}",
        )]);
        let adj = g.adjacency();
        let deep = g.nodes.iter().position(|n| n.name == "deep").unwrap();
        let entry = g.nodes.iter().position(|n| n.name == "entry").unwrap();
        let path = g
            .shortest_path(entry, &adj, |n| n == deep, |_| true)
            .unwrap();
        assert_eq!(g.render_path(&path), "entry -> mid -> deep");
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() { real(); } }",
        )]);
        let t = g.nodes.iter().find(|n| n.name == "t").unwrap();
        assert!(t.in_test);
        assert!(!g.nodes.iter().find(|n| n.name == "real").unwrap().in_test);
        assert_eq!(g.stats.public_fns, 1);
    }
}
