//! **pipette-obs** — deterministic telemetry for the Pipette configurator.
//!
//! The configurator's hot paths (incremental SA objective, batched MLP
//! screening, warm estimator caches) are fast but opaque; this crate makes
//! a run *auditable* without making it *non-reproducible*. Three design
//! rules keep traces bit-comparable across machines and thread counts:
//!
//! 1. **Logical clocks, not wall clocks.** Every [`Event`] is keyed by the
//!    domain's own counters — SA iteration, candidate index, training
//!    iteration — and the line number in the JSONL output. Wall-clock time
//!    is an *optional annotation* ([`TraceConfig::wall_clock`], off by
//!    default) serialized as a trailing `"wall_ms"` field, so a trace with
//!    annotations stripped is byte-identical to one recorded without them.
//! 2. **Deterministic merge.** Parallel work records into child traces
//!    ([`Trace::child`]) that the orchestrator absorbs in work-item order
//!    ([`Trace::absorb`]), so the event stream is independent of how many
//!    worker threads ran.
//! 3. **Typed events, hand-rolled JSON.** [`EventKind`] is an enum (no
//!    per-event allocation beyond the `Vec` push), and serialization is a
//!    fixed field order with shortest-round-trip float formatting — two
//!    traces of equal events are equal strings.
//!
//! [`Metrics`] adds named monotonic [`Counter`]s and power-of-two-bucket
//! [`Histogram`]s that flush into the same sink as `counter` / `histogram`
//! events, sorted by name.
//!
//! [`span`] layers deterministic hierarchical spans over the flat stream
//! (logical cost units, structural nesting, no ids), and [`analysis`]
//! parses JSONL back into a [`span::SpanTree`] for rollups, two-trace
//! diffs, and the committed `trace_budgets.json` CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod metrics;
pub mod span;
pub mod trace;

pub use event::{Event, EventKind, EventTag, SCHEMA_VERSION};
pub use metrics::{Counter, Histogram, Metrics};
pub use span::{CostUnit, SpanGuard, SpanTree};
pub use trace::{Trace, TraceConfig};
