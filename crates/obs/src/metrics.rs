//! Named counters and histograms that flush into a [`Trace`].
//!
//! Histograms bucket by the value's IEEE-754 binary exponent — a
//! platform-independent, branch-free `log2` floor — so two runs that
//! record the same values always produce the same buckets, and summaries
//! stay compact (one `(exponent, count)` pair per occupied power of two).

use crate::event::EventKind;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// A monotonic counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A histogram over non-negative `f64` values with sparse power-of-two
/// buckets keyed by binary exponent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

/// Bucket key: the unbiased IEEE-754 exponent of `|v|`. Zero and
/// subnormals share the smallest bucket (−1023); this is `floor(log2)`
/// for normal values, computed without floating-point math.
fn exponent_bucket(v: f64) -> i32 {
    (((v.abs().to_bits() >> 52) & 0x7ff) as i32) - 1023
}

impl Histogram {
    /// Records one value. Non-finite values are counted (in `count`/`sum`
    /// propagation rules of `f64`) but land in a sentinel bucket of 1024.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v.is_finite() {
            exponent_bucket(v)
        } else {
            1024
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Occupied buckets as sorted `(binary exponent, count)` pairs.
    pub fn buckets(&self) -> Vec<(i32, u64)> {
        self.buckets.iter().map(|(&e, &n)| (e, n)).collect()
    }
}

/// A registry of named counters and histograms. `BTreeMap`s keep flush
/// order sorted by name, hence deterministic.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Emits every counter then every histogram into `trace` as
    /// `counter` / `histogram` events, sorted by name.
    pub fn emit_into(&self, trace: &mut Trace) {
        for (name, c) in &self.counters {
            trace.push(EventKind::Counter {
                name: name.clone(),
                value: c.get(),
            });
        }
        for (name, h) in &self.histograms {
            trace.push(EventKind::Histogram {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.buckets(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_bucket_is_floor_log2() {
        assert_eq!(exponent_bucket(1.0), 0);
        assert_eq!(exponent_bucket(1.99), 0);
        assert_eq!(exponent_bucket(2.0), 1);
        assert_eq!(exponent_bucket(0.5), -1);
        assert_eq!(exponent_bucket(0.75), -1);
        assert_eq!(exponent_bucket(1e-3), -10);
        assert_eq!(exponent_bucket(-4.0), 2);
        assert_eq!(exponent_bucket(0.0), -1023);
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = Histogram::default();
        for v in [0.25, 0.5, 1.0, 1.5, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 11.25);
        assert_eq!(h.min(), 0.25);
        assert_eq!(h.max(), 8.0);
        assert_eq!(h.buckets(), vec![(-2, 1), (-1, 1), (0, 2), (3, 1)]);
    }

    #[test]
    fn metrics_emit_sorted_by_name() {
        let mut m = Metrics::new();
        m.counter("z_last").add(1);
        m.counter("a_first").add(2);
        m.histogram("mid").record(1.0);
        let mut t = Trace::default();
        m.emit_into(&mut t);
        let names: Vec<String> = t
            .events()
            .iter()
            .map(|e| match &e.kind {
                EventKind::Counter { name, .. } => name.clone(),
                EventKind::Histogram { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["a_first", "z_last", "mid"]);
    }

    #[test]
    fn counter_accumulates() {
        let mut m = Metrics::new();
        m.counter("evals").inc();
        m.counter("evals").add(9);
        assert_eq!(m.counter("evals").get(), 10);
    }

    #[test]
    fn exponent_bucket_uses_magnitude_for_negatives() {
        // Sign is dropped: the bucket is the exponent of |v|.
        assert_eq!(exponent_bucket(-1.0), exponent_bucket(1.0));
        assert_eq!(exponent_bucket(-0.5), -1);
        assert_eq!(exponent_bucket(-1e-3), -10);
        assert_eq!(exponent_bucket(-0.0), -1023);
    }

    #[test]
    fn exponent_bucket_handles_subnormals_and_extremes() {
        // All subnormals share the zero bucket: their exponent bits are 0.
        assert_eq!(exponent_bucket(f64::MIN_POSITIVE / 2.0), -1023);
        assert_eq!(exponent_bucket(f64::from_bits(1)), -1023); // smallest subnormal
        assert_eq!(exponent_bucket(-f64::from_bits(1)), -1023);
        // Boundary normals.
        assert_eq!(exponent_bucket(f64::MIN_POSITIVE), -1022);
        assert_eq!(exponent_bucket(f64::MAX), 1023);
        // Non-finite values all carry the maximal exponent field.
        assert_eq!(exponent_bucket(f64::INFINITY), 1024);
        assert_eq!(exponent_bucket(f64::NEG_INFINITY), 1024);
        assert_eq!(exponent_bucket(f64::NAN), 1024);
    }

    #[test]
    fn histogram_routes_non_finite_to_the_sentinel_bucket() {
        let mut h = Histogram::default();
        h.record(1.0);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(f64::NAN);
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets(), vec![(0, 1), (1024, 3)]);
        // Summary stats follow f64 propagation: once NaN enters, sum is NaN.
        assert!(h.sum().is_nan());
    }

    #[test]
    fn histogram_min_max_track_negatives() {
        let mut h = Histogram::default();
        h.record(-2.0);
        h.record(4.0);
        h.record(-8.0);
        assert_eq!(h.min(), -8.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.sum(), -6.0);
        // -2 and 4 land in distinct buckets; -8 shares |v|'s exponent 3.
        assert_eq!(h.buckets(), vec![(1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn histogram_subnormal_values_are_counted_not_lost() {
        let mut h = Histogram::default();
        let tiny = f64::from_bits(1);
        h.record(tiny);
        h.record(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets(), vec![(-1023, 2)]);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), tiny);
    }

    #[test]
    fn emit_into_is_deterministic_and_insertion_order_free() {
        // Two registries built in opposite insertion orders emit identical
        // streams: BTreeMap keying makes name order canonical.
        let mut forward = Metrics::new();
        forward.counter("alpha").add(1);
        forward.counter("beta").add(2);
        forward.histogram("gamma").record(0.5);
        forward.histogram("delta").record(2.0);
        let mut reversed = Metrics::new();
        reversed.histogram("delta").record(2.0);
        reversed.histogram("gamma").record(0.5);
        reversed.counter("beta").add(2);
        reversed.counter("alpha").add(1);

        let mut tf = Trace::default();
        forward.emit_into(&mut tf);
        let mut tr = Trace::default();
        reversed.emit_into(&mut tr);
        assert_eq!(tf.to_jsonl(), tr.to_jsonl());
        // Counters first (sorted), then histograms (sorted).
        let kinds: Vec<&str> = tf.events().iter().map(|e| e.kind.kind()).collect();
        assert_eq!(kinds, ["counter", "counter", "histogram", "histogram"]);
        assert!(tf.to_jsonl().contains(r#""name":"alpha""#));
    }
}
