//! Trace analytics: parse canonical JSONL back into structure.
//!
//! Everything here is offline and deterministic — same input text, same
//! output — so analyses are themselves regression-testable. The module
//! provides:
//!
//! - a minimal zero-dependency JSON parser ([`parse_json`]) sufficient
//!   for the canonical writer's output and the budget manifest,
//! - [`ParsedTrace`]: a JSONL trace re-read as typed lines, lowered to
//!   a [`SpanTree`] for rollups and hot-span ranking,
//! - [`diff_jsonl`]: structural two-trace comparison (per-span and
//!   per-kind deltas plus the first divergent stripped line),
//! - [`BudgetManifest`]: the committed `trace_budgets.json` format and
//!   its evaluation against a trace ([`BudgetReport`]), and
//! - deterministic plain-text renderers for the `pipette trace`
//!   subcommands.

use crate::span::{SpanError, SpanTree, TraceLine};
use std::fmt;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` (every number the
/// canonical writer emits round-trips exactly; logical costs stay far
/// below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving field order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't' | b'f') => {
                if self.literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect_byte(b'}', "expected ',' or '}'")?;
            return Ok(JsonValue::Obj(fields));
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect_byte(b']', "expected ',' or ']'")?;
            return Ok(JsonValue::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Unpaired surrogates degrade to the
                            // replacement character; the canonical
                            // writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let len = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    match std::str::from_utf8(&rest[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // self.pos is on the 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut code = 0u32;
        for &b in &self.bytes[start..end] {
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
        }
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---------------------------------------------------------------------------
// Parsed traces
// ---------------------------------------------------------------------------

/// Why an analysis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A line failed to parse as JSON.
    Json {
        /// Zero-based line index.
        line: usize,
        /// The parse error.
        error: JsonError,
    },
    /// A line parsed but is not a JSON object.
    NotAnObject {
        /// Zero-based line index.
        line: usize,
    },
    /// A line is missing (or has the wrong type for) a required field.
    Field {
        /// Zero-based line index.
        line: usize,
        /// The field name.
        field: &'static str,
    },
    /// Span reconstruction failed.
    Span(SpanError),
    /// The budget manifest is malformed.
    Manifest(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Json { line, error } => write!(f, "line {line}: {error}"),
            AnalysisError::NotAnObject { line } => write!(f, "line {line}: not a JSON object"),
            AnalysisError::Field { line, field } => {
                write!(f, "line {line}: missing or mistyped field '{field}'")
            }
            AnalysisError::Span(e) => write!(f, "span reconstruction: {e}"),
            AnalysisError::Manifest(msg) => write!(f, "budget manifest: {msg}"),
        }
    }
}

impl From<SpanError> for AnalysisError {
    fn from(e: SpanError) -> Self {
        AnalysisError::Span(e)
    }
}

impl std::error::Error for AnalysisError {}

/// One JSONL trace line, re-read.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Zero-based line index in the input.
    pub line: usize,
    /// The `kind` tag.
    pub kind: String,
    /// The `wall_ms` annotation, when present.
    pub wall_ms: Option<f64>,
    value: JsonValue,
}

impl ParsedEvent {
    /// Looks up any field of the line.
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        self.value.get(name)
    }

    fn str_field(&self, name: &'static str) -> Result<&str, AnalysisError> {
        self.field(name)
            .and_then(JsonValue::as_str)
            .ok_or(AnalysisError::Field {
                line: self.line,
                field: name,
            })
    }

    fn u64_field(&self, name: &'static str) -> Result<u64, AnalysisError> {
        self.field(name)
            .and_then(JsonValue::as_u64)
            .ok_or(AnalysisError::Field {
                line: self.line,
                field: name,
            })
    }
}

/// A JSONL trace parsed back into typed lines.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    events: Vec<ParsedEvent>,
}

impl ParsedTrace {
    /// Parses one event per non-empty line. Every line must be a JSON
    /// object with a string `kind`.
    pub fn from_jsonl(text: &str) -> Result<Self, AnalysisError> {
        let mut events = Vec::new();
        for (line, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let value = parse_json(raw).map_err(|error| AnalysisError::Json { line, error })?;
            if !matches!(value, JsonValue::Obj(_)) {
                return Err(AnalysisError::NotAnObject { line });
            }
            let kind = value
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or(AnalysisError::Field {
                    line,
                    field: "kind",
                })?
                .to_string();
            let wall_ms = value.get("wall_ms").and_then(JsonValue::as_f64);
            events.push(ParsedEvent {
                line,
                kind,
                wall_ms,
                value,
            });
        }
        Ok(Self { events })
    }

    /// The parsed lines, in input order.
    pub fn events(&self) -> &[ParsedEvent] {
        &self.events
    }

    /// How many lines carry the given `kind` tag.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Reconstructs the span tree from the parsed lines.
    pub fn span_tree(&self) -> Result<SpanTree, AnalysisError> {
        let mut lines = Vec::with_capacity(self.events.len());
        for event in &self.events {
            lines.push(match event.kind.as_str() {
                "span_open" => TraceLine::Open {
                    name: event.str_field("name")?,
                    wall_ms: event.wall_ms,
                },
                "span_close" => TraceLine::Close {
                    name: event.str_field("name")?,
                    unit: event.str_field("unit")?,
                    cost: event.u64_field("cost")?,
                    wall_ms: event.wall_ms,
                },
                other => TraceLine::Other { kind: other },
            });
        }
        Ok(SpanTree::build(lines.into_iter())?)
    }
}

/// Parses JSONL straight to a [`SpanTree`].
pub fn span_tree_from_jsonl(text: &str) -> Result<SpanTree, AnalysisError> {
    ParsedTrace::from_jsonl(text)?.span_tree()
}

// ---------------------------------------------------------------------------
// Stripping and divergence (shared test-support API)
// ---------------------------------------------------------------------------

/// Removes the trailing `"wall_ms"` annotation from every line, yielding
/// the bit-comparable form (the canonical writer always emits `wall_ms`
/// last, so this is a suffix operation).
pub fn strip_wall_ms(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        match line.rfind(",\"wall_ms\":") {
            Some(idx) if line.ends_with('}') => {
                out.push_str(&line[..idx]);
                out.push('}');
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Where two JSONL streams first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlDivergence {
    /// Zero-based line index of the first difference.
    pub line: usize,
    /// The left stream's line, or `None` if it ended first.
    pub left: Option<String>,
    /// The right stream's line, or `None` if it ended first.
    pub right: Option<String>,
}

impl fmt::Display for JsonlDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at line {}:", self.line)?;
        writeln!(
            f,
            "  left:  {}",
            self.left.as_deref().unwrap_or("<end of stream>")
        )?;
        write!(
            f,
            "  right: {}",
            self.right.as_deref().unwrap_or("<end of stream>")
        )
    }
}

/// Compares two JSONL streams line by line and reports the first
/// difference, or `None` if they are identical. The shared helper behind
/// every thread-invariance test: on failure it names the exact line,
/// which a bare string inequality cannot.
pub fn first_divergence(left: &str, right: &str) -> Option<JsonlDivergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) => {
                if a != b {
                    return Some(JsonlDivergence {
                        line,
                        left: a.map(str::to_string),
                        right: b.map(str::to_string),
                    });
                }
            }
        }
        line += 1;
    }
}

// ---------------------------------------------------------------------------
// Two-trace diff
// ---------------------------------------------------------------------------

/// Per-span-name delta between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Span name.
    pub name: String,
    /// Cost unit (left's, or right's if absent on the left).
    pub unit: String,
    /// Instance counts (left, right).
    pub count: (u64, u64),
    /// Summed logical costs (left, right).
    pub cost: (u64, u64),
    /// Summed enclosed events (left, right).
    pub total_events: (u64, u64),
}

impl SpanDelta {
    /// Whether the two sides disagree.
    pub fn changed(&self) -> bool {
        self.count.0 != self.count.1
            || self.cost.0 != self.cost.1
            || self.total_events.0 != self.total_events.1
    }
}

/// Per-event-kind count delta between two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindDelta {
    /// The `kind` tag.
    pub kind: String,
    /// Counts (left, right).
    pub count: (u64, u64),
}

/// Structural comparison of two traces.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Total line counts (left, right).
    pub total_lines: (u64, u64),
    /// Per-span deltas, sorted by name (union of both sides).
    pub spans: Vec<SpanDelta>,
    /// Per-kind deltas, sorted by kind (union of both sides).
    pub kinds: Vec<KindDelta>,
    /// First differing stripped line, if any.
    pub first_divergence: Option<JsonlDivergence>,
}

impl TraceDiff {
    /// Whether the traces differ at all (wall-clock annotations
    /// excluded).
    pub fn has_drift(&self) -> bool {
        self.first_divergence.is_some()
    }
}

/// Diffs two JSONL traces: stripped byte comparison first, then per-span
/// and per-kind structural deltas.
pub fn diff_jsonl(left: &str, right: &str) -> Result<TraceDiff, AnalysisError> {
    let stripped_left = strip_wall_ms(left);
    let stripped_right = strip_wall_ms(right);
    let first = first_divergence(&stripped_left, &stripped_right);
    let tree_left = span_tree_from_jsonl(left)?;
    let tree_right = span_tree_from_jsonl(right)?;

    let left_rollups = tree_left.rollups();
    let right_rollups = tree_right.rollups();
    let mut names: Vec<&str> = left_rollups
        .iter()
        .chain(right_rollups.iter())
        .map(|r| r.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let spans = names
        .iter()
        .map(|&name| {
            let l = left_rollups.iter().find(|r| r.name == name);
            let r = right_rollups.iter().find(|r| r.name == name);
            SpanDelta {
                name: name.to_string(),
                unit: l.or(r).map(|x| x.unit.clone()).unwrap_or_default(),
                count: (l.map_or(0, |x| x.count), r.map_or(0, |x| x.count)),
                cost: (l.map_or(0, |x| x.cost), r.map_or(0, |x| x.cost)),
                total_events: (
                    l.map_or(0, |x| x.total_events),
                    r.map_or(0, |x| x.total_events),
                ),
            }
        })
        .collect();

    let mut kind_names: Vec<&str> = tree_left
        .kind_counts()
        .keys()
        .chain(tree_right.kind_counts().keys())
        .map(String::as_str)
        .collect();
    kind_names.sort_unstable();
    kind_names.dedup();
    let kinds = kind_names
        .iter()
        .map(|&kind| KindDelta {
            kind: kind.to_string(),
            count: (
                tree_left.kind_counts().get(kind).copied().unwrap_or(0),
                tree_right.kind_counts().get(kind).copied().unwrap_or(0),
            ),
        })
        .collect();

    Ok(TraceDiff {
        total_lines: (
            tree_left.total_lines() as u64,
            tree_right.total_lines() as u64,
        ),
        spans,
        kinds,
        first_divergence: first,
    })
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Manifest schema tag accepted by [`BudgetManifest::parse`].
pub const BUDGET_SCHEMA: &str = "pipette-trace-budgets/v1";

/// Ceilings for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBudget {
    /// Span name the ceilings apply to.
    pub span: String,
    /// Required cost unit, when pinned.
    pub unit: Option<String>,
    /// Maximum instance count.
    pub max_count: Option<u64>,
    /// Maximum summed logical cost.
    pub max_cost: Option<u64>,
    /// Maximum summed enclosed events.
    pub max_total_events: Option<u64>,
    /// Whether the span must be present at all.
    pub require: bool,
}

/// Ceiling for one event kind's count.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBudget {
    /// The `kind` tag the ceiling applies to.
    pub kind: String,
    /// Maximum occurrence count.
    pub max_count: u64,
}

/// The committed `trace_budgets.json` manifest: logical-cost and
/// event-count ceilings that CI evaluates against the perf-baseline
/// reference trace. Budgets are on *logical* quantities, so the gate is
/// immune to machine speed — it trips only when the configurator starts
/// doing more work.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetManifest {
    /// Ceiling on total trace lines, when set.
    pub max_total_lines: Option<u64>,
    /// Per-span ceilings.
    pub spans: Vec<SpanBudget>,
    /// Per-kind count ceilings.
    pub events: Vec<EventBudget>,
}

impl BudgetManifest {
    /// Parses the manifest JSON, validating the schema tag.
    pub fn parse(text: &str) -> Result<Self, AnalysisError> {
        let value = parse_json(text)
            .map_err(|error| AnalysisError::Manifest(format!("invalid JSON: {error}")))?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| AnalysisError::Manifest("missing string field 'schema'".into()))?;
        if schema != BUDGET_SCHEMA {
            return Err(AnalysisError::Manifest(format!(
                "unsupported schema '{schema}' (expected '{BUDGET_SCHEMA}')"
            )));
        }
        let max_total_lines = match value.get("max_total_lines") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                AnalysisError::Manifest("'max_total_lines' must be a non-negative integer".into())
            })?),
        };
        let mut spans = Vec::new();
        if let Some(items) = value.get("spans").and_then(JsonValue::as_array) {
            for (i, item) in items.iter().enumerate() {
                let span = item
                    .get("span")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        AnalysisError::Manifest(format!("spans[{i}]: missing string field 'span'"))
                    })?
                    .to_string();
                let uint = |field: &str| -> Result<Option<u64>, AnalysisError> {
                    match item.get(field) {
                        None => Ok(None),
                        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                            AnalysisError::Manifest(format!(
                                "spans[{i}].{field} must be a non-negative integer"
                            ))
                        }),
                    }
                };
                spans.push(SpanBudget {
                    span,
                    unit: item
                        .get("unit")
                        .and_then(JsonValue::as_str)
                        .map(str::to_string),
                    max_count: uint("max_count")?,
                    max_cost: uint("max_cost")?,
                    max_total_events: uint("max_total_events")?,
                    require: item
                        .get("require")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                });
            }
        }
        let mut events = Vec::new();
        if let Some(items) = value.get("events").and_then(JsonValue::as_array) {
            for (i, item) in items.iter().enumerate() {
                events.push(EventBudget {
                    kind: item
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| {
                            AnalysisError::Manifest(format!(
                                "events[{i}]: missing string field 'kind'"
                            ))
                        })?
                        .to_string(),
                    max_count: item
                        .get("max_count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| {
                            AnalysisError::Manifest(format!(
                                "events[{i}]: missing integer field 'max_count'"
                            ))
                        })?,
                });
            }
        }
        Ok(Self {
            max_total_lines,
            spans,
            events,
        })
    }

    /// Evaluates every ceiling against a trace.
    pub fn check(&self, tree: &SpanTree) -> BudgetReport {
        fn push(checks: &mut Vec<BudgetCheck>, label: String, actual: u64, limit: u64) {
            checks.push(BudgetCheck {
                label,
                actual,
                limit,
                ok: actual <= limit,
            });
        }
        let mut checks = Vec::new();
        if let Some(limit) = self.max_total_lines {
            push(
                &mut checks,
                "total lines".to_string(),
                tree.total_lines() as u64,
                limit,
            );
        }
        let rollups = tree.rollups();
        for budget in &self.spans {
            let rollup = rollups.iter().find(|r| r.name == budget.span);
            match rollup {
                None => {
                    if budget.require {
                        checks.push(BudgetCheck {
                            label: format!("span '{}' present", budget.span),
                            actual: 0,
                            limit: 0,
                            ok: false,
                        });
                    }
                }
                Some(r) => {
                    if let Some(unit) = &budget.unit {
                        checks.push(BudgetCheck {
                            label: format!(
                                "span '{}' unit is '{}' (got '{}')",
                                budget.span, unit, r.unit
                            ),
                            actual: u64::from(&r.unit != unit),
                            limit: 0,
                            ok: &r.unit == unit,
                        });
                    }
                    if let Some(limit) = budget.max_count {
                        push(
                            &mut checks,
                            format!("span '{}' count", budget.span),
                            r.count,
                            limit,
                        );
                    }
                    if let Some(limit) = budget.max_cost {
                        push(
                            &mut checks,
                            format!("span '{}' cost", budget.span),
                            r.cost,
                            limit,
                        );
                    }
                    if let Some(limit) = budget.max_total_events {
                        push(
                            &mut checks,
                            format!("span '{}' enclosed events", budget.span),
                            r.total_events,
                            limit,
                        );
                    }
                }
            }
        }
        for budget in &self.events {
            push(
                &mut checks,
                format!("event '{}' count", budget.kind),
                tree.kind_counts().get(&budget.kind).copied().unwrap_or(0),
                budget.max_count,
            );
        }
        BudgetReport { checks }
    }
}

/// One evaluated ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetCheck {
    /// What was checked.
    pub label: String,
    /// Observed value.
    pub actual: u64,
    /// Permitted maximum.
    pub limit: u64,
    /// Whether the ceiling held.
    pub ok: bool,
}

/// All evaluated ceilings for one trace.
#[derive(Debug, Clone, Default)]
pub struct BudgetReport {
    /// Every check, in manifest order.
    pub checks: Vec<BudgetCheck>,
}

impl BudgetReport {
    /// Whether every ceiling held.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failed checks.
    pub fn violations(&self) -> Vec<&BudgetCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

fn name_width<'a>(names: impl Iterator<Item = &'a str>, floor: usize) -> usize {
    names.map(str::len).fold(floor, usize::max)
}

/// Renders the `trace summarize` report: stream totals, per-name span
/// rollups, top-N hot spans, and per-kind event counts.
pub fn render_summary(tree: &SpanTree, top: usize) -> String {
    let mut out = String::new();
    let rollups = tree.rollups();
    let _ = writeln!(
        out,
        "trace: {} lines, {} span instances, {} span names",
        tree.total_lines(),
        tree.nodes().len(),
        rollups.len()
    );
    let w = name_width(rollups.iter().map(|r| r.name.as_str()), 4);
    let _ = writeln!(out, "\nspans:");
    let _ = writeln!(
        out,
        "  {:<w$}  {:>5}  {:>10}  {:<10}  {:>9}  {:>9}",
        "name", "count", "cost", "unit", "total_ev", "self_ev"
    );
    for r in &rollups {
        let _ = write!(
            out,
            "  {:<w$}  {:>5}  {:>10}  {:<10}  {:>9}  {:>9}",
            r.name, r.count, r.cost, r.unit, r.total_events, r.self_events
        );
        if let Some(wall) = r.wall_ms {
            let _ = write!(out, "  {wall:.3}ms");
        }
        out.push('\n');
    }
    let hot = tree.hot_spans(top);
    let _ = writeln!(out, "\nhot spans (top {} by enclosed events):", hot.len());
    for (i, r) in hot.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>2}. {:<w$}  {:>9} events  ({} {})",
            i + 1,
            r.name,
            r.total_events,
            r.cost,
            r.unit
        );
    }
    let _ = writeln!(out, "\nevent kinds:");
    let kw = name_width(tree.kind_counts().keys().map(String::as_str), 4);
    for (kind, count) in tree.kind_counts() {
        let _ = writeln!(out, "  {kind:<kw$}  {count:>9}");
    }
    out
}

/// Renders the `trace flame` view: each span instance indented under its
/// parent with a bar proportional to its enclosed-event share.
pub fn render_flame(tree: &SpanTree) -> String {
    const BAR: usize = 32;
    let max_events = tree
        .roots()
        .iter()
        .map(|&r| tree.nodes()[r].total_events)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::new();
    // Depth-first over the forest, children in stream order.
    let mut stack: Vec<usize> = tree.roots().iter().rev().copied().collect();
    while let Some(idx) = stack.pop() {
        let node = &tree.nodes()[idx];
        let bar_len = ((node.total_events * BAR).div_ceil(max_events)).clamp(1, BAR);
        let indent = "  ".repeat(node.depth);
        let _ = write!(
            out,
            "{indent}{:<width$} |{:<BAR$}| {} events ({} {})",
            node.name,
            "#".repeat(bar_len),
            node.total_events,
            node.cost,
            node.unit,
            width = 24usize.saturating_sub(indent.len()),
        );
        if let Some(wall) = node.wall_ms {
            let _ = write!(out, " {wall:.3}ms");
        }
        out.push('\n');
        for &child in node.children.iter().rev() {
            stack.push(child);
        }
    }
    out
}

/// Renders the `trace diff` report. Unchanged rows are elided; a
/// zero-drift diff renders as a single line.
pub fn render_diff(diff: &TraceDiff) -> String {
    let mut out = String::new();
    if !diff.has_drift() {
        let _ = writeln!(
            out,
            "zero drift: traces are bit-identical after stripping wall_ms ({} lines)",
            diff.total_lines.0
        );
        return out;
    }
    let _ = writeln!(out, "drift detected");
    if diff.total_lines.0 != diff.total_lines.1 {
        let _ = writeln!(
            out,
            "  total lines: {} -> {}",
            diff.total_lines.0, diff.total_lines.1
        );
    }
    for delta in diff.spans.iter().filter(|d| d.changed()) {
        let _ = writeln!(
            out,
            "  span '{}': count {} -> {}, cost {} -> {} {}, events {} -> {}",
            delta.name,
            delta.count.0,
            delta.count.1,
            delta.cost.0,
            delta.cost.1,
            delta.unit,
            delta.total_events.0,
            delta.total_events.1
        );
    }
    for delta in diff.kinds.iter().filter(|d| d.count.0 != d.count.1) {
        let _ = writeln!(
            out,
            "  kind '{}': {} -> {}",
            delta.kind, delta.count.0, delta.count.1
        );
    }
    if let Some(first) = &diff.first_divergence {
        let _ = writeln!(out, "{first}");
    }
    out
}

/// Renders the `trace check` report: one line per ceiling, violations
/// marked `FAIL`.
pub fn render_budget_report(report: &BudgetReport) -> String {
    let mut out = String::new();
    let verdict = if report.ok() { "PASS" } else { "FAIL" };
    let _ = writeln!(
        out,
        "budget check: {verdict} ({} checks, {} violations)",
        report.checks.len(),
        report.violations().len()
    );
    for check in &report.checks {
        let mark = if check.ok { "  ok " } else { "  FAIL " };
        let _ = writeln!(
            out,
            "{mark}{}: {} <= {}",
            check.label, check.actual, check.limit
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::CostUnit;
    use crate::{EventKind, Trace, TraceConfig};

    fn sample_trace(extra: usize) -> Trace {
        let mut t = Trace::new(TraceConfig::default());
        t.push(EventKind::RunStart {
            schema: 1,
            seed: 21,
            gpus: 16,
            global_batch: 64,
        });
        let outer = t.open_span("screen");
        for i in 0..(2 + extra) {
            t.push(EventKind::MemLoss {
                iteration: i,
                loss: i as f64 * 0.5,
            });
        }
        t.close_span(outer, CostUnit::Candidates, (2 + extra) as u64);
        let anneal = t.open_span("anneal");
        let chain = t.open_span("chain");
        t.push(EventKind::SaResult {
            candidate: 0,
            replica: 0,
            evaluations: 100,
            accepted: 10,
            improvements: 5,
            initial_cost: 2.0,
            best_cost: 1.0,
        });
        t.close_span(chain, CostUnit::Evals, 100);
        t.close_span(anneal, CostUnit::Evals, 100);
        t
    }

    #[test]
    fn parser_handles_scalars_arrays_and_objects() {
        let v = parse_json(r#"{"a":1,"b":-2.5,"c":"x\"y","d":[true,false,null],"e":{"f":3}}"#)
            .expect("valid json");
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(JsonValue::as_f64), Some(-2.5));
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x\"y"));
        assert_eq!(
            v.get("d")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("e")
                .and_then(|e| e.get("f"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("{}x").is_err());
        assert!(parse_json(r#"{"a"}"#).is_err());
        assert!(parse_json("nulls").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn parser_handles_escapes() {
        let v = parse_json(r#""a\n\tA\\""#).expect("valid");
        assert_eq!(v.as_str(), Some("a\n\tA\\"));
    }

    #[test]
    fn canonical_jsonl_round_trips() {
        let t = sample_trace(0);
        let parsed = ParsedTrace::from_jsonl(&t.to_jsonl()).expect("canonical output parses");
        assert_eq!(parsed.events().len(), t.len());
        assert_eq!(parsed.count_kind("mem_loss"), 2);
        assert_eq!(parsed.count_kind("span_open"), 3);
        // seq fields match line indices.
        for event in parsed.events() {
            assert_eq!(
                event.field("seq").and_then(JsonValue::as_u64),
                Some(event.line as u64)
            );
        }
    }

    #[test]
    fn span_tree_from_jsonl_matches_in_memory_tree() {
        let t = sample_trace(0);
        let from_mem = SpanTree::from_trace(&t).expect("balanced");
        let from_text = span_tree_from_jsonl(&t.to_jsonl()).expect("balanced");
        assert_eq!(from_mem.nodes(), from_text.nodes());
        assert_eq!(from_mem.kind_counts(), from_text.kind_counts());
    }

    #[test]
    fn strip_wall_ms_is_suffix_only() {
        let line = r#"{"seq":0,"kind":"mem_loss","iteration":1,"loss":0.5,"wall_ms":12.25}"#;
        let stripped = strip_wall_ms(line);
        assert_eq!(
            stripped.trim_end(),
            r#"{"seq":0,"kind":"mem_loss","iteration":1,"loss":0.5}"#
        );
        // A line without the annotation is untouched.
        let plain = r#"{"seq":0,"kind":"run_start"}"#;
        assert_eq!(strip_wall_ms(plain).trim_end(), plain);
    }

    #[test]
    fn first_divergence_reports_line_and_sides() {
        assert_eq!(first_divergence("a\nb\n", "a\nb\n"), None);
        let d = first_divergence("a\nb\n", "a\nc\n").expect("diverges");
        assert_eq!(d.line, 1);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right.as_deref(), Some("c"));
        let d = first_divergence("a\n", "a\nb\n").expect("length mismatch");
        assert_eq!(d.line, 1);
        assert_eq!(d.left, None);
        assert_eq!(d.right.as_deref(), Some("b"));
    }

    #[test]
    fn identical_traces_diff_to_zero_drift() {
        let a = sample_trace(0).to_jsonl();
        let b = sample_trace(0).to_jsonl();
        let diff = diff_jsonl(&a, &b).expect("both parse");
        assert!(!diff.has_drift());
        assert!(render_diff(&diff).contains("zero drift"));
    }

    #[test]
    fn differing_traces_report_span_deltas() {
        let a = sample_trace(0).to_jsonl();
        let b = sample_trace(3).to_jsonl();
        let diff = diff_jsonl(&a, &b).expect("both parse");
        assert!(diff.has_drift());
        let screen = diff
            .spans
            .iter()
            .find(|d| d.name == "screen")
            .expect("screen delta");
        assert!(screen.changed());
        assert_eq!(screen.cost, (2, 5));
        let rendered = render_diff(&diff);
        assert!(rendered.contains("drift detected"));
        assert!(rendered.contains("span 'screen'"));
        assert!(rendered.contains("first divergence"));
    }

    #[test]
    fn budget_manifest_parses_and_checks() {
        let manifest = BudgetManifest::parse(
            r#"{
              "schema": "pipette-trace-budgets/v1",
              "max_total_lines": 100,
              "spans": [
                {"span": "anneal", "unit": "evals", "max_count": 1, "max_cost": 150, "require": true},
                {"span": "missing", "require": true}
              ],
              "events": [{"kind": "mem_loss", "max_count": 10}]
            }"#,
        )
        .expect("valid manifest");
        let tree = SpanTree::from_trace(&sample_trace(0)).expect("balanced");
        let report = manifest.check(&tree);
        assert!(!report.ok(), "the 'missing' span must fail");
        let violations = report.violations();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].label.contains("missing"));
        let rendered = render_budget_report(&report);
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("span 'anneal' cost: 100 <= 150"));
    }

    #[test]
    fn budget_violations_trip() {
        let manifest = BudgetManifest::parse(
            r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"anneal","max_cost":99}]}"#,
        )
        .expect("valid");
        let tree = SpanTree::from_trace(&sample_trace(0)).expect("balanced");
        let report = manifest.check(&tree);
        assert!(!report.ok());
    }

    #[test]
    fn budget_manifest_rejects_bad_schema() {
        assert!(matches!(
            BudgetManifest::parse(r#"{"schema":"nope/v9"}"#),
            Err(AnalysisError::Manifest(_))
        ));
        assert!(BudgetManifest::parse("not json").is_err());
    }

    #[test]
    fn renderers_are_deterministic() {
        let t = sample_trace(0);
        let tree = SpanTree::from_trace(&t).expect("balanced");
        let s1 = render_summary(&tree, 5);
        let s2 = render_summary(&tree, 5);
        assert_eq!(s1, s2);
        assert!(s1.contains("anneal"));
        assert!(s1.contains("hot spans"));
        let f = render_flame(&tree);
        assert!(f.contains("screen"));
        assert!(
            f.lines().any(|l| l.starts_with("  chain")),
            "chain is indented:\n{f}"
        );
    }
}
