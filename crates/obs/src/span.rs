//! Deterministic hierarchical spans over the flat event stream.
//!
//! A span is a pair of `span_open` / `span_close` events bracketing a
//! phase of work. There are **no span ids in the stream**: a span's
//! parent is simply the nearest enclosing unclosed open, so the tree is
//! a pure function of the (already deterministic) event order and
//! survives [`crate::Trace::child`]/[`crate::Trace::absorb`] merging —
//! a balanced child trace nests under whatever span is open at absorb
//! time. Analysis assigns each span the `seq` of its open event as a
//! stable id.
//!
//! Span cost is a **logical** quantity ([`CostUnit`]: evaluations,
//! iterations, bytes, …) chosen by the instrumentation site, never wall
//! time, so costs are bit-stable across machines and thread counts.
//! Wall time rides along only via the trace's opt-in `wall_ms`
//! annotation, and a span's wall duration is recovered at analysis time
//! as `close.wall_ms - open.wall_ms`.

use crate::event::{Event, EventKind};
use crate::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// Unit of a span's logical cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostUnit {
    /// Objective-function evaluations (SA / tempering chains).
    Evals,
    /// Training iterations (memory-estimator fitting).
    Iterations,
    /// Bytes touched or transferred.
    Bytes,
    /// Profiling samples taken.
    Samples,
    /// Parallelism candidates processed.
    Candidates,
    /// GPU pairs measured or imputed.
    Pairs,
    /// Exchange rounds (parallel tempering rendezvous).
    Rounds,
    /// Trace events produced (for spans whose work *is* emission).
    Events,
    /// Serve requests admitted (the daemon's outermost span).
    Requests,
}

impl CostUnit {
    /// The unit tag as written to JSONL.
    pub const fn name(self) -> &'static str {
        match self {
            CostUnit::Evals => "evals",
            CostUnit::Iterations => "iters",
            CostUnit::Bytes => "bytes",
            CostUnit::Samples => "samples",
            CostUnit::Candidates => "candidates",
            CostUnit::Pairs => "pairs",
            CostUnit::Rounds => "rounds",
            CostUnit::Events => "events",
            CostUnit::Requests => "requests",
        }
    }
}

/// Token returned by [`Trace::open_span`] and consumed by
/// [`Trace::close_span`]. Deliberately not RAII: closing needs `&mut
/// Trace` plus a cost, so the close is an explicit call and the
/// `#[must_use]` on `open_span` keeps the bracketing honest.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// Trace length just after the open event — `close_span` derives the
    /// enclosed-event count from it.
    open_len: usize,
}

impl SpanGuard {
    pub(crate) fn new(name: &'static str, open_len: usize) -> Self {
        Self { name, open_len }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn open_len(&self) -> usize {
        self.open_len
    }
}

/// One line of a trace, reduced to what span reconstruction needs.
/// Both in-memory [`Event`]s and parsed JSONL lines lower into this.
#[derive(Debug, Clone)]
pub enum TraceLine<'a> {
    /// A `span_open` event.
    Open {
        /// Span name.
        name: &'a str,
        /// Optional wall-clock annotation.
        wall_ms: Option<f64>,
    },
    /// A `span_close` event.
    Close {
        /// Span name (must match the innermost open).
        name: &'a str,
        /// Cost unit tag.
        unit: &'a str,
        /// Logical cost.
        cost: u64,
        /// Optional wall-clock annotation.
        wall_ms: Option<f64>,
    },
    /// Any other event; only its kind tag matters to the tree.
    Other {
        /// The event's `kind` tag.
        kind: &'a str,
    },
}

impl<'a> TraceLine<'a> {
    /// Lowers an in-memory [`Event`].
    pub fn from_event(event: &'a Event) -> Self {
        match &event.kind {
            EventKind::SpanOpen { name } => TraceLine::Open {
                name,
                wall_ms: event.wall_ms,
            },
            EventKind::SpanClose {
                name, unit, cost, ..
            } => TraceLine::Close {
                name,
                unit,
                cost: *cost,
                wall_ms: event.wall_ms,
            },
            other => TraceLine::Other { kind: other.kind() },
        }
    }
}

/// Why a stream failed span reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanError {
    /// A `span_close` arrived with no span open.
    CloseWithoutOpen {
        /// Line index of the offending close.
        seq: usize,
        /// Name carried by the close.
        name: String,
    },
    /// A `span_close` named a different span than the innermost open.
    NameMismatch {
        /// Line index of the offending close.
        seq: usize,
        /// Name the close carried.
        closed: String,
        /// Name of the innermost open span.
        open: String,
    },
    /// The stream ended with spans still open.
    UnclosedSpans {
        /// Names of the still-open spans, outermost first.
        names: Vec<String>,
    },
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanError::CloseWithoutOpen { seq, name } => {
                write!(f, "line {seq}: span_close '{name}' with no span open")
            }
            SpanError::NameMismatch { seq, closed, open } => {
                write!(
                    f,
                    "line {seq}: span_close '{closed}' but innermost open span is '{open}'"
                )
            }
            SpanError::UnclosedSpans { names } => {
                write!(f, "stream ended with unclosed spans: {}", names.join(" > "))
            }
        }
    }
}

impl std::error::Error for SpanError {}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Stable id: line index (`seq`) of the open event.
    pub open_seq: usize,
    /// Line index of the close event.
    pub close_seq: usize,
    /// Index of the parent span in [`SpanTree::nodes`], if nested.
    pub parent: Option<usize>,
    /// Indices of directly nested spans, in stream order.
    pub children: Vec<usize>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Cost unit tag from the close event.
    pub unit: String,
    /// Logical cost from the close event.
    pub cost: u64,
    /// Events enclosed between open and close, nested spans' lines
    /// included.
    pub total_events: usize,
    /// Enclosed events minus everything inside nested spans (and the
    /// nested open/close lines themselves).
    pub self_events: usize,
    /// `close.wall_ms - open.wall_ms` when both were annotated.
    pub wall_ms: Option<f64>,
}

/// The span forest reconstructed from one trace, plus stream-level
/// tallies (total lines, per-kind counts) used by rollups and budgets.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    total_lines: usize,
    kind_counts: BTreeMap<String, u64>,
}

/// Aggregate over all instances of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    /// Span name.
    pub name: String,
    /// Number of instances.
    pub count: u64,
    /// Cost unit, or `"mixed"` if instances disagree.
    pub unit: String,
    /// Summed logical cost.
    pub cost: u64,
    /// Summed enclosed events (nested spans included).
    pub total_events: u64,
    /// Summed self events (nested spans excluded).
    pub self_events: u64,
    /// Summed wall duration over instances that carried annotations.
    pub wall_ms: Option<f64>,
}

impl SpanTree {
    /// Reconstructs the tree from an in-memory trace.
    pub fn from_trace(trace: &Trace) -> Result<Self, SpanError> {
        Self::build(trace.events().iter().map(TraceLine::from_event))
    }

    /// Reconstructs the tree from lowered trace lines (the shared path
    /// for in-memory events and parsed JSONL).
    pub fn build<'a>(lines: impl Iterator<Item = TraceLine<'a>>) -> Result<Self, SpanError> {
        let mut nodes: Vec<SpanNode> = Vec::new();
        let mut roots = Vec::new();
        let mut stack: Vec<(usize, Option<f64>)> = Vec::new();
        let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut total_lines = 0usize;
        for (seq, line) in lines.enumerate() {
            total_lines = seq + 1;
            match line {
                TraceLine::Open { name, wall_ms } => {
                    *kind_counts.entry("span_open".to_string()).or_insert(0) += 1;
                    let parent = stack.last().map(|&(idx, _)| idx);
                    let depth = stack.len();
                    let idx = nodes.len();
                    nodes.push(SpanNode {
                        name: name.to_string(),
                        open_seq: seq,
                        close_seq: 0,
                        parent,
                        children: Vec::new(),
                        depth,
                        unit: String::new(),
                        cost: 0,
                        total_events: 0,
                        self_events: 0,
                        wall_ms: None,
                    });
                    match parent {
                        Some(p) => nodes[p].children.push(idx),
                        None => roots.push(idx),
                    }
                    stack.push((idx, wall_ms));
                }
                TraceLine::Close {
                    name,
                    unit,
                    cost,
                    wall_ms,
                } => {
                    *kind_counts.entry("span_close".to_string()).or_insert(0) += 1;
                    let Some((idx, open_wall)) = stack.pop() else {
                        return Err(SpanError::CloseWithoutOpen {
                            seq,
                            name: name.to_string(),
                        });
                    };
                    if nodes[idx].name != name {
                        return Err(SpanError::NameMismatch {
                            seq,
                            closed: name.to_string(),
                            open: nodes[idx].name.clone(),
                        });
                    }
                    let total_events = seq - nodes[idx].open_seq - 1;
                    let nested: usize = nodes[idx]
                        .children
                        .iter()
                        .map(|&c| nodes[c].total_events + 2)
                        .sum();
                    let node = &mut nodes[idx];
                    node.close_seq = seq;
                    node.unit = unit.to_string();
                    node.cost = cost;
                    node.total_events = total_events;
                    node.self_events = total_events.saturating_sub(nested);
                    node.wall_ms = match (open_wall, wall_ms) {
                        (Some(o), Some(c)) => Some(c - o),
                        _ => None,
                    };
                }
                TraceLine::Other { kind } => {
                    *kind_counts.entry(kind.to_string()).or_insert(0) += 1;
                }
            }
        }
        if !stack.is_empty() {
            return Err(SpanError::UnclosedSpans {
                names: stack
                    .iter()
                    .map(|&(idx, _)| nodes[idx].name.clone())
                    .collect(),
            });
        }
        Ok(Self {
            nodes,
            roots,
            total_lines,
            kind_counts,
        })
    }

    /// All spans, in open (stream) order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Indices of top-level spans, in stream order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Total lines in the stream (span lines included).
    pub fn total_lines(&self) -> usize {
        self.total_lines
    }

    /// Per-kind event counts over the whole stream.
    pub fn kind_counts(&self) -> &BTreeMap<String, u64> {
        &self.kind_counts
    }

    /// Aggregates instances by span name, sorted by name.
    pub fn rollups(&self) -> Vec<SpanRollup> {
        let mut by_name: BTreeMap<&str, SpanRollup> = BTreeMap::new();
        for node in &self.nodes {
            let entry = by_name
                .entry(node.name.as_str())
                .or_insert_with(|| SpanRollup {
                    name: node.name.clone(),
                    count: 0,
                    unit: node.unit.clone(),
                    cost: 0,
                    total_events: 0,
                    self_events: 0,
                    wall_ms: None,
                });
            if entry.unit != node.unit {
                entry.unit = "mixed".to_string();
            }
            entry.count += 1;
            entry.cost += node.cost;
            entry.total_events += node.total_events as u64;
            entry.self_events += node.self_events as u64;
            if let Some(w) = node.wall_ms {
                *entry.wall_ms.get_or_insert(0.0) += w;
            }
        }
        by_name.into_values().collect()
    }

    /// The `n` hottest span names by summed enclosed events (ties broken
    /// by name, so the ranking is deterministic).
    pub fn hot_spans(&self, n: usize) -> Vec<SpanRollup> {
        let mut rollups = self.rollups();
        rollups.sort_by(|a, b| {
            b.total_events
                .cmp(&a.total_events)
                .then_with(|| a.name.cmp(&b.name))
        });
        rollups.truncate(n);
        rollups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    fn note(i: usize) -> EventKind {
        EventKind::MemLoss {
            iteration: i,
            loss: 0.0,
        }
    }

    #[test]
    fn guards_bracket_and_count_enclosed_events() {
        let mut t = Trace::new(TraceConfig::default());
        let outer = t.open_span("outer");
        t.push(note(0));
        let inner = t.open_span("inner");
        t.push(note(1));
        t.push(note(2));
        t.close_span(inner, CostUnit::Iterations, 2);
        t.push(note(3));
        t.close_span(outer, CostUnit::Candidates, 1);
        assert_eq!(t.open_span_count(), 0);

        let tree = SpanTree::from_trace(&t).expect("balanced");
        assert_eq!(tree.nodes().len(), 2);
        let outer = &tree.nodes()[0];
        let inner = &tree.nodes()[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        // outer encloses: note, span_open, note, note, span_close, note = 6
        assert_eq!(outer.total_events, 6);
        // minus inner's 2 events and its open/close lines = 2
        assert_eq!(outer.self_events, 2);
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.total_events, 2);
        assert_eq!(inner.self_events, 2);
        assert_eq!(inner.unit, "iters");
        assert_eq!(inner.cost, 2);
        assert_eq!(tree.roots(), &[0]);
    }

    #[test]
    fn recorded_events_field_matches_reconstruction() {
        let mut t = Trace::new(TraceConfig::default());
        let g = t.open_span("phase");
        t.push(note(0));
        t.push(note(1));
        t.close_span(g, CostUnit::Events, 2);
        let close = t.events().last().expect("close event");
        match &close.kind {
            EventKind::SpanClose { events, .. } => assert_eq!(*events, 2),
            other => panic!("expected span_close, got {other:?}"),
        }
    }

    #[test]
    fn absorbed_children_nest_under_the_open_span() {
        let mut root = Trace::new(TraceConfig::default());
        let anneal = root.open_span("anneal");
        let mut a = root.child();
        let ga = a.open_span("chain");
        a.push(note(0));
        a.close_span(ga, CostUnit::Evals, 10);
        let mut b = root.child();
        let gb = b.open_span("chain");
        b.push(note(1));
        b.close_span(gb, CostUnit::Evals, 20);
        root.absorb(a);
        root.absorb(b);
        root.close_span(anneal, CostUnit::Evals, 30);

        let tree = SpanTree::from_trace(&root).expect("balanced");
        assert_eq!(tree.nodes().len(), 3);
        assert_eq!(tree.nodes()[0].name, "anneal");
        assert_eq!(tree.nodes()[0].children, vec![1, 2]);
        assert_eq!(tree.nodes()[1].parent, Some(0));
        assert_eq!(tree.nodes()[2].parent, Some(0));
        let rollups = tree.rollups();
        assert_eq!(rollups.len(), 2);
        let chain = rollups.iter().find(|r| r.name == "chain").expect("chain");
        assert_eq!(chain.count, 2);
        assert_eq!(chain.cost, 30);
        assert_eq!(chain.unit, "evals");
    }

    #[test]
    fn mismatched_close_is_an_error() {
        let lines = vec![
            TraceLine::Open {
                name: "a",
                wall_ms: None,
            },
            TraceLine::Close {
                name: "b",
                unit: "evals",
                cost: 0,
                wall_ms: None,
            },
        ];
        match SpanTree::build(lines.into_iter()) {
            Err(SpanError::NameMismatch { seq, closed, open }) => {
                assert_eq!(seq, 1);
                assert_eq!(closed, "b");
                assert_eq!(open, "a");
            }
            other => panic!("expected NameMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unbalanced_streams_are_errors() {
        let open_only = vec![TraceLine::Open {
            name: "a",
            wall_ms: None,
        }];
        assert!(matches!(
            SpanTree::build(open_only.into_iter()),
            Err(SpanError::UnclosedSpans { .. })
        ));
        let close_only = vec![TraceLine::Close {
            name: "a",
            unit: "evals",
            cost: 0,
            wall_ms: None,
        }];
        assert!(matches!(
            SpanTree::build(close_only.into_iter()),
            Err(SpanError::CloseWithoutOpen { .. })
        ));
    }

    #[test]
    fn wall_duration_is_close_minus_open() {
        let lines = vec![
            TraceLine::Open {
                name: "a",
                wall_ms: Some(10.0),
            },
            TraceLine::Close {
                name: "a",
                unit: "evals",
                cost: 1,
                wall_ms: Some(12.5),
            },
        ];
        let tree = SpanTree::build(lines.into_iter()).expect("balanced");
        assert_eq!(tree.nodes()[0].wall_ms, Some(2.5));
    }

    #[test]
    fn hot_spans_rank_by_enclosed_events_deterministically() {
        let mut t = Trace::new(TraceConfig::default());
        let big = t.open_span("big");
        for i in 0..5 {
            t.push(note(i));
        }
        t.close_span(big, CostUnit::Events, 5);
        let small = t.open_span("small");
        t.push(note(9));
        t.close_span(small, CostUnit::Events, 1);
        let tree = SpanTree::from_trace(&t).expect("balanced");
        let hot = tree.hot_spans(1);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].name, "big");
    }
}
