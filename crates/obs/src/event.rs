//! The telemetry event vocabulary and its JSONL encoding.
//!
//! One [`Event`] becomes one JSON object on one line. Field order is
//! fixed (`seq`, `kind`, payload fields in declaration order, then the
//! optional `wall_ms` annotation), floats use Rust's shortest
//! round-trip formatting, and non-finite floats serialize as `null` —
//! so byte-equality of two trace files is exactly event-equality.

use std::fmt::Write as _;

/// Version stamp recorded in the `run_start` event; bump when the event
/// vocabulary or field meanings change incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One telemetry event: a typed payload plus the optional wall-clock
/// annotation (milliseconds since the trace epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Milliseconds since [`crate::Trace`] creation, present only when
    /// [`crate::TraceConfig::wall_clock`] is on. Excluded from
    /// bit-comparability guarantees.
    pub wall_ms: Option<f64>,
    /// The payload.
    pub kind: EventKind,
}

/// Everything the Pipette pipeline can report. Logical coordinates
/// (candidate rank, SA iteration, training iteration, …) live inside the
/// payload; the global sequence number is the JSONL line index.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A configurator run began.
    RunStart {
        /// Telemetry schema version ([`SCHEMA_VERSION`]).
        schema: u32,
        /// Search seed of the run.
        seed: u64,
        /// GPUs in the target cluster.
        gpus: usize,
        /// Global batch size being configured for.
        global_batch: u64,
    },
    /// The memory estimator finished training (or loaded from cache).
    MemTrain {
        /// Profiled samples in the training corpus.
        samples: usize,
        /// Adam iterations taken.
        iterations: usize,
        /// Loss of the final step.
        final_loss: f64,
        /// Whether the estimator came out of a [`cache`](Self::CacheStats)
        /// rather than being trained in this run.
        cached: bool,
    },
    /// One recorded point of the memory-estimator training loss curve.
    MemLoss {
        /// Training iteration the loss was sampled at.
        iteration: usize,
        /// Minibatch loss at that iteration.
        loss: f64,
    },
    /// Outcome of the batched memory screen over the candidate space.
    MemScreen {
        /// Candidates examined (Algorithm 1 loop trips).
        examined: usize,
        /// Candidates that passed the screen.
        accepted: usize,
        /// Candidates rejected as not runnable.
        rejected: usize,
    },
    /// Predicted memory headroom of the final recommendation.
    MemHeadroom {
        /// Estimator-predicted peak bytes of the recommended config.
        predicted_bytes: u64,
        /// Per-GPU memory capacity.
        limit_bytes: u64,
        /// Soft margin the screen applied on top of the prediction.
        soft_margin: f64,
        /// `1 - predicted/limit` — slack before the raw prediction
        /// exhausts the GPU.
        headroom_fraction: f64,
    },
    /// Trained-estimator cache counters at the end of the run.
    CacheStats {
        /// Lookups answered from memory or disk.
        hits: u64,
        /// Lookups that had to train.
        misses: u64,
        /// On-disk entries that existed but failed to parse (retrained).
        corrupt: u64,
    },
    /// Eq. 3–6 term breakdown of one screened candidate under the
    /// identity mapping.
    LatencyEstimate {
        /// Candidate index in enumeration order.
        candidate: usize,
        /// Pipeline ways.
        pp: usize,
        /// Tensor ways.
        tp: usize,
        /// Data ways.
        dp: usize,
        /// Microbatch size.
        micro_batch: u64,
        /// Microbatches per iteration per replica.
        n_microbatches: u64,
        /// Total estimated iteration seconds.
        seconds: f64,
        /// Pipeline fill/drain bubble term (Eq. 4).
        t_bubble: f64,
        /// Straggler steady-state term (Eq. 4).
        t_straggler: f64,
        /// Hidden-critical-path term (§V).
        t_hidden: f64,
        /// Exposed data-parallel all-reduce term (Eq. 6).
        t_dp: f64,
        /// Stage with the largest compute + TP cost.
        straggler_stage: usize,
    },
    /// One simulated-annealing move (sampled every
    /// [`crate::TraceConfig::sa_move_sample_every`] iterations).
    SaMove {
        /// Candidate rank (0 = best identity estimate) this SA pass
        /// belongs to.
        candidate: usize,
        /// Tempering replica the chain runs as (0 for single-chain SA).
        replica: usize,
        /// SA iteration within the pass.
        iteration: usize,
        /// Move kind (`"migration"`, `"swap"`, `"reverse"`).
        kind: &'static str,
        /// Objective delta of the proposal (ΔJ, seconds).
        delta: f64,
        /// Temperature at the decision.
        temperature: f64,
        /// Whether the move was accepted.
        accepted: bool,
    },
    /// Rolling SA convergence summary (every
    /// [`crate::TraceConfig::sa_summary_every`] iterations).
    SaSummary {
        /// Candidate rank this SA pass belongs to.
        candidate: usize,
        /// Tempering replica the chain runs as (0 for single-chain SA).
        replica: usize,
        /// SA iteration the window ended at.
        iteration: usize,
        /// Accepted / proposed within the window.
        acceptance_rate: f64,
        /// Objective of the current mapping.
        current_cost: f64,
        /// Best objective seen so far.
        best_cost: f64,
        /// Temperature at the end of the window.
        temperature: f64,
    },
    /// Final statistics of one SA pass.
    SaResult {
        /// Candidate rank this SA pass belongs to.
        candidate: usize,
        /// Tempering replica the chain ran as (0 for single-chain SA).
        replica: usize,
        /// Objective evaluations performed.
        evaluations: usize,
        /// Accepted moves (including uphill).
        accepted: usize,
        /// Strict best-cost improvements.
        improvements: usize,
        /// Cost of the initial (identity) mapping.
        initial_cost: f64,
        /// Cost of the best mapping found.
        best_cost: f64,
    },
    /// One parallel-tempering replica-exchange decision between the
    /// adjacent ladder rungs `replica_lo` (colder) and `replica_hi`.
    PtExchange {
        /// Candidate rank this tempering pass belongs to.
        candidate: usize,
        /// Exchange round (one per `exchange_interval` iterations).
        round: usize,
        /// Colder replica of the pair.
        replica_lo: usize,
        /// Hotter replica of the pair (`replica_lo + 1`).
        replica_hi: usize,
        /// Colder slot's temperature at the decision.
        temp_lo: f64,
        /// Hotter slot's temperature at the decision.
        temp_hi: f64,
        /// Colder slot's current objective before the decision (seconds).
        cost_lo: f64,
        /// Hotter slot's current objective before the decision (seconds).
        cost_hi: f64,
        /// Whether the states were swapped.
        accepted: bool,
    },
    /// The winning configuration with its full Eq. 3–6 breakdown.
    Recommendation {
        /// Pipeline ways.
        pp: usize,
        /// Tensor ways.
        tp: usize,
        /// Data ways.
        dp: usize,
        /// Microbatch size.
        micro_batch: u64,
        /// Microbatches per iteration per replica.
        n_microbatches: u64,
        /// Estimated iteration seconds under the chosen mapping.
        seconds: f64,
        /// Pipeline fill/drain bubble term.
        t_bubble: f64,
        /// Straggler steady-state term.
        t_straggler: f64,
        /// Hidden-critical-path term.
        t_hidden: f64,
        /// Exposed data-parallel all-reduce term.
        t_dp: f64,
        /// Optimizer-step constant.
        t_optimizer: f64,
        /// Stage with the largest compute + TP cost.
        straggler_stage: usize,
        /// Source GPU of the slowest pipeline hop (absent when `pp = 1`).
        slow_link_from: Option<usize>,
        /// Destination GPU of the slowest pipeline hop.
        slow_link_to: Option<usize>,
        /// Round-trip seconds over that hop.
        slow_link_seconds: Option<f64>,
    },
    /// One ranked runner-up configuration.
    Alternative {
        /// Rank (1 = first runner-up).
        rank: usize,
        /// Pipeline ways.
        pp: usize,
        /// Tensor ways.
        tp: usize,
        /// Data ways.
        dp: usize,
        /// Microbatch size.
        micro_batch: u64,
        /// Identity-mapping estimated iteration seconds.
        seconds: f64,
        /// Estimate delta vs. the recommendation (seconds, ≥ 0).
        delta_seconds: f64,
    },
    /// One executed pipeline task exported from the simulator's trace.
    SimTask {
        /// Pipeline stage (device) the task ran on.
        stage: usize,
        /// `"F"` (forward) or `"B"` (backward).
        kind: &'static str,
        /// Microbatch index.
        microbatch: u64,
        /// Start time, simulated seconds.
        start: f64,
        /// Finish time, simulated seconds.
        finish: f64,
    },
    /// A fault plan was applied to the run (counts only; the full plan
    /// lives in the caller's `--faults` file).
    FaultPlanApplied {
        /// Plan seed.
        plan_seed: u64,
        /// Degraded node-to-node links.
        degraded_links: usize,
        /// Straggler GPUs.
        straggler_gpus: usize,
        /// Explicitly failed GPUs.
        failed_gpus: usize,
        /// Explicitly failed nodes.
        failed_nodes: usize,
        /// Pairs with injected corrupt readings.
        corrupt_pairs: usize,
        /// Per-attempt measurement failure probability.
        measurement_failure_rate: f64,
        /// Per-sample memory-profile loss probability.
        sample_loss_rate: f64,
    },
    /// A profiled pair needed retries and/or discarded corrupt samples.
    ProfilerRetry {
        /// Source GPU.
        from: usize,
        /// Destination GPU.
        to: usize,
        /// Extra attempts beyond the requested repeats.
        retries: usize,
        /// Samples discarded as NaN/zero/implausible.
        corrupt_samples: usize,
        /// Whether a valid measurement was eventually obtained (false
        /// means the pair fell through to imputation).
        recovered: bool,
    },
    /// A profiled pair exhausted its retries and was imputed from
    /// topology priors.
    PairImputed {
        /// Source GPU.
        from: usize,
        /// Destination GPU.
        to: usize,
        /// The imputed bandwidth in GiB/s.
        gib_s: f64,
        /// Attempts spent before giving up.
        retries: usize,
    },
    /// A GPU was excluded from configuration (its node is cordoned).
    GpuExcluded {
        /// The excluded GPU.
        gpu: usize,
        /// Its (cordoned) host node.
        node: usize,
    },
    /// A pipeline component degraded to a simpler fallback.
    Fallback {
        /// The component that degraded (e.g. `"memory_estimator"`).
        component: String,
        /// Why the fallback was taken.
        reason: String,
    },
    /// Diff between the healthy-cluster recommendation and the one
    /// recomputed for the surviving subcluster.
    Reconfiguration {
        /// Healthy pipeline ways.
        healthy_pp: usize,
        /// Healthy tensor ways.
        healthy_tp: usize,
        /// Healthy data ways.
        healthy_dp: usize,
        /// Healthy microbatch size.
        healthy_micro: u64,
        /// Healthy estimated iteration seconds.
        healthy_seconds: f64,
        /// Degraded pipeline ways.
        degraded_pp: usize,
        /// Degraded tensor ways.
        degraded_tp: usize,
        /// Degraded data ways.
        degraded_dp: usize,
        /// Degraded microbatch size.
        degraded_micro: u64,
        /// Degraded estimated iteration seconds.
        degraded_seconds: f64,
        /// GPUs in the healthy cluster.
        healthy_gpus: usize,
        /// GPUs surviving the fault plan.
        surviving_gpus: usize,
    },
    /// A day-indexed temporal-drift episode perturbed the ground-truth
    /// bandwidth matrix before the rest of the fault plan applied.
    DriftApplied {
        /// Drift day applied (0 = the base matrix, no perturbation).
        day: usize,
        /// Per-day log-space noise scale of the drift walk.
        daily_sigma: f64,
        /// Mean-reversion strength of the drift walk, `[0, 1]`.
        reversion: f64,
    },
    /// Logical-deadline accounting of a budgeted run, recorded in the
    /// finalize phase.
    Deadline {
        /// Budget the run was given (Table II logical units).
        budget_units: u64,
        /// Units actually charged across all phases.
        spent_units: u64,
        /// Whether any phase was truncated to fit the budget.
        truncated: bool,
    },
    /// A serve request was admitted (sequence numbers are the logical
    /// clock: admission order, never wall time).
    RequestStart {
        /// Logical sequence number of the request.
        seq: u64,
        /// Requested operation (`"configure"`, `"drill"`, …).
        op: String,
    },
    /// A serve request's response was committed to the output stream.
    RequestDone {
        /// Logical sequence number of the request.
        seq: u64,
        /// Response status (`"ok"`, `"deadline"`, `"shed"`, `"error"`).
        outcome: String,
        /// Whether the request was served in breaker-degraded
        /// (analytic-memory) mode.
        degraded: bool,
    },
    /// A serve request was rejected at admission by the bounded queue.
    RequestShed {
        /// Logical sequence number of the request.
        seq: u64,
        /// Queue occupancy observed at admission.
        queue_len: u64,
        /// Configured queue bound.
        limit: u64,
        /// Suggested logical backoff before retrying (cost-model units).
        retry_after_units: u64,
    },
    /// The estimator circuit breaker changed state.
    BreakerTransition {
        /// State left (`"closed"`, `"open"`, `"half_open"`).
        from: &'static str,
        /// State entered.
        to: &'static str,
        /// Consecutive estimator failures observed at the transition.
        failures: u64,
    },
    /// A named monotonic counter, flushed from [`crate::Metrics`].
    Counter {
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A named histogram summary, flushed from [`crate::Metrics`].
    Histogram {
        /// Histogram name.
        name: String,
        /// Values recorded.
        count: u64,
        /// Sum of recorded values.
        sum: f64,
        /// Smallest recorded value.
        min: f64,
        /// Largest recorded value.
        max: f64,
        /// Sparse power-of-two buckets as `(binary exponent, count)`.
        buckets: Vec<(i32, u64)>,
    },
    /// A hierarchical span opened (see [`crate::span`]). Nesting is
    /// purely structural: a span's parent is the nearest enclosing
    /// unclosed `span_open` in the stream, so the tree is recoverable
    /// from the JSONL alone and is as deterministic as the stream.
    SpanOpen {
        /// Phase name (stable identifier, aggregated across instances).
        name: &'static str,
    },
    /// The matching close of the innermost open span, carrying the
    /// span's logical cost (evals, iterations, bytes, …) and the number
    /// of events it enclosed.
    SpanClose {
        /// Phase name; must equal the innermost open span's.
        name: &'static str,
        /// Unit of `cost` ([`crate::span::CostUnit`] tag).
        unit: &'static str,
        /// Logical cost of the span in `unit`s — a domain counter, never
        /// wall time, so it is bit-stable across machines and threads.
        cost: u64,
        /// Events recorded between open and close (nested spans' own
        /// open/close lines included).
        events: usize,
    },
}

/// Fieldless discriminant of [`EventKind`] — the typed form of the
/// `kind` tag. Asserting on `EventTag` variants instead of `"sa_move"`
/// strings means a renamed event breaks at compile time, not silently
/// in a `count_kind` that starts returning zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum EventTag {
    RunStart,
    MemTrain,
    MemLoss,
    MemScreen,
    MemHeadroom,
    CacheStats,
    LatencyEstimate,
    SaMove,
    SaSummary,
    SaResult,
    PtExchange,
    Recommendation,
    Alternative,
    SimTask,
    FaultPlanApplied,
    ProfilerRetry,
    PairImputed,
    GpuExcluded,
    Fallback,
    Reconfiguration,
    DriftApplied,
    Deadline,
    RequestStart,
    RequestDone,
    RequestShed,
    BreakerTransition,
    Counter,
    Histogram,
    SpanOpen,
    SpanClose,
}

impl EventTag {
    /// The tag as written to JSONL (`"kind"` field).
    pub const fn name(self) -> &'static str {
        match self {
            EventTag::RunStart => "run_start",
            EventTag::MemTrain => "mem_train",
            EventTag::MemLoss => "mem_loss",
            EventTag::MemScreen => "mem_screen",
            EventTag::MemHeadroom => "mem_headroom",
            EventTag::CacheStats => "cache_stats",
            EventTag::LatencyEstimate => "latency_estimate",
            EventTag::SaMove => "sa_move",
            EventTag::SaSummary => "sa_summary",
            EventTag::SaResult => "sa_result",
            EventTag::PtExchange => "pt_exchange",
            EventTag::Recommendation => "recommendation",
            EventTag::Alternative => "alternative",
            EventTag::SimTask => "sim_task",
            EventTag::FaultPlanApplied => "fault_plan",
            EventTag::ProfilerRetry => "profiler_retry",
            EventTag::PairImputed => "pair_imputed",
            EventTag::GpuExcluded => "gpu_excluded",
            EventTag::Fallback => "fallback",
            EventTag::Reconfiguration => "reconfiguration",
            EventTag::DriftApplied => "drift_applied",
            EventTag::Deadline => "deadline",
            EventTag::RequestStart => "request_start",
            EventTag::RequestDone => "request_done",
            EventTag::RequestShed => "request_shed",
            EventTag::BreakerTransition => "breaker_transition",
            EventTag::Counter => "counter",
            EventTag::Histogram => "histogram",
            EventTag::SpanOpen => "span_open",
            EventTag::SpanClose => "span_close",
        }
    }
}

impl EventKind {
    /// The typed discriminant of this event.
    pub const fn tag(&self) -> EventTag {
        match self {
            EventKind::RunStart { .. } => EventTag::RunStart,
            EventKind::MemTrain { .. } => EventTag::MemTrain,
            EventKind::MemLoss { .. } => EventTag::MemLoss,
            EventKind::MemScreen { .. } => EventTag::MemScreen,
            EventKind::MemHeadroom { .. } => EventTag::MemHeadroom,
            EventKind::CacheStats { .. } => EventTag::CacheStats,
            EventKind::LatencyEstimate { .. } => EventTag::LatencyEstimate,
            EventKind::SaMove { .. } => EventTag::SaMove,
            EventKind::SaSummary { .. } => EventTag::SaSummary,
            EventKind::SaResult { .. } => EventTag::SaResult,
            EventKind::PtExchange { .. } => EventTag::PtExchange,
            EventKind::Recommendation { .. } => EventTag::Recommendation,
            EventKind::Alternative { .. } => EventTag::Alternative,
            EventKind::SimTask { .. } => EventTag::SimTask,
            EventKind::FaultPlanApplied { .. } => EventTag::FaultPlanApplied,
            EventKind::ProfilerRetry { .. } => EventTag::ProfilerRetry,
            EventKind::PairImputed { .. } => EventTag::PairImputed,
            EventKind::GpuExcluded { .. } => EventTag::GpuExcluded,
            EventKind::Fallback { .. } => EventTag::Fallback,
            EventKind::Reconfiguration { .. } => EventTag::Reconfiguration,
            EventKind::DriftApplied { .. } => EventTag::DriftApplied,
            EventKind::Deadline { .. } => EventTag::Deadline,
            EventKind::RequestStart { .. } => EventTag::RequestStart,
            EventKind::RequestDone { .. } => EventTag::RequestDone,
            EventKind::RequestShed { .. } => EventTag::RequestShed,
            EventKind::BreakerTransition { .. } => EventTag::BreakerTransition,
            EventKind::Counter { .. } => EventTag::Counter,
            EventKind::Histogram { .. } => EventTag::Histogram,
            EventKind::SpanOpen { .. } => EventTag::SpanOpen,
            EventKind::SpanClose { .. } => EventTag::SpanClose,
        }
    }

    /// The event's `kind` tag as written to JSONL.
    pub const fn kind(&self) -> &'static str {
        self.tag().name()
    }
}

/// Minimal JSON object writer with a fixed field order.
struct Obj<'a> {
    out: &'a mut String,
}

impl<'a> Obj<'a> {
    fn open(out: &'a mut String) -> Self {
        out.push('{');
        Self { out }
    }

    fn key(&mut self, name: &str) {
        if !self.out.ends_with('{') {
            self.out.push(',');
        }
        push_json_string(self.out, name);
        self.out.push(':');
    }

    fn uint(&mut self, name: &str, v: u64) {
        self.key(name);
        let _ = write!(self.out, "{v}");
    }

    fn float(&mut self, name: &str, v: f64) {
        self.key(name);
        push_f64(self.out, v);
    }

    fn boolean(&mut self, name: &str, v: bool) {
        self.key(name);
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn string(&mut self, name: &str, v: &str) {
        self.key(name);
        push_json_string(self.out, v);
    }

    fn close(self) {
        self.out.push('}');
    }
}

/// Shortest-round-trip float; non-finite values become `null` (JSON has
/// no NaN/Inf).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's `Display` for f64 is the shortest decimal string that
        // parses back to the same bits — a valid JSON number (it never
        // emits exponent notation for finite values in this range).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Appends this event as one JSON line (no trailing newline) with the
    /// given sequence number. With `strip_wall`, the wall-clock annotation
    /// is omitted even when recorded — the bit-comparable form.
    pub fn write_json(&self, seq: usize, strip_wall: bool, out: &mut String) {
        let mut o = Obj::open(out);
        o.uint("seq", seq as u64);
        o.string("kind", self.kind.kind());
        match &self.kind {
            EventKind::RunStart {
                schema,
                seed,
                gpus,
                global_batch,
            } => {
                o.uint("schema", u64::from(*schema));
                o.uint("seed", *seed);
                o.uint("gpus", *gpus as u64);
                o.uint("global_batch", *global_batch);
            }
            EventKind::MemTrain {
                samples,
                iterations,
                final_loss,
                cached,
            } => {
                o.uint("samples", *samples as u64);
                o.uint("iterations", *iterations as u64);
                o.float("final_loss", *final_loss);
                o.boolean("cached", *cached);
            }
            EventKind::MemLoss { iteration, loss } => {
                o.uint("iteration", *iteration as u64);
                o.float("loss", *loss);
            }
            EventKind::MemScreen {
                examined,
                accepted,
                rejected,
            } => {
                o.uint("examined", *examined as u64);
                o.uint("accepted", *accepted as u64);
                o.uint("rejected", *rejected as u64);
            }
            EventKind::MemHeadroom {
                predicted_bytes,
                limit_bytes,
                soft_margin,
                headroom_fraction,
            } => {
                o.uint("predicted_bytes", *predicted_bytes);
                o.uint("limit_bytes", *limit_bytes);
                o.float("soft_margin", *soft_margin);
                o.float("headroom_fraction", *headroom_fraction);
            }
            EventKind::CacheStats {
                hits,
                misses,
                corrupt,
            } => {
                o.uint("hits", *hits);
                o.uint("misses", *misses);
                o.uint("corrupt", *corrupt);
            }
            EventKind::LatencyEstimate {
                candidate,
                pp,
                tp,
                dp,
                micro_batch,
                n_microbatches,
                seconds,
                t_bubble,
                t_straggler,
                t_hidden,
                t_dp,
                straggler_stage,
            } => {
                o.uint("candidate", *candidate as u64);
                o.uint("pp", *pp as u64);
                o.uint("tp", *tp as u64);
                o.uint("dp", *dp as u64);
                o.uint("micro_batch", *micro_batch);
                o.uint("n_microbatches", *n_microbatches);
                o.float("seconds", *seconds);
                o.float("t_bubble", *t_bubble);
                o.float("t_straggler", *t_straggler);
                o.float("t_hidden", *t_hidden);
                o.float("t_dp", *t_dp);
                o.uint("straggler_stage", *straggler_stage as u64);
            }
            EventKind::SaMove {
                candidate,
                replica,
                iteration,
                kind,
                delta,
                temperature,
                accepted,
            } => {
                o.uint("candidate", *candidate as u64);
                o.uint("replica", *replica as u64);
                o.uint("iteration", *iteration as u64);
                o.string("move", kind);
                o.float("delta", *delta);
                o.float("temperature", *temperature);
                o.boolean("accepted", *accepted);
            }
            EventKind::SaSummary {
                candidate,
                replica,
                iteration,
                acceptance_rate,
                current_cost,
                best_cost,
                temperature,
            } => {
                o.uint("candidate", *candidate as u64);
                o.uint("replica", *replica as u64);
                o.uint("iteration", *iteration as u64);
                o.float("acceptance_rate", *acceptance_rate);
                o.float("current_cost", *current_cost);
                o.float("best_cost", *best_cost);
                o.float("temperature", *temperature);
            }
            EventKind::SaResult {
                candidate,
                replica,
                evaluations,
                accepted,
                improvements,
                initial_cost,
                best_cost,
            } => {
                o.uint("candidate", *candidate as u64);
                o.uint("replica", *replica as u64);
                o.uint("evaluations", *evaluations as u64);
                o.uint("accepted", *accepted as u64);
                o.uint("improvements", *improvements as u64);
                o.float("initial_cost", *initial_cost);
                o.float("best_cost", *best_cost);
            }
            EventKind::PtExchange {
                candidate,
                round,
                replica_lo,
                replica_hi,
                temp_lo,
                temp_hi,
                cost_lo,
                cost_hi,
                accepted,
            } => {
                o.uint("candidate", *candidate as u64);
                o.uint("round", *round as u64);
                o.uint("replica_lo", *replica_lo as u64);
                o.uint("replica_hi", *replica_hi as u64);
                o.float("temp_lo", *temp_lo);
                o.float("temp_hi", *temp_hi);
                o.float("cost_lo", *cost_lo);
                o.float("cost_hi", *cost_hi);
                o.boolean("accepted", *accepted);
            }
            EventKind::Recommendation {
                pp,
                tp,
                dp,
                micro_batch,
                n_microbatches,
                seconds,
                t_bubble,
                t_straggler,
                t_hidden,
                t_dp,
                t_optimizer,
                straggler_stage,
                slow_link_from,
                slow_link_to,
                slow_link_seconds,
            } => {
                o.uint("pp", *pp as u64);
                o.uint("tp", *tp as u64);
                o.uint("dp", *dp as u64);
                o.uint("micro_batch", *micro_batch);
                o.uint("n_microbatches", *n_microbatches);
                o.float("seconds", *seconds);
                o.float("t_bubble", *t_bubble);
                o.float("t_straggler", *t_straggler);
                o.float("t_hidden", *t_hidden);
                o.float("t_dp", *t_dp);
                o.float("t_optimizer", *t_optimizer);
                o.uint("straggler_stage", *straggler_stage as u64);
                match slow_link_from {
                    Some(g) => o.uint("slow_link_from", *g as u64),
                    None => {
                        o.key("slow_link_from");
                        o.out.push_str("null");
                    }
                }
                match slow_link_to {
                    Some(g) => o.uint("slow_link_to", *g as u64),
                    None => {
                        o.key("slow_link_to");
                        o.out.push_str("null");
                    }
                }
                match slow_link_seconds {
                    Some(s) => o.float("slow_link_seconds", *s),
                    None => {
                        o.key("slow_link_seconds");
                        o.out.push_str("null");
                    }
                }
            }
            EventKind::Alternative {
                rank,
                pp,
                tp,
                dp,
                micro_batch,
                seconds,
                delta_seconds,
            } => {
                o.uint("rank", *rank as u64);
                o.uint("pp", *pp as u64);
                o.uint("tp", *tp as u64);
                o.uint("dp", *dp as u64);
                o.uint("micro_batch", *micro_batch);
                o.float("seconds", *seconds);
                o.float("delta_seconds", *delta_seconds);
            }
            EventKind::SimTask {
                stage,
                kind,
                microbatch,
                start,
                finish,
            } => {
                o.uint("stage", *stage as u64);
                o.string("task", kind);
                o.uint("microbatch", *microbatch);
                o.float("start", *start);
                o.float("finish", *finish);
            }
            EventKind::FaultPlanApplied {
                plan_seed,
                degraded_links,
                straggler_gpus,
                failed_gpus,
                failed_nodes,
                corrupt_pairs,
                measurement_failure_rate,
                sample_loss_rate,
            } => {
                o.uint("plan_seed", *plan_seed);
                o.uint("degraded_links", *degraded_links as u64);
                o.uint("straggler_gpus", *straggler_gpus as u64);
                o.uint("failed_gpus", *failed_gpus as u64);
                o.uint("failed_nodes", *failed_nodes as u64);
                o.uint("corrupt_pairs", *corrupt_pairs as u64);
                o.float("measurement_failure_rate", *measurement_failure_rate);
                o.float("sample_loss_rate", *sample_loss_rate);
            }
            EventKind::ProfilerRetry {
                from,
                to,
                retries,
                corrupt_samples,
                recovered,
            } => {
                o.uint("from", *from as u64);
                o.uint("to", *to as u64);
                o.uint("retries", *retries as u64);
                o.uint("corrupt_samples", *corrupt_samples as u64);
                o.boolean("recovered", *recovered);
            }
            EventKind::PairImputed {
                from,
                to,
                gib_s,
                retries,
            } => {
                o.uint("from", *from as u64);
                o.uint("to", *to as u64);
                o.float("gib_s", *gib_s);
                o.uint("retries", *retries as u64);
            }
            EventKind::GpuExcluded { gpu, node } => {
                o.uint("gpu", *gpu as u64);
                o.uint("node", *node as u64);
            }
            EventKind::Fallback { component, reason } => {
                o.string("component", component);
                o.string("reason", reason);
            }
            EventKind::Reconfiguration {
                healthy_pp,
                healthy_tp,
                healthy_dp,
                healthy_micro,
                healthy_seconds,
                degraded_pp,
                degraded_tp,
                degraded_dp,
                degraded_micro,
                degraded_seconds,
                healthy_gpus,
                surviving_gpus,
            } => {
                o.uint("healthy_pp", *healthy_pp as u64);
                o.uint("healthy_tp", *healthy_tp as u64);
                o.uint("healthy_dp", *healthy_dp as u64);
                o.uint("healthy_micro", *healthy_micro);
                o.float("healthy_seconds", *healthy_seconds);
                o.uint("degraded_pp", *degraded_pp as u64);
                o.uint("degraded_tp", *degraded_tp as u64);
                o.uint("degraded_dp", *degraded_dp as u64);
                o.uint("degraded_micro", *degraded_micro);
                o.float("degraded_seconds", *degraded_seconds);
                o.uint("healthy_gpus", *healthy_gpus as u64);
                o.uint("surviving_gpus", *surviving_gpus as u64);
            }
            EventKind::DriftApplied {
                day,
                daily_sigma,
                reversion,
            } => {
                o.uint("day", *day as u64);
                o.float("daily_sigma", *daily_sigma);
                o.float("reversion", *reversion);
            }
            EventKind::Deadline {
                budget_units,
                spent_units,
                truncated,
            } => {
                o.uint("budget_units", *budget_units);
                o.uint("spent_units", *spent_units);
                o.boolean("truncated", *truncated);
            }
            EventKind::RequestStart { seq: rseq, op } => {
                o.uint("request", *rseq);
                o.string("op", op);
            }
            EventKind::RequestDone {
                seq: rseq,
                outcome,
                degraded,
            } => {
                o.uint("request", *rseq);
                o.string("outcome", outcome);
                o.boolean("degraded", *degraded);
            }
            EventKind::RequestShed {
                seq: rseq,
                queue_len,
                limit,
                retry_after_units,
            } => {
                o.uint("request", *rseq);
                o.uint("queue_len", *queue_len);
                o.uint("limit", *limit);
                o.uint("retry_after_units", *retry_after_units);
            }
            EventKind::BreakerTransition { from, to, failures } => {
                o.string("from", from);
                o.string("to", to);
                o.uint("failures", *failures);
            }
            EventKind::Counter { name, value } => {
                o.string("name", name);
                o.uint("value", *value);
            }
            EventKind::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => {
                o.string("name", name);
                o.uint("count", *count);
                o.float("sum", *sum);
                o.float("min", *min);
                o.float("max", *max);
                o.key("buckets");
                o.out.push('[');
                for (i, (exp, n)) in buckets.iter().enumerate() {
                    if i > 0 {
                        o.out.push(',');
                    }
                    let _ = write!(o.out, "[{exp},{n}]");
                }
                o.out.push(']');
            }
            EventKind::SpanOpen { name } => {
                o.string("name", name);
            }
            EventKind::SpanClose {
                name,
                unit,
                cost,
                events,
            } => {
                o.string("name", name);
                o.string("unit", unit);
                o.uint("cost", *cost);
                o.uint("events", *events as u64);
            }
        }
        if !strip_wall {
            if let Some(w) = self.wall_ms {
                o.float("wall_ms", w);
            }
        }
        o.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_has_fixed_shape() {
        let e = Event {
            wall_ms: None,
            kind: EventKind::MemLoss {
                iteration: 400,
                loss: 0.125,
            },
        };
        let mut out = String::new();
        e.write_json(7, false, &mut out);
        assert_eq!(
            out,
            r#"{"seq":7,"kind":"mem_loss","iteration":400,"loss":0.125}"#
        );
    }

    #[test]
    fn wall_clock_is_a_strippable_suffix() {
        let e = Event {
            wall_ms: Some(1.5),
            kind: EventKind::MemLoss {
                iteration: 1,
                loss: 2.0,
            },
        };
        let mut with = String::new();
        e.write_json(0, false, &mut with);
        let mut without = String::new();
        e.write_json(0, true, &mut without);
        assert!(with.ends_with(r#","wall_ms":1.5}"#));
        assert_eq!(with.replace(r#","wall_ms":1.5"#, ""), without);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event {
            wall_ms: None,
            kind: EventKind::MemLoss {
                iteration: 0,
                loss: f64::NAN,
            },
        };
        let mut out = String::new();
        e.write_json(0, false, &mut out);
        assert!(out.contains(r#""loss":null"#));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn every_kind_has_a_tag() {
        let kinds = [
            EventKind::RunStart {
                schema: 1,
                seed: 0,
                gpus: 16,
                global_batch: 64,
            }
            .kind(),
            EventKind::CacheStats {
                hits: 0,
                misses: 1,
                corrupt: 0,
            }
            .kind(),
            EventKind::SimTask {
                stage: 0,
                kind: "F",
                microbatch: 0,
                start: 0.0,
                finish: 1.0,
            }
            .kind(),
        ];
        assert_eq!(kinds, ["run_start", "cache_stats", "sim_task"]);
    }

    #[test]
    fn span_events_serialize_with_fixed_shape() {
        let e = Event {
            wall_ms: None,
            kind: EventKind::SpanOpen { name: "anneal" },
        };
        let mut out = String::new();
        e.write_json(7, false, &mut out);
        assert_eq!(out, r#"{"seq":7,"kind":"span_open","name":"anneal"}"#);

        let e = Event {
            wall_ms: Some(1.5),
            kind: EventKind::SpanClose {
                name: "anneal",
                unit: "evals",
                cost: 4800,
                events: 12,
            },
        };
        let mut out = String::new();
        e.write_json(8, false, &mut out);
        assert_eq!(
            out,
            r#"{"seq":8,"kind":"span_close","name":"anneal","unit":"evals","cost":4800,"events":12,"wall_ms":1.5}"#
        );
        let mut stripped = String::new();
        e.write_json(8, true, &mut stripped);
        assert_eq!(
            stripped,
            r#"{"seq":8,"kind":"span_close","name":"anneal","unit":"evals","cost":4800,"events":12}"#
        );
    }

    #[test]
    fn tags_round_trip_through_names() {
        let tags = [
            EventTag::RunStart,
            EventTag::SaMove,
            EventTag::PtExchange,
            EventTag::Counter,
            EventTag::Histogram,
            EventTag::SpanOpen,
            EventTag::SpanClose,
        ];
        let names = [
            "run_start",
            "sa_move",
            "pt_exchange",
            "counter",
            "histogram",
            "span_open",
            "span_close",
        ];
        for (tag, name) in tags.iter().zip(names) {
            assert_eq!(tag.name(), name);
        }
        assert_eq!(EventKind::SpanOpen { name: "x" }.tag(), EventTag::SpanOpen);
        assert_eq!(
            EventKind::SpanOpen { name: "x" }.kind(),
            EventTag::SpanOpen.name()
        );
    }

    #[test]
    fn degradation_events_serialize_with_fixed_shape() {
        let e = Event {
            wall_ms: None,
            kind: EventKind::ProfilerRetry {
                from: 0,
                to: 5,
                retries: 1,
                corrupt_samples: 1,
                recovered: true,
            },
        };
        let mut out = String::new();
        e.write_json(3, false, &mut out);
        assert_eq!(
            out,
            r#"{"seq":3,"kind":"profiler_retry","from":0,"to":5,"retries":1,"corrupt_samples":1,"recovered":true}"#
        );
        let e = Event {
            wall_ms: None,
            kind: EventKind::Fallback {
                component: "memory_estimator".into(),
                reason: "too few samples".into(),
            },
        };
        let mut out = String::new();
        e.write_json(4, false, &mut out);
        assert_eq!(
            out,
            r#"{"seq":4,"kind":"fallback","component":"memory_estimator","reason":"too few samples"}"#
        );
        assert_eq!(
            EventKind::GpuExcluded { gpu: 9, node: 1 }.kind(),
            "gpu_excluded"
        );
        assert_eq!(
            EventKind::PairImputed {
                from: 0,
                to: 1,
                gib_s: 11.6,
                retries: 3
            }
            .kind(),
            "pair_imputed"
        );
    }

    #[test]
    fn serve_events_serialize_with_fixed_shape() {
        let cases: [(EventKind, &str); 6] = [
            (
                EventKind::DriftApplied {
                    day: 3,
                    daily_sigma: 0.03,
                    reversion: 0.25,
                },
                r#"{"seq":0,"kind":"drift_applied","day":3,"daily_sigma":0.03,"reversion":0.25}"#,
            ),
            (
                EventKind::Deadline {
                    budget_units: 5000,
                    spent_units: 4321,
                    truncated: true,
                },
                r#"{"seq":0,"kind":"deadline","budget_units":5000,"spent_units":4321,"truncated":true}"#,
            ),
            (
                EventKind::RequestStart {
                    seq: 7,
                    op: "configure".into(),
                },
                r#"{"seq":0,"kind":"request_start","request":7,"op":"configure"}"#,
            ),
            (
                EventKind::RequestDone {
                    seq: 7,
                    outcome: "ok".into(),
                    degraded: false,
                },
                r#"{"seq":0,"kind":"request_done","request":7,"outcome":"ok","degraded":false}"#,
            ),
            (
                EventKind::RequestShed {
                    seq: 9,
                    queue_len: 4,
                    limit: 4,
                    retry_after_units: 2048,
                },
                r#"{"seq":0,"kind":"request_shed","request":9,"queue_len":4,"limit":4,"retry_after_units":2048}"#,
            ),
            (
                EventKind::BreakerTransition {
                    from: "closed",
                    to: "open",
                    failures: 3,
                },
                r#"{"seq":0,"kind":"breaker_transition","from":"closed","to":"open","failures":3}"#,
            ),
        ];
        for (kind, expect) in cases {
            let e = Event {
                wall_ms: None,
                kind,
            };
            let mut out = String::new();
            e.write_json(0, false, &mut out);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut out = String::new();
        push_f64(&mut out, 0.1 + 0.2);
        assert_eq!(out, "0.30000000000000004");
        let mut out = String::new();
        push_f64(&mut out, 3.0);
        assert_eq!(out, "3");
    }
}
