//! The event sink: an append-only, deterministically mergeable trace.
//!
//! A [`Trace`] is just a `Vec<Event>` plus the recording policy
//! ([`TraceConfig`]). Parallel stages record into [`Trace::child`]ren and
//! the orchestrator [`Trace::absorb`]s them back **in work-item order**,
//! so the final stream never depends on thread scheduling. Sequence
//! numbers are assigned at serialization time as the JSONL line index —
//! events carry only logical coordinates of their own domain.

use crate::event::{Event, EventKind, EventTag};
use crate::span::{CostUnit, SpanGuard};
use std::time::Instant;

/// Recording policy for a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Annotate events with wall-clock milliseconds since trace creation.
    /// Off by default: wall time is the one non-deterministic field, and
    /// leaving it off makes traces byte-comparable with zero
    /// post-processing.
    pub wall_clock: bool,
    /// Record every Nth simulated-annealing move as an `sa_move` event
    /// (`1` = every move, `0` = none). Full move logs are large — an SA
    /// pass makes tens of thousands of decisions — so CLI runs default to
    /// a sample.
    pub sa_move_sample_every: usize,
    /// Emit a rolling `sa_summary` every N annealer iterations
    /// (`0` = none).
    pub sa_summary_every: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            wall_clock: false,
            sa_move_sample_every: 64,
            sa_summary_every: 1024,
        }
    }
}

impl TraceConfig {
    /// Record everything: every SA move, summaries every 256 iterations.
    /// Used by tests that assert full coverage.
    pub fn full() -> Self {
        Self {
            wall_clock: false,
            sa_move_sample_every: 1,
            sa_summary_every: 256,
        }
    }
}

/// An append-only event sink.
#[derive(Debug)]
pub struct Trace {
    config: TraceConfig,
    epoch: Instant,
    events: Vec<Event>,
    open_spans: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Trace {
    /// An empty trace with the given recording policy.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            // pipette-lint: allow(D1) -- the epoch anchors opt-in wall_ms extras only; replay ordering uses logical ticks
            epoch: Instant::now(),
            events: Vec::new(),
            open_spans: 0,
        }
    }

    /// The recording policy.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Appends one event, stamping wall time if the policy asks for it.
    pub fn push(&mut self, kind: EventKind) {
        let wall_ms = self
            .config
            .wall_clock
            .then(|| self.epoch.elapsed().as_secs_f64() * 1e3);
        self.events.push(Event { wall_ms, kind });
    }

    /// An empty trace sharing this trace's policy **and epoch**, for a
    /// parallel worker to record into. Absorb children in work-item order
    /// (not completion order) to keep the merged stream deterministic.
    pub fn child(&self) -> Trace {
        Trace {
            config: self.config,
            epoch: self.epoch,
            events: Vec::new(),
            open_spans: 0,
        }
    }

    /// Appends all of `child`'s events after this trace's own. A child
    /// must have all its spans closed: its events nest under whatever
    /// span is open here at absorb time, so an unbalanced child would
    /// corrupt the bracketing of the merged stream.
    pub fn absorb(&mut self, child: Trace) {
        debug_assert_eq!(
            child.open_spans, 0,
            "absorbing a child trace with unclosed spans"
        );
        self.events.extend(child.events);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as JSON Lines (one event per line, trailing
    /// newline). `seq` is the line index.
    pub fn to_jsonl(&self) -> String {
        self.render(false)
    }

    /// [`Self::to_jsonl`] with wall-clock annotations stripped — the
    /// bit-comparable form used by determinism tests.
    pub fn to_jsonl_stripped(&self) -> String {
        self.render(true)
    }

    fn render(&self, strip_wall: bool) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for (seq, event) in self.events.iter().enumerate() {
            event.write_json(seq, strip_wall, &mut out);
            out.push('\n');
        }
        out
    }

    /// Writes [`Self::to_jsonl`] to `path`, creating parent directories.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// How many recorded events have the given `kind` tag.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind.kind() == kind).count()
    }

    /// How many recorded events have the given typed discriminant.
    /// Prefer this over [`Self::count_kind`] in Rust call sites: a
    /// renamed event then fails to compile instead of silently counting
    /// zero.
    pub fn count_tag(&self, tag: EventTag) -> usize {
        self.events.iter().filter(|e| e.kind.tag() == tag).count()
    }

    /// Opens a hierarchical span (emits a `span_open` event) and returns
    /// the guard that [`Self::close_span`] consumes. Spans opened on a
    /// trace must be closed on the *same* trace in LIFO order; child
    /// traces carry their own independent stack (see [`Self::absorb`]).
    #[must_use = "a span guard must be passed back to close_span, or the trace is left unbalanced"]
    pub fn open_span(&mut self, name: &'static str) -> SpanGuard {
        self.push(EventKind::SpanOpen { name });
        self.open_spans += 1;
        SpanGuard::new(name, self.events.len())
    }

    /// Closes the span opened by `guard` (emits a `span_close` event),
    /// recording its logical `cost` in `unit`s and the number of events
    /// it enclosed.
    pub fn close_span(&mut self, guard: SpanGuard, unit: CostUnit, cost: u64) {
        let events = self.events.len().saturating_sub(guard.open_len());
        debug_assert!(self.open_spans > 0, "close_span without a matching open");
        self.open_spans = self.open_spans.saturating_sub(1);
        self.push(EventKind::SpanClose {
            name: guard.name(),
            unit: unit.name(),
            cost,
            events,
        });
    }

    /// Number of spans opened on this trace and not yet closed.
    pub fn open_span_count(&self) -> usize {
        self.open_spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss(iteration: usize) -> EventKind {
        EventKind::MemLoss {
            iteration,
            loss: iteration as f64 * 0.5,
        }
    }

    #[test]
    fn absorb_preserves_work_item_order() {
        let mut root = Trace::default();
        root.push(loss(0));
        let mut a = root.child();
        a.push(loss(1));
        let mut b = root.child();
        b.push(loss(2));
        // Absorb in item order regardless of which finished first.
        root.absorb(a);
        root.absorb(b);
        let iters: Vec<usize> = root
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::MemLoss { iteration, .. } => iteration,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(iters, [0, 1, 2]);
    }

    #[test]
    fn seq_is_line_index() {
        let mut t = Trace::default();
        t.push(loss(10));
        t.push(loss(20));
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"seq":0,"#));
        assert!(lines[1].starts_with(r#"{"seq":1,"#));
    }

    #[test]
    fn wall_clock_off_means_stripped_equals_plain() {
        let mut t = Trace::new(TraceConfig::default());
        assert!(!t.config().wall_clock);
        t.push(loss(1));
        assert_eq!(t.to_jsonl(), t.to_jsonl_stripped());
        assert!(!t.to_jsonl().contains("wall_ms"));
    }

    #[test]
    fn wall_clock_on_is_annotation_only() {
        let mut t = Trace::new(TraceConfig {
            wall_clock: true,
            ..TraceConfig::default()
        });
        t.push(loss(1));
        assert!(t.to_jsonl().contains("wall_ms"));
        assert!(!t.to_jsonl_stripped().contains("wall_ms"));

        let mut plain = Trace::new(TraceConfig::default());
        plain.push(loss(1));
        assert_eq!(t.to_jsonl_stripped(), plain.to_jsonl());
    }

    #[test]
    fn count_kind_counts_tags() {
        let mut t = Trace::default();
        t.push(loss(0));
        t.push(loss(1));
        t.push(EventKind::Counter {
            name: "x".into(),
            value: 3,
        });
        assert_eq!(t.count_kind("mem_loss"), 2);
        assert_eq!(t.count_kind("counter"), 1);
        assert_eq!(t.count_kind("sa_move"), 0);
    }
}
