//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each target reports, via criterion's timing *and* a printed summary on
//! first run, how a design variant changes the outcome:
//!
//! * `ablation_sa_moves`      — migration vs +swap vs +reverse move sets;
//! * `ablation_latency_model` — ranking quality of Eq. 1 vs Eqs. 3–6;
//! * `ablation_profiled_bw`   — profiled vs datasheet bandwidths inside
//!   Pipette's own estimator;
//! * `ablation_soft_margin`   — memory-margin sweep: OOM recall vs
//!   headroom wasted.

use criterion::{criterion_group, criterion_main, Criterion};
use pipette::latency::{AmpLatencyModel, Eq1Flavor, PipetteLatencyModel};
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette::memory::{collect_samples, MemoryEstimator, MemoryEstimatorConfig, SampleSpec};
use pipette_cluster::{presets, Cluster, ProfiledBandwidth};
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, ComputeProfiler, IterationSim, Mapping, MemorySim};
use std::hint::black_box;

fn cluster() -> Cluster {
    presets::mid_range(4).build(77)
}

fn gpt() -> GptConfig {
    GptConfig::gpt_1_1b()
}

/// SA move-set ablation: best cost achieved with a fixed budget, on an
/// instance large enough that the move set matters (8 nodes, tp = 4 →
/// 16 movable blocks).
fn ablation_sa_moves(c: &mut Criterion) {
    let cluster = presets::mid_range(8).build(77);
    let gpt = gpt();
    let cfg = ParallelConfig::new(2, 4, 8);
    let plan = MicrobatchPlan::new(32, 1).unwrap();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let identity = Mapping::identity(cfg, *cluster.topology());

    let variants: [(&str, bool, bool, bool); 3] = [
        ("migration_only", true, false, false),
        ("migration_swap", true, true, false),
        ("full_move_set", true, true, true),
    ];
    let mut g = c.benchmark_group("ablation_sa_moves");
    g.sample_size(10);
    for (name, mig, swap, rev) in variants {
        // Report the achieved cost once, outside the timed loop.
        let sa = Annealer::new(AnnealerConfig {
            iterations: 4_000,
            seed: 1,
            enable_migration: mig,
            enable_swap: swap,
            enable_reverse: rev,
            ..Default::default()
        });
        let (_, cost, stats) = sa.anneal(&identity, |m| model.estimate(cfg, m, plan, &compute));
        println!(
            "ablation_sa_moves/{name}: best {:.4}s ({:.2}% improvement)",
            cost,
            stats.improvement() * 100.0
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let (_, cost, _) = sa.anneal(&identity, |m| model.estimate(cfg, m, plan, &compute));
                black_box(cost)
            })
        });
    }
    g.finish();
}

/// Spearman-style ranking-quality ablation: how often does each latency
/// model order a random pair of configurations the same way as the
/// simulator?
fn ablation_latency_model(c: &mut Criterion) {
    let cluster = cluster();
    let gpt = gpt();
    let runner = ClusterRun::new(&cluster, &gpt);
    let gpu = cluster.gpu().clone();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let profiler = ComputeProfiler::default();
    let topo = cluster.topology();

    // Collect (truth, eq1, pipette) for every runnable config.
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for cfg in ParallelConfig::enumerate(topo.num_gpus(), 8, gpt.n_layers) {
        let Ok(mini) = BatchConfig::new(128).minibatch(cfg.dp) else {
            continue;
        };
        for plan in MicrobatchPlan::enumerate(mini, 4) {
            if runner.peak_memory(cfg, plan).peak_bytes > cluster.gpu().memory_bytes {
                continue;
            }
            let mapping = Mapping::identity(cfg, *topo);
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let compute = profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 5);
            let eq1 = AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt)
                .with_flavor(Eq1Flavor::Scalar)
                .estimate(cfg, plan, &compute);
            let ppt =
                PipetteLatencyModel::new(&profiled, &gpt).estimate(cfg, &mapping, plan, &compute);
            rows.push((truth, eq1, ppt));
        }
    }
    let concordance = |pick: fn(&(f64, f64, f64)) -> f64| {
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                total += 1;
                let t = rows[i].0 < rows[j].0;
                if (pick(&rows[i]) < pick(&rows[j])) == t {
                    agree += 1;
                }
            }
        }
        agree as f64 / total.max(1) as f64
    };
    println!(
        "ablation_latency_model: pairwise ranking concordance with the simulator — Eq.1 {:.3}, Pipette {:.3} ({} configs)",
        concordance(|r| r.1),
        concordance(|r| r.2),
        rows.len()
    );

    let mut g = c.benchmark_group("ablation_latency_model");
    g.sample_size(10);
    g.bench_function("pairwise_concordance", |b| {
        b.iter(|| black_box(concordance(|r| r.2)))
    });
    g.finish();
}

/// Profiled vs datasheet bandwidths inside Pipette's estimator: the MAPE
/// penalty for skipping the profiling step.
fn ablation_profiled_bw(c: &mut Criterion) {
    let cluster = cluster();
    let gpt = gpt();
    let runner = ClusterRun::new(&cluster, &gpt);
    let gpu = cluster.gpu().clone();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let nominal = ProfiledBandwidth::exact(pipette_cluster::BandwidthMatrix::homogeneous(
        *cluster.topology(),
        cluster.bandwidth().intra_spec(),
        cluster.bandwidth().inter_spec(),
    ));
    let profiler = ComputeProfiler::default();
    let topo = cluster.topology();

    let mut errs_profiled = Vec::new();
    let mut errs_nominal = Vec::new();
    for cfg in ParallelConfig::enumerate(topo.num_gpus(), 8, gpt.n_layers) {
        let Ok(mini) = BatchConfig::new(128).minibatch(cfg.dp) else {
            continue;
        };
        for plan in MicrobatchPlan::enumerate(mini, 2) {
            if runner.peak_memory(cfg, plan).peak_bytes > cluster.gpu().memory_bytes {
                continue;
            }
            let mapping = Mapping::identity(cfg, *topo);
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let compute = profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 5);
            let with =
                PipetteLatencyModel::new(&profiled, &gpt).estimate(cfg, &mapping, plan, &compute);
            let without =
                PipetteLatencyModel::new(&nominal, &gpt).estimate(cfg, &mapping, plan, &compute);
            errs_profiled.push((with - truth).abs() / truth);
            errs_nominal.push((without - truth).abs() / truth);
        }
    }
    let mape = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "ablation_profiled_bw: MAPE with profiled links {:.3}, with datasheet links {:.3}",
        mape(&errs_profiled),
        mape(&errs_nominal)
    );

    let mut g = c.benchmark_group("ablation_profiled_bw");
    g.sample_size(10);
    g.bench_function("estimator_over_runnable_set", |b| {
        b.iter(|| black_box(mape(&errs_profiled)))
    });
    g.finish();
}

/// Soft-margin sweep: fraction of truly runnable configurations the
/// estimator rejects (wasted headroom) vs OOM configs it lets through.
fn ablation_soft_margin(c: &mut Criterion) {
    let truth = MemorySim::new(9);
    // Two model scales and several batch shapes so peak memory densely
    // covers both sides of the 16 GiB cliff.
    let spec = SampleSpec {
        gpu_counts: vec![8, 16, 32],
        gpus_per_node: 8,
        models: vec![
            GptConfig::new(16, 1536, 16, 2048, 51200),
            GptConfig::new(24, 2048, 16, 2048, 51200),
        ],
        global_batches: vec![64, 128, 256],
        max_micro: 8,
    };
    let samples = collect_samples(&spec, &truth);
    let est = MemoryEstimator::train(
        &samples,
        &MemoryEstimatorConfig {
            train: pipette_mlp::TrainConfig {
                iterations: 3_000,
                learning_rate: 2e-3,
                batch_size: 64,
                record_every: 500,
                seed: 0,
            },
            hidden: 48,
            depth: 3,
            soft_margin: 0.0,
            seed: 1,
        },
    );
    let limit = 16u64 << 30;
    for margin in [0.0, 0.04, 0.08, 0.16] {
        let e = est.clone().with_soft_margin(margin);
        let mut false_accept = 0usize;
        let mut false_reject = 0usize;
        let mut runnable = 0usize;
        for s in &samples {
            let accepted = e.is_runnable(&s.features, limit);
            let fits = s.peak_bytes <= limit;
            runnable += usize::from(fits);
            false_accept += usize::from(accepted && !fits);
            false_reject += usize::from(!accepted && fits);
        }
        println!(
            "ablation_soft_margin/{margin:.2}: {false_accept} OOM accepted, {false_reject}/{runnable} runnable rejected"
        );
    }
    let mut g = c.benchmark_group("ablation_soft_margin");
    g.sample_size(10);
    g.bench_function("margin_classification", |b| {
        b.iter(|| {
            let e = est.clone().with_soft_margin(0.04);
            let n: usize = samples
                .iter()
                .filter(|s| e.is_runnable(&s.features, limit))
                .count();
            black_box(n)
        })
    });
    g.finish();
}

/// Schedule/feature ablation: iteration time and peak memory of one fixed
/// configuration under 1F1B, GPipe, interleaved 1F1B, selective
/// recomputation, full recomputation, and ZeRO-1.
fn ablation_training_features(c: &mut Criterion) {
    use pipette_sim::{ActivationMode, IterationSim, MemorySim, PipelineSchedule, TrainingOptions};
    let cluster = cluster();
    let gpt = gpt();
    let cfg = ParallelConfig::new(2, 8, 2);
    let plan = MicrobatchPlan::new(64, 1).unwrap();
    let mapping = Mapping::identity(cfg, *cluster.topology());
    let gpu = cluster.gpu().clone();

    let variants: Vec<(&str, TrainingOptions)> = vec![
        ("one_f_one_b", TrainingOptions::new()),
        (
            "gpipe",
            TrainingOptions::new().with_schedule(PipelineSchedule::GPipe),
        ),
        (
            "interleaved_v2",
            TrainingOptions::new().with_interleaving(2),
        ),
        (
            "selective_recompute",
            TrainingOptions::new().with_activation(ActivationMode::Selective),
        ),
        (
            "full_recompute",
            TrainingOptions::new().with_activation(ActivationMode::FullRecompute),
        ),
        ("zero1", TrainingOptions::new().with_zero1(true)),
    ];
    let mut g = c.benchmark_group("ablation_training_features");
    g.sample_size(10);
    for (name, options) in variants {
        let time = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(options)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let mem = MemorySim::new(1)
            .with_options(options)
            .report(&gpt, cfg, plan)
            .peak_bytes;
        println!(
            "ablation_training_features/{name}: {time:.3} s/iter, {:.2} GiB peak",
            mem as f64 / (1u64 << 30) as f64
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                        .with_options(options)
                        .simulate(cfg, &mapping, plan)
                        .total_seconds,
                )
            })
        });
    }
    g.finish();
}

/// Mapping-search strategy ablation: SA vs random search vs greedy swap
/// descent at comparable budgets.
fn ablation_search_strategies(c: &mut Criterion) {
    use pipette::mapping::{greedy_swap, random_search, Annealer, AnnealerConfig};
    let cluster = presets::mid_range(8).build(77);
    let gpt = gpt();
    let cfg = ParallelConfig::new(2, 4, 8);
    let plan = MicrobatchPlan::new(32, 1).unwrap();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let identity = Mapping::identity(cfg, *cluster.topology());
    let objective = |m: &Mapping| model.estimate(cfg, m, plan, &compute);

    let budget = 3_000;
    let sa = Annealer::new(AnnealerConfig {
        iterations: budget,
        seed: 1,
        ..Default::default()
    });
    let (_, sa_cost, _) = sa.anneal(&identity, objective);
    let (_, rand_cost) = random_search(&identity, objective, budget, 1);
    let (_, greedy_cost) = greedy_swap(&identity, objective, 12);
    println!(
        "ablation_search_strategies: identity {:.4}s, SA {sa_cost:.4}s, random {rand_cost:.4}s, greedy {greedy_cost:.4}s",
        objective(&identity)
    );

    let mut g = c.benchmark_group("ablation_search_strategies");
    g.sample_size(10);
    g.bench_function("simulated_annealing", |b| {
        b.iter(|| black_box(sa.anneal(&identity, objective).1))
    });
    g.bench_function("random_search", |b| {
        b.iter(|| black_box(random_search(&identity, objective, budget, 1).1))
    });
    g.bench_function("greedy_swap", |b| {
        b.iter(|| black_box(greedy_swap(&identity, objective, 12).1))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_sa_moves,
    ablation_latency_model,
    ablation_profiled_bw,
    ablation_soft_margin,
    ablation_training_features,
    ablation_search_strategies
);
criterion_main!(ablations);
