//! Micro-benchmarks of the hot code paths: the communication models, the
//! pipeline dependency engine, the latency estimator (the SA inner loop),
//! the annealer itself, and MLP training/inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette_cluster::{presets, GpuId};
use pipette_mlp::{Matrix, Mlp, TrainConfig};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{
    engine::ChainSpec, CommModel, ComputeProfiler, IterationSim, Mapping, MemorySim,
    PipelineSchedule,
};
use std::hint::black_box;

fn bench_comm(c: &mut Criterion) {
    let cluster = presets::mid_range(16).build(3);
    let comm = CommModel::new(cluster.bandwidth());
    let group: Vec<GpuId> = (0..128).step_by(8).map(GpuId).collect();
    let mut g = c.benchmark_group("comm_model");
    g.bench_function("hierarchical_allreduce_16_nodes", |b| {
        b.iter(|| black_box(comm.hierarchical_allreduce(black_box(&group), 1 << 30)))
    });
    let small: Vec<GpuId> = (0..8).map(GpuId).collect();
    g.bench_function("ring_allreduce_8_intra", |b| {
        b.iter(|| black_box(comm.ring_allreduce(black_box(&small), 1 << 24)))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_engine");
    for (pp, n_mb) in [(4usize, 64u64), (8, 128), (16, 256)] {
        let spec = ChainSpec {
            pp,
            n_mb,
            schedule: PipelineSchedule::OneFOneB,
            fwd_time: vec![0.01; pp],
            bwd_time: vec![0.02; pp],
            fwd_comm: vec![0.001; pp - 1],
            bwd_comm: vec![0.001; pp - 1],
        };
        g.bench_with_input(
            BenchmarkId::new("one_f_one_b", format!("pp{pp}_mb{n_mb}")),
            &spec,
            |b, spec| b.iter(|| black_box(spec.simulate())),
        );
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    // The SA objective: one latency estimate on a full 128-GPU cluster.
    let cluster = presets::mid_range(16).build(3);
    let gpt = GptConfig::gpt_3_1b();
    let cfg = ParallelConfig::new(2, 8, 8);
    let plan = MicrobatchPlan::new(64, 2).unwrap();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let mapping = Mapping::identity(cfg, *cluster.topology());
    c.bench_function("latency_estimate_128_gpus", |b| {
        b.iter(|| black_box(model.estimate(cfg, black_box(&mapping), plan, &compute)))
    });

    // Ground truth for scale comparison.
    c.bench_function("simulator_iteration_128_gpus", |b| {
        b.iter(|| {
            black_box(
                IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                    .simulate(cfg, &mapping, plan)
                    .total_seconds,
            )
        })
    });
}

fn bench_annealer(c: &mut Criterion) {
    let cluster = presets::mid_range(8).build(3);
    let gpt = GptConfig::gpt_1_1b();
    let cfg = ParallelConfig::new(2, 8, 4);
    let plan = MicrobatchPlan::new(64, 2).unwrap();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let identity = Mapping::identity(cfg, *cluster.topology());
    let sa = Annealer::new(AnnealerConfig {
        iterations: 1_000,
        seed: 2,
        ..Default::default()
    });
    let mut g = c.benchmark_group("annealer");
    g.sample_size(10);
    g.bench_function("sa_1000_iterations_64_gpus", |b| {
        b.iter(|| {
            let (_, cost, _) = sa.anneal(&identity, |m| model.estimate(cfg, m, plan, &compute));
            black_box(cost)
        })
    });
    g.finish();
}

fn bench_memsim(c: &mut Criterion) {
    let gpt = GptConfig::gpt_11_1b();
    let sim = MemorySim::new(7);
    let cfg = ParallelConfig::new(8, 8, 2);
    let plan = MicrobatchPlan::new(256, 2).unwrap();
    c.bench_function("memory_report_8_stages", |b| {
        b.iter(|| black_box(sim.report(&gpt, cfg, plan)))
    });
}

fn bench_mlp(c: &mut Criterion) {
    let rows: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..10)
                .map(|j| ((i * 7 + j * 13) % 100) as f64 / 10.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&refs);
    let y_data: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() / 10.0).collect();
    let y = Matrix::from_vec(y_data.len(), 1, y_data);

    let mut g = c.benchmark_group("mlp");
    g.sample_size(10);
    g.bench_function("train_500_iters_paper_width", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[10, 200, 200, 1], 3);
            let report = mlp.fit(
                &x,
                &y,
                &TrainConfig {
                    iterations: 500,
                    ..TrainConfig::default()
                },
            );
            black_box(report.final_loss)
        })
    });
    let mlp = Mlp::paper_architecture(10, 3);
    g.bench_function("predict_batch_256", |b| {
        b.iter(|| black_box(mlp.predict(&x)))
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_comm,
    bench_engine,
    bench_estimator,
    bench_annealer,
    bench_memsim,
    bench_mlp
);
criterion_main!(micro);
