//! SA objective throughput: full re-estimation vs the incremental
//! objective, on the paper's 128-GPU mid-range cluster.
//!
//! The interesting number is evaluations per second — criterion reports
//! time per evaluation, so the speedup is the ratio of the two medians.
//! `perf_baseline` (in `src/bin`) measures the same quantities without
//! criterion and writes them to `BENCH_configurator.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig, IncrementalObjective, Move, Objective};
use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ComputeProfiler, Mapping};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

struct Setup {
    cluster: pipette_cluster::Cluster,
    gpt: GptConfig,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
}

fn setup() -> Setup {
    Setup {
        // 16 nodes × 8 GPUs — the paper's 128-GPU scale.
        cluster: presets::mid_range(16).build(3),
        gpt: GptConfig::gpt_3_1b(),
        cfg: ParallelConfig::new(8, 8, 2),
        plan: MicrobatchPlan::new(64, 2).unwrap(),
    }
}

fn bench_objective_eval(c: &mut Criterion) {
    let s = setup();
    let (profiled, _) = s.cluster.profiler().profile(s.cluster.bandwidth(), 3);
    let gpu = s.cluster.gpu().clone();
    let compute =
        ComputeProfiler::default().profile(s.cluster.bandwidth(), &gpu, &s.gpt, s.cfg, s.plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &s.gpt);
    let identity = Mapping::identity(s.cfg, *s.cluster.topology());
    let block = s.cfg.tp.max(1);
    let num_blocks = s.cfg.num_workers() / block;

    let mut g = c.benchmark_group("sa_objective_eval");

    // One SA evaluation the old way: a move lands, the whole mapping is
    // re-estimated.
    g.bench_function("full_estimate_128_gpus", |b| {
        let mut mapping = identity.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        b.iter(|| {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            black_box(model.estimate(s.cfg, &mapping, s.plan, &compute))
        })
    });

    // The same evaluation through the incremental objective, alternating
    // commit and rollback so both bookkeeping paths are in the measurement.
    g.bench_function("incremental_propose_128_gpus", |b| {
        let mut mapping = identity.clone();
        let mut obj = IncrementalObjective::from_model(&model, &s.gpt, s.plan, &compute, &mapping);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut flip = false;
        b.iter(|| {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            let cost = obj.propose(mv, &mapping);
            if flip {
                obj.commit();
            } else {
                obj.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
            }
            flip = !flip;
            black_box(cost)
        })
    });

    g.finish();
}

fn bench_anneal_pass(c: &mut Criterion) {
    let s = setup();
    let (profiled, _) = s.cluster.profiler().profile(s.cluster.bandwidth(), 3);
    let gpu = s.cluster.gpu().clone();
    let compute =
        ComputeProfiler::default().profile(s.cluster.bandwidth(), &gpu, &s.gpt, s.cfg, s.plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &s.gpt);
    let identity = Mapping::identity(s.cfg, *s.cluster.topology());
    let sa = Annealer::new(AnnealerConfig {
        iterations: 500,
        seed: 2,
        ..Default::default()
    });

    let mut g = c.benchmark_group("sa_anneal_500_iters");
    g.sample_size(10);
    g.bench_function("closure", |b| {
        b.iter(|| {
            let (_, cost, _) = sa.anneal(&identity, |m| model.estimate(s.cfg, m, s.plan, &compute));
            black_box(cost)
        })
    });
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut obj =
                IncrementalObjective::from_model(&model, &s.gpt, s.plan, &compute, &identity);
            let (_, cost, _) = sa.anneal_with(&identity, &mut obj);
            black_box(cost)
        })
    });
    g.finish();
}

criterion_group!(sa_throughput, bench_objective_eval, bench_anneal_pass);
criterion_main!(sa_throughput);
