//! Criterion benchmarks — one target per table/figure of the paper.
//!
//! These time reduced versions of the experiment pipelines (so `cargo
//! bench` completes in minutes); the full-scale numbers live in the
//! `src/bin/*` binaries and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use pipette_bench::context::ClusterKind;
use pipette_bench::fig6::Fig6Options;
use pipette_bench::{fig3, fig5a, fig5b, fig6, fig7, fig8, fig9, table1, table2};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_environment", |b| {
        b.iter(|| black_box(table1::run(black_box(4))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_profiling_40_days", |b| {
        b.iter(|| black_box(fig3::run(ClusterKind::HighEnd, 4, 40, black_box(7))))
    });
}

fn bench_fig5a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_latency_mape");
    g.sample_size(10);
    g.bench_function("mid_range_4_nodes", |b| {
        b.iter(|| black_box(fig5a::run(ClusterKind::MidRange, 4, 128, black_box(3))))
    });
    g.finish();
}

fn bench_fig5b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_top10_runnability");
    g.sample_size(10);
    g.bench_function("mid_range_4_nodes", |b| {
        b.iter(|| {
            black_box(fig5b::run_with_training(
                ClusterKind::MidRange,
                4,
                128,
                10,
                black_box(5),
                2_000,
            ))
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_speedup");
    g.sample_size(10);
    g.bench_function("mid_range_4_nodes_quick", |b| {
        b.iter(|| {
            black_box(fig6::run(
                ClusterKind::MidRange,
                4,
                128,
                &Fig6Options::quick(),
            ))
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_memory_mape");
    g.sample_size(10);
    g.bench_function("mid_range_4_nodes_reduced_training", |b| {
        b.iter(|| black_box(fig7::run_with_training(ClusterKind::MidRange, 4, 3, 1_000)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scalability");
    g.sample_size(10);
    g.bench_function("mid_range_two_points", |b| {
        b.iter(|| {
            black_box(fig8::run(
                ClusterKind::MidRange,
                &[32, 64],
                128,
                &Fig6Options::quick(),
            ))
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_sensitivity");
    g.sample_size(10);
    g.bench_function("mid_range_micro_1", |b| {
        b.iter(|| {
            black_box(fig9::run_micro_sweep(
                ClusterKind::MidRange,
                4,
                &[1],
                2_000,
                3,
            ))
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_overhead");
    g.sample_size(10);
    g.bench_function("mid_range_8_nodes", |b| {
        b.iter(|| {
            black_box(table2::run_cell(
                ClusterKind::MidRange,
                8,
                256,
                &Fig6Options::quick(),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig3,
    bench_fig5a,
    bench_fig5b,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_table2
);
criterion_main!(paper);
