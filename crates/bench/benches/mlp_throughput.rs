//! Memory-estimator MLP throughput: allocation-free blocked-kernel
//! training vs. the original reference loop, and batched vs. row-by-row
//! candidate screening.
//!
//! Both pairs compute bit-identical results (property-tested in the mlp
//! and core crates), so the ratio of medians is pure speedup.
//! `perf_baseline` (in `src/bin`) measures the same quantities without
//! criterion and writes them to `BENCH_configurator.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use pipette::memory::{collect_samples, MemoryEstimator, MemoryEstimatorConfig, SampleSpec};
use pipette_mlp::{Matrix, Mlp, TrainConfig};
use pipette_model::GptConfig;
use pipette_sim::MemorySim;
use std::hint::black_box;

fn corpus() -> Vec<pipette::memory::MemorySample> {
    let spec = SampleSpec {
        gpu_counts: vec![8, 16, 32],
        gpus_per_node: 8,
        models: vec![
            GptConfig::new(8, 1024, 16, 2048, 51200),
            GptConfig::new(16, 1536, 16, 2048, 51200),
        ],
        global_batches: vec![64],
        max_micro: 4,
    };
    collect_samples(&spec, &MemorySim::new(1))
}

fn training_matrices() -> (Matrix, Matrix) {
    let samples = corpus();
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| s.features.iter().map(|f| f.max(1.0).ln()).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&refs);
    let y_data: Vec<f64> = samples
        .iter()
        .map(|s| (s.peak_bytes as f64 / 1e9).ln())
        .collect();
    let y = Matrix::from_vec(y_data.len(), 1, y_data);
    (x, y)
}

/// Train the paper architecture (five layers × 200 hidden, batch 128) for
/// a 50-iteration slice — per-iteration cost is flat across a run, so the
/// slice ratio is the 50k-iteration protocol ratio.
fn bench_train(c: &mut Criterion) {
    let (x, y) = training_matrices();
    let cfg = TrainConfig {
        iterations: 50,
        learning_rate: 1e-3,
        batch_size: 128,
        record_every: 100,
        seed: 0,
    };
    let mut g = c.benchmark_group("mlp_train_paper_arch_50_iters");
    g.sample_size(10);
    g.bench_function("fast_blocked_allocation_free", |b| {
        b.iter(|| {
            let mut mlp = Mlp::paper_architecture(10, 0);
            black_box(mlp.fit(&x, &y, &cfg).final_loss)
        })
    });
    g.bench_function("reference_naive_allocating", |b| {
        b.iter(|| {
            let mut mlp = Mlp::paper_architecture(10, 0);
            black_box(mlp.fit_reference(&x, &y, &cfg).final_loss)
        })
    });
    g.finish();
}

/// Screen the whole profiling corpus as Algorithm 1 does: one prediction
/// per candidate, row-by-row vs. one batched forward pass.
fn bench_predict(c: &mut Criterion) {
    let samples = corpus();
    let mut est_cfg = MemoryEstimatorConfig::default();
    est_cfg.train.iterations = 1_000;
    est_cfg.hidden = 32;
    est_cfg.depth = 2;
    let estimator = MemoryEstimator::train(&samples, &est_cfg);
    let features: Vec<[f64; 10]> = samples.iter().map(|s| s.features).collect();

    let mut g = c.benchmark_group("mlp_screen_corpus");
    g.bench_function("row_by_row", |b| {
        b.iter(|| {
            let mut sink = 0u64;
            for f in &features {
                sink = sink.wrapping_add(estimator.predict_bytes(f));
            }
            black_box(sink)
        })
    });
    g.bench_function("batched_forward_pass", |b| {
        b.iter(|| {
            let mut sink = 0u64;
            for p in estimator.predict_bytes_batch(&features, 1) {
                sink = sink.wrapping_add(p);
            }
            black_box(sink)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_train, bench_predict);
criterion_main!(benches);
