//! Fig. 3 — 40-day continuous profile of inter-node communication latency.
//!
//! The paper plots, for each ordered pair of 8 nodes of the high-end
//! cluster, the latency of the inter-stage message over 40 days of
//! mpiGraph profiling: the pairs are clearly separated (heterogeneity) and
//! wander over time (drift). We regenerate the same series from the
//! temporal-drift model.

use crate::context::ClusterKind;
use crate::util;
use pipette_cluster::{NodeId, TemporalDrift};
use serde::{Deserialize, Serialize};

/// Latency trace of one ordered node pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairTrace {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Per-day transfer latency of the reference message, milliseconds.
    pub latency_ms: Vec<f64>,
}

/// The full experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Days profiled.
    pub days: usize,
    /// Message size used for the latency conversion (bytes).
    pub message_bytes: u64,
    /// One trace per ordered node pair.
    pub traces: Vec<PairTrace>,
}

impl Fig3Result {
    /// Ratio between the slowest and fastest pair's mean latency — the
    /// heterogeneity headline (clearly > 1 on real clusters).
    pub fn spread(&self) -> f64 {
        let means: Vec<f64> = self
            .traces
            .iter()
            .map(|t| t.latency_ms.iter().sum::<f64>() / t.latency_ms.len() as f64)
            .collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0, f64::max);
        max / min
    }

    /// Mean day-to-day relative change, averaged over pairs — the temporal
    /// drift headline.
    pub fn mean_daily_drift(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for t in &self.traces {
            for w in t.latency_ms.windows(2) {
                sum += (w[1] / w[0] - 1.0).abs();
                count += 1;
            }
        }
        sum / count.max(1) as f64
    }
}

/// Runs the 40-day profile on `nodes` nodes of the chosen cluster
/// (the paper uses 8 nodes of the high-end environment).
pub fn run(kind: ClusterKind, nodes: usize, days: usize, seed: u64) -> Fig3Result {
    let cluster = kind.cluster(nodes);
    // The inter-stage message of the cluster's default model at micro = 1.
    let gpt = kind.default_model();
    let message_bytes = pipette_model::messages::pp_message_bytes(&gpt, 1);
    let series = TemporalDrift::default().series(cluster.bandwidth(), days, seed);
    let mut traces = Vec::new();
    for i in 0..nodes {
        for j in 0..nodes {
            if i == j {
                continue;
            }
            let latency_ms: Vec<f64> = series
                .iter()
                .map(|m| {
                    let bw = m.node_pair(NodeId(i), NodeId(j));
                    (message_bytes as f64 / (bw * pipette_cluster::GIB)) * 1e3
                })
                .collect();
            traces.push(PairTrace {
                from: i,
                to: j,
                latency_ms,
            });
        }
    }
    Fig3Result {
        days,
        message_bytes,
        traces,
    }
}

/// Prints summary statistics plus a text rendering of a few traces.
pub fn print(r: &Fig3Result) {
    println!(
        "Fig. 3 — inter-stage communication latency over {} days ({} node pairs, {} KiB message)",
        r.days,
        r.traces.len(),
        r.message_bytes / 1024
    );
    util::rule(80);
    println!(
        "pair spread (slowest/fastest mean): {:.2}x   mean daily drift: {:.1} %",
        r.spread(),
        r.mean_daily_drift() * 100.0
    );
    println!("paper: pairs exhibit clearly different latencies despite equal specs");
    util::rule(80);
    // Render the fastest, median, and slowest pairs as sparkline-ish rows.
    let mut order: Vec<usize> = (0..r.traces.len()).collect();
    order.sort_by(|&a, &b| {
        let ma: f64 = r.traces[a].latency_ms.iter().sum();
        let mb: f64 = r.traces[b].latency_ms.iter().sum();
        ma.total_cmp(&mb)
    });
    let picks = [order[0], order[order.len() / 2], order[order.len() - 1]];
    for idx in picks {
        let t = &r.traces[idx];
        let max = t.latency_ms.iter().cloned().fold(0.0, f64::max);
        let bars: String = t
            .latency_ms
            .iter()
            .map(|&v| char::from_digit(((v / max * 8.0) as u32).clamp(1, 9), 10).unwrap_or('?'))
            .collect();
        let mean = t.latency_ms.iter().sum::<f64>() / t.latency_ms.len() as f64;
        println!(
            "node{:>2} -> node{:<2} mean {mean:>6.2} ms  [{bars}]",
            t.from, t.to
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_day_profile_shows_heterogeneity_and_drift() {
        let r = run(ClusterKind::HighEnd, 8, 40, 11);
        assert_eq!(r.traces.len(), 56);
        assert!(r.traces.iter().all(|t| t.latency_ms.len() == 40));
        // The paper's core observations.
        assert!(
            r.spread() > 1.5,
            "pairs should differ: spread {}",
            r.spread()
        );
        let drift = r.mean_daily_drift();
        assert!(
            drift > 0.005 && drift < 0.2,
            "drift should be visible but bounded: {drift}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(ClusterKind::HighEnd, 4, 10, 3);
        let b = run(ClusterKind::HighEnd, 4, 10, 3);
        assert_eq!(a.traces.len(), b.traces.len());
        assert_eq!(a.traces[5].latency_ms, b.traces[5].latency_ms);
    }
}
