//! Fig. 7 — memory estimation accuracy of Pipette vs the analytic
//! baseline.
//!
//! The paper collects 215 data points of estimated vs actual peak memory
//! across model and parallel configurations: the analytic baseline \[20\]
//! underestimates badly (65.71 % / 59.49 % MAPE on mid-range / high-end),
//! Pipette's MLP reaches 7.39 % / 6.42 %. We regenerate the scatter by
//! training on ≤ 4-node profiles and evaluating on held-out
//! configurations, including full-cluster (extrapolated) ones.

use crate::context::ClusterKind;
use crate::util;
use pipette::memory::{collect_samples, AnalyticMemoryEstimator, SampleSpec};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};

/// One scatter point: actual vs the two estimates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryPoint {
    /// Actual peak memory, bytes.
    pub actual: u64,
    /// MLP estimate, bytes.
    pub learned: u64,
    /// Analytic-baseline estimate, bytes.
    pub analytic: u64,
    /// GPUs of the configuration (32–128; > 32 means extrapolation).
    pub n_gpus: usize,
}

/// Full experiment result for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Cluster label.
    pub cluster: String,
    /// Scatter points.
    pub points: Vec<MemoryPoint>,
}

impl Fig7Result {
    /// MAPE of the learned estimator.
    pub fn learned_mape(&self) -> f64 {
        let (p, t): (Vec<f64>, Vec<f64>) = self
            .points
            .iter()
            .map(|x| (x.learned as f64, x.actual as f64))
            .unzip();
        util::mape(&p, &t)
    }

    /// MAPE of the analytic baseline.
    pub fn analytic_mape(&self) -> f64 {
        let (p, t): (Vec<f64>, Vec<f64>) = self
            .points
            .iter()
            .map(|x| (x.analytic as f64, x.actual as f64))
            .unzip();
        util::mape(&p, &t)
    }

    /// Fraction of points the analytic baseline underestimates.
    pub fn analytic_underestimates(&self) -> f64 {
        let n = self.points.iter().filter(|p| p.analytic < p.actual).count();
        n as f64 / self.points.len().max(1) as f64
    }
}

/// Trains the estimator on ≤ 4-node profiles and evaluates both
/// estimators on a sweep up to the full cluster (the paper's 215-point
/// protocol).
pub fn run(kind: ClusterKind, nodes: usize, seed: u64) -> Fig7Result {
    run_with_training(kind, nodes, seed, 25_000)
}

/// [`run`] with an explicit MLP training budget (tests use a smaller one).
pub fn run_with_training(
    kind: ClusterKind,
    nodes: usize,
    seed: u64,
    iterations: usize,
) -> Fig7Result {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    let truth = ClusterRun::new(&cluster, &gpt).memory_sim();
    let gpus_per_node = cluster.topology().gpus_per_node();

    // The paper profiles the models of interest on up to four nodes
    // (32 GPUs) and validates extrapolation up to 128 GPUs. The models of
    // interest are the weak-scaling family evaluated on this cluster.
    let family: Vec<GptConfig> = [32usize, 64, 96, 128]
        .iter()
        .map(|&g| kind.model_for_gpus(g))
        .collect();
    let train_spec = SampleSpec {
        gpu_counts: vec![8, 16, 24, 32],
        gpus_per_node,
        models: family.clone(),
        global_batches: vec![128, 256],
        max_micro: 8,
    };
    let train_samples = collect_samples(&train_spec, &truth);
    // Close to the paper's training protocol (5 layers x 200 hidden,
    // 50K iterations); slightly smaller so the experiment stays quick.
    let config = pipette::memory::MemoryEstimatorConfig {
        train: pipette_mlp::TrainConfig {
            iterations,
            learning_rate: 1e-3,
            batch_size: 128,
            record_every: 1_000,
            seed: 0,
        },
        hidden: 128,
        depth: 4,
        soft_margin: 0.04,
        seed,
    };
    let estimator = pipette::memory::MemoryEstimator::train(&train_samples, &config);

    // Evaluation sweep: all valid configurations at 32..=num_gpus GPUs
    // with the weak-scaled model of each size — GPU counts beyond 32
    // exercise pure extrapolation.
    let eval_counts: Vec<usize> = [4usize, 8, 12, 16]
        .iter()
        .map(|n| n * gpus_per_node)
        .filter(|g| *g <= cluster.topology().num_gpus())
        .collect();
    let eval_models: Vec<GptConfig> = eval_counts
        .iter()
        .map(|&g| kind.model_for_gpus(g))
        .collect();
    let spec = SampleSpec {
        gpu_counts: eval_counts,
        gpus_per_node,
        models: eval_models,
        global_batches: vec![256],
        max_micro: 8,
    };
    let samples = collect_samples(&spec, &truth);

    let analytic = AnalyticMemoryEstimator::new();
    let mut points = Vec::new();
    for s in &samples {
        let gpt_s = GptConfig::new(
            s.features[1] as usize,
            s.features[2] as usize,
            s.features[3] as usize,
            gpt.seq_len,
            gpt.vocab,
        );
        let cfg = ParallelConfig::new(
            s.features[5] as usize,
            s.features[4] as usize,
            s.features[6] as usize,
        );
        let plan = MicrobatchPlan::new(s.features[8] as u64, s.features[7] as u64)
            // pipette-lint: allow(D2) -- profiling samples come from our own sweep; a malformed one is a bug in the bench
            .expect("samples are valid");
        points.push(MemoryPoint {
            actual: s.peak_bytes,
            learned: estimator.predict_bytes(&s.features),
            analytic: analytic.estimate_bytes(&gpt_s, cfg, plan),
            n_gpus: s.features[0] as usize,
        });
        if points.len() >= 215 {
            break; // the paper's sample count
        }
    }
    Fig7Result {
        cluster: kind.label().to_owned(),
        points,
    }
}

/// Prints MAPEs against the paper's numbers.
pub fn print(r: &Fig7Result) {
    println!(
        "Fig. 7 — memory estimation accuracy ({} cluster, {} points)",
        r.cluster,
        r.points.len()
    );
    util::rule(78);
    let paper = if r.cluster == "mid-range" {
        ("65.71%", "7.39%")
    } else {
        ("59.49%", "6.42%")
    };
    println!("{:<26} {:>12} {:>10}", "estimator", "measured", "paper");
    println!(
        "{:<26} {:>11.2}% {:>10}",
        "analytic baseline [20]",
        r.analytic_mape() * 100.0,
        paper.0
    );
    println!(
        "{:<26} {:>11.2}% {:>10}",
        "Pipette MLP",
        r.learned_mape() * 100.0,
        paper.1
    );
    println!(
        "baseline underestimates {:.0}% of configurations (paper: systematic underestimation)",
        r.analytic_underestimates() * 100.0
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_estimator_beats_analytic_by_a_wide_margin() {
        let r = run_with_training(ClusterKind::MidRange, 8, 3, 6_000);
        assert!(r.points.len() >= 50);
        let learned = r.learned_mape();
        let analytic = r.analytic_mape();
        assert!(learned < 0.15, "learned MAPE {learned:.3}");
        assert!(
            analytic > 0.35,
            "analytic MAPE should be large: {analytic:.3}"
        );
        assert!(r.analytic_underestimates() > 0.9);
    }
}
