//! Experiment harness for the Pipette reproduction.
//!
//! One module per table/figure of the paper's evaluation (§VII). Each
//! module exposes a `run(...)` returning structured results and a
//! `print(...)` that renders the same rows/series the paper reports,
//! side by side with the paper's published numbers where applicable.
//!
//! Binaries in `src/bin/` (one per experiment) drive these; criterion
//! benches in `benches/` time reduced versions of the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod fig3;
pub mod fig5a;
pub mod fig5b;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod util;
