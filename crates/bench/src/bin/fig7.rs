use pipette_bench::context::ClusterKind;
use pipette_bench::fig7;

fn main() {
    for kind in ClusterKind::both() {
        let r = fig7::run(kind, 16, 2024);
        fig7::print(&r);
    }
}
