use pipette_bench::context::ClusterKind;
use pipette_bench::fig5b;

fn main() {
    // The paper's experiment runs on the mid-range cluster.
    let r = fig5b::run(ClusterKind::MidRange, 16, 512, 10, 2024);
    fig5b::print(&r);
}
