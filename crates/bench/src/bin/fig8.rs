use pipette_bench::context::ClusterKind;
use pipette_bench::fig6::Fig6Options;
use pipette_bench::fig8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Fig6Options::quick()
    } else {
        Fig6Options::default()
    };
    for kind in ClusterKind::both() {
        let r = fig8::run(kind, &[32, 64, 96, 128], 256, &opts);
        fig8::print(&r);
    }
}
