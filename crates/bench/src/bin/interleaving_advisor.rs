//! Extension tool: should this job use Megatron's interleaved schedule?
//!
//! Takes Pipette's recommended configuration and evaluates virtual-stage
//! depths v = 1, 2, 4 for it: profiled-estimator latency, simulator-
//! verified latency, and peak memory (a practitioner would run one memory
//! probe per v, exactly as modelled here). Interleaving trades bubble for
//! communication and activation memory, so the best v depends on the
//! cluster and batch shape.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::latency::PipetteLatencyModel;
use pipette_bench::context::ClusterKind;
use pipette_sim::{ClusterRun, ComputeProfiler, IterationSim, TrainingOptions};

fn main() {
    for kind in ClusterKind::both() {
        let cluster = kind.cluster(8);
        let gpt = kind.model_for_gpus(64);
        let global_batch = 256;
        let mut memory = pipette::memory::MemoryEstimatorConfig::default();
        memory.train.iterations = 6_000;
        let opts = PipetteOptions {
            seed: 11,
            memory,
            ..PipetteOptions::default()
        };
        let rec = Pipette::new(&cluster, &gpt, global_batch, opts)
            .run()
            .expect("feasible");
        let cfg = rec.config;
        let plan = rec.plan;
        println!(
            "interleaving advisor — {} cluster, {gpt}, Pipette base {cfg} micro={}",
            kind.label(),
            plan.micro_batch
        );
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>10}",
            "v", "estimated", "simulated", "peak mem", "runnable"
        );
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 11);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        for v in [1usize, 2, 4] {
            if cfg.pp * v > gpt.n_layers || !plan.n_microbatches.is_multiple_of(cfg.pp as u64) {
                println!("{v:<6} {:>12}", "(invalid)");
                continue;
            }
            let options = TrainingOptions::new().with_interleaving(v);
            let runner = ClusterRun::new(&cluster, &gpt).with_options(options);
            let mem = runner.peak_memory(cfg, plan).peak_bytes;
            let fits = mem <= cluster.gpu().memory_bytes;
            let compute = ComputeProfiler::default().profile_stages(
                cluster.bandwidth(),
                &gpu,
                &gpt,
                cfg.pp * v,
                cfg.tp,
                plan,
                13,
            );
            let est = if v == 1 {
                model.estimate(cfg, &rec.mapping, plan, &compute)
            } else {
                model.estimate_interleaved(cfg, &rec.mapping, plan, v, &compute)
            };
            let sim = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .with_options(options)
                .simulate(cfg, &rec.mapping, plan)
                .total_seconds;
            println!(
                "{v:<6} {est:>10.3} s {sim:>10.3} s {:>9.1} GiB {:>10}",
                mem as f64 / (1u64 << 30) as f64,
                if fits { "yes" } else { "OOM" }
            );
        }
        println!();
    }
}
