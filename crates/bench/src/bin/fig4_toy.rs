//! Fig. 4 (conceptual) — the paper's toy example of fine-grained worker
//! dedication: a small cluster with exaggerated (~2x) link heterogeneity,
//! a pp=3 x dp=2 pipeline, and the schedules before/after reordering,
//! rendered as text Gantt charts from the simulator's trace.

use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette_cluster::{presets, HeterogeneityModel, ProfiledBandwidth};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::engine::ChainSpec;
use pipette_sim::trace::render_gantt;
use pipette_sim::{ClusterRun, ComputeProfiler, Mapping, PipelineSchedule};

fn main() {
    // Six nodes, one "GPU" per node for clarity (matching Fig. 4's a..f),
    // with strong heterogeneity so the effect is visible.
    let mut preset = presets::mid_range(6);
    preset.topology = pipette_cluster::ClusterTopology::new(6, 1);
    preset.heterogeneity = HeterogeneityModel {
        inter_mean_efficiency: 0.7,
        inter_sigma: 0.35,
        straggler_fraction: 0.25,
        straggler_factor: 0.5,
        asymmetry_sigma: 0.01,
        intra_sigma: 0.0,
        intra_mean_efficiency: 1.0,
    };
    let cluster = preset.build(12);
    let gpt = GptConfig::new(6, 1024, 16, 2048, 51200);
    let cfg = ParallelConfig::new(3, 1, 2); // pp=3, dp=2 as in Fig. 4
    let plan = MicrobatchPlan::new(6, 1).unwrap(); // six microbatches

    let naive = Mapping::identity(cfg, *cluster.topology());
    let runner = ClusterRun::new(&cluster, &gpt);
    let t_naive = runner
        .execute(cfg, &naive, plan)
        .expect("fits")
        .iteration_seconds;

    // Fine-grained worker dedication.
    let profiled = ProfiledBandwidth::exact(cluster.bandwidth().clone());
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let (dedicated, _, _) = Annealer::new(AnnealerConfig {
        iterations: 20_000,
        seed: 4,
        ..Default::default()
    })
    .anneal(&naive, |m| model.estimate(cfg, m, plan, &compute));
    let t_dedicated = runner
        .execute(cfg, &dedicated, plan)
        .expect("fits")
        .iteration_seconds;

    println!("Fig. 4 (conceptual) — six-node toy cluster, pp=3, dp=2, 6 microbatches\n");
    for (label, mapping, t) in [
        ("(a) naive alphabetical mapping", &naive, t_naive),
        (
            "(b) fine-grained worker dedication",
            &dedicated,
            t_dedicated,
        ),
    ] {
        println!("{label}: {t:.3} s/iteration");
        println!(
            "   nodes by pipeline position (replica 0 | replica 1): {}",
            render_assignment(mapping, cfg)
        );
        let chart = gantt_for(&cluster, &gpt, cfg, mapping, plan);
        println!("{chart}");
    }
    println!(
        "dedication speedup on this toy: {:.2}x (the paper's Fig. 4 illustrates the mechanism)",
        t_naive / t_dedicated
    );
}

fn render_assignment(mapping: &Mapping, cfg: ParallelConfig) -> String {
    let mut parts = Vec::new();
    for z in 0..cfg.dp {
        let chain: Vec<String> = mapping
            .pipeline_chain(0, z)
            .iter()
            .map(|g| char::from(b'a' + g.0 as u8).to_string())
            .collect();
        parts.push(chain.join("->"));
    }
    parts.join(" | ")
}

/// Builds the replica-0 chain spec by hand so we can trace it.
fn gantt_for(
    cluster: &pipette_cluster::Cluster,
    gpt: &GptConfig,
    cfg: ParallelConfig,
    mapping: &Mapping,
    plan: MicrobatchPlan,
) -> String {
    use pipette_sim::compute::{stage_bwd_time_s, stage_fwd_time_s};
    use pipette_sim::CommModel;
    let comm = CommModel::new(cluster.bandwidth());
    let gpu = cluster.gpu().clone();
    let msg = pipette_model::messages::pp_message_bytes(gpt, plan.micro_batch);
    let chain = mapping.pipeline_chain(0, 0);
    let spec = ChainSpec {
        pp: cfg.pp,
        n_mb: plan.n_microbatches,
        schedule: PipelineSchedule::OneFOneB,
        fwd_time: (0..cfg.pp)
            .map(|s| stage_fwd_time_s(gpt, &gpu, cfg.pp, cfg.tp, s, plan.micro_batch))
            .collect(),
        bwd_time: (0..cfg.pp)
            .map(|s| stage_bwd_time_s(gpt, &gpu, cfg.pp, cfg.tp, s, plan.micro_batch))
            .collect(),
        fwd_comm: (0..cfg.pp - 1)
            .map(|s| comm.p2p(chain[s], chain[s + 1], msg))
            .collect(),
        bwd_comm: (0..cfg.pp - 1)
            .map(|s| comm.p2p(chain[s + 1], chain[s], msg))
            .collect(),
    };
    let (_, events) = spec.trace();
    render_gantt(&events, cfg.pp, 72).expect("traced schedule is non-empty")
}
