use pipette_bench::table1;

fn main() {
    let rows = table1::run(16);
    table1::print(&rows);
}
