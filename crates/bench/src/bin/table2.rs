use pipette_bench::fig6::Fig6Options;
use pipette_bench::table2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Fig6Options::quick()
    } else {
        Fig6Options::default()
    };
    let rows = table2::run(512, &opts);
    table2::print(&rows);
}
