//! Fig. 2 — pipeline scheduling (illustrative figure from the paper's
//! background section): the memory-hungry schedule vs the
//! memory-efficient 1F1B, with pp = 3 and six microbatches, rendered from
//! the simulator's exact task timings.

use pipette_sim::engine::ChainSpec;
use pipette_sim::schedule::PipelineSchedule;
use pipette_sim::trace::render_gantt;

fn main() {
    let pp = 3;
    let n_mb = 6;
    // Unit-ish durations as in the paper's sketch: backward twice the
    // forward, communication visible but small.
    let spec = |schedule| ChainSpec {
        pp,
        n_mb,
        schedule,
        fwd_time: vec![1.0; pp],
        bwd_time: vec![2.0; pp],
        fwd_comm: vec![0.15; pp - 1],
        bwd_comm: vec![0.15; pp - 1],
    };
    println!("Fig. 2 — pipeline scheduling (pp = 3, six microbatches)\n");
    for (label, schedule, note) in [
        (
            "(a) memory-hungry schedule (GPipe)",
            PipelineSchedule::GPipe,
            "every stage holds all six microbatches' activations at once",
        ),
        (
            "(b) memory-efficient schedule (1F1B)",
            PipelineSchedule::OneFOneB,
            "at most pp - stage microbatches in flight; the first stage's\n    forward of microbatch m+3 waits for backward m — the hidden critical path",
        ),
    ] {
        let s = spec(schedule);
        let (result, events) = s.trace();
        println!("{label} — makespan {:.2} units", result.makespan);
        print!(
            "{}",
            render_gantt(&events, pp, 72).expect("traced schedule is non-empty")
        );
        for stage in 0..pp {
            let peak = schedule.peak_inflight(pp, stage, n_mb);
            print!("stage {stage}: {peak} in flight  ");
        }
        println!("\n    {note}\n");
    }
}
