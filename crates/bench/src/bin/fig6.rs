use pipette_bench::context::{ClusterKind, DEFAULT_GLOBAL_BATCH};
use pipette_bench::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        fig6::Fig6Options::quick()
    } else {
        fig6::Fig6Options::default()
    };
    for kind in ClusterKind::both() {
        let r = fig6::run(kind, 16, DEFAULT_GLOBAL_BATCH, &opts);
        fig6::print(&r);
    }
}
