//! Extension tool: the memory/time Pareto frontier of every runnable
//! configuration — what does the whole configuration space look like, and
//! where do the tools' choices sit on it?

use pipette_bench::context::ClusterKind;
use pipette_model::{throughput, BatchConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, Mapping};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let nodes = if quick { 4 } else { 16 };
    for kind in ClusterKind::both() {
        let cluster = kind.cluster(nodes);
        let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
        let global = 256u64;
        let runner = ClusterRun::new(&cluster, &gpt);
        let topo = cluster.topology();
        let peak_total = cluster.gpu().peak_fp16_tflops * 1e12 * topo.num_gpus() as f64;

        // Measure everything runnable.
        let mut points: Vec<(ParallelConfig, u64, f64, u64)> = Vec::new();
        for cfg in ParallelConfig::enumerate(topo.num_gpus(), topo.gpus_per_node(), gpt.n_layers) {
            let Ok(mini) = BatchConfig::new(global).minibatch(cfg.dp) else {
                continue;
            };
            for plan in MicrobatchPlan::enumerate(mini, 8) {
                let mapping = Mapping::identity(cfg, *topo);
                if let Ok(m) = runner.execute(cfg, &mapping, plan) {
                    points.push((
                        cfg,
                        plan.micro_batch,
                        m.iteration_seconds,
                        m.peak_memory_bytes,
                    ));
                }
            }
        }
        points.sort_by(|a, b| a.2.total_cmp(&b.2));

        // Pareto frontier: fastest first; keep points that also lower memory.
        let mut frontier = Vec::new();
        let mut best_mem = u64::MAX;
        for p in &points {
            if p.3 < best_mem {
                frontier.push(*p);
                best_mem = p.3;
            }
        }

        println!(
            "Pareto frontier — {} cluster ({} GPUs), {gpt}, global batch {global}",
            kind.label(),
            topo.num_gpus()
        );
        println!(
            "{} runnable configurations, {} on the time/memory frontier:",
            points.len(),
            frontier.len()
        );
        println!(
            "{:<22} {:>6} {:>11} {:>11} {:>12} {:>7}",
            "(pp,tp,dp)", "micro", "iter time", "peak mem", "tokens/s", "MFU"
        );
        for (cfg, micro, secs, mem) in &frontier {
            let t = throughput::of_iteration(&gpt, global, *secs, peak_total);
            println!(
                "{:<22} {:>6} {:>9.3} s {:>7.1} GiB {:>12.0} {:>6.1}%",
                cfg.to_string(),
                micro,
                secs,
                *mem as f64 / (1u64 << 30) as f64,
                t.tokens_per_second,
                t.mfu * 100.0
            );
        }
        println!();
    }
}
