use pipette_bench::context::ClusterKind;
use pipette_bench::fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sa = if quick { 4_000 } else { 30_000 };
    for kind in ClusterKind::both() {
        let micro = fig9::run_micro_sweep(kind, 16, &[1, 2, 4, 8], sa, 2024);
        fig9::print(&micro);
        let mini = fig9::run_mini_sweep(kind, 16, &[64, 128, 256, 512, 1024], sa, 2024);
        fig9::print(&mini);
    }
}
