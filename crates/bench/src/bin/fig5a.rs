use pipette_bench::context::ClusterKind;
use pipette_bench::fig5a;

fn main() {
    for kind in ClusterKind::both() {
        let r = fig5a::run(kind, 16, 512, 2024);
        fig5a::print(&r);
    }
}
