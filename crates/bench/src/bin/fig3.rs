use pipette_bench::context::ClusterKind;
use pipette_bench::fig3;

fn main() {
    // The paper profiles 8 nodes of the high-end environment for 40 days.
    let r = fig3::run(ClusterKind::HighEnd, 8, 40, 2024);
    fig3::print(&r);
}
