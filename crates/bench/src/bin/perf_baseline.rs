//! Configurator performance baseline — writes `BENCH_configurator.json`.
//!
//! Measures, without criterion (so it runs in seconds and emits one JSON
//! artifact CI and future sessions can diff):
//!
//! * SA objective throughput (evaluations/second) for the full-estimate
//!   path and the incremental objective, and the resulting speedup, on
//!   the paper's 128-GPU mid-range cluster (pp = 8, tp = 8, dp = 2);
//! * end-to-end `Pipette::run` wall-clock on that cluster;
//! * the SA improvement reached within a fixed 1-second budget through
//!   the incremental objective (the paper's budget is 10 s; 1 s keeps
//!   the baseline cheap while still running hundreds of thousands of
//!   incremental evaluations);
//! * the memory-estimator fast path: blocked-kernel training vs. the
//!   naive reference loop (extrapolated to the paper's 50k-iteration
//!   protocol), row-by-row vs. batched candidate screening, and cold
//!   vs. warm-cache `configure()` wall clock.
//!
//! `--smoke` shrinks every measurement to a CI-friendly sanity check
//! (same code paths, tiny budgets, no meaning in the absolute numbers).

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{
    Annealer, AnnealerConfig, IncrementalObjective, Move, Objective, ParallelTemperingAnnealer,
    TemperingSchedule,
};
use pipette::memory::{collect_samples, MemoryEstimator, SampleSpec, TrainedEstimatorCache};
use pipette::parallel;
use pipette::telemetry::SaTraceObserver;
use pipette_cluster::presets;
use pipette_mlp::{Matrix, Mlp, TrainConfig};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_obs::{SpanTree, Trace, TraceConfig};
use pipette_sim::{ComputeProfiler, Mapping, MemorySim};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with allocation counters, installed as the
/// global allocator of this binary only. This is what turns "the SA hot
/// path is allocation-free" from a code-review claim into a measured,
/// CI-enforced invariant: the steady-state section below snapshots the
/// counters around a propose/commit/rollback loop and aborts the run on
/// any delta.
struct CountingAlloc;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the added atomics never observe
// or alter the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOCATION_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOCATION_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is the allocation the arenas exist to prevent; count it.
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOCATION_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCATION_COUNT.load(Ordering::Relaxed),
        ALLOCATION_BYTES.load(Ordering::Relaxed),
    )
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    cluster: ClusterShape,
    objective: ObjectiveThroughput,
    hot_path_allocs: HotPathAllocs,
    end_to_end: EndToEnd,
    sa_budgeted: SaBudgeted,
    pt: ParallelTempering,
    memory_estimator: MemoryEstimatorPerf,
    telemetry: TelemetryOverhead,
    reference_trace: ReferenceTrace,
}

#[derive(Serialize)]
struct ClusterShape {
    nodes: usize,
    gpus_per_node: usize,
    pp: usize,
    tp: usize,
    dp: usize,
}

#[derive(Serialize)]
struct ObjectiveThroughput {
    evaluations: usize,
    /// Moves driven through the incremental path. Far more than
    /// `evaluations`: one incremental eval is ~100× cheaper than a full
    /// one, and a run long enough to amortize the one-time memo warmup
    /// (the working set is ~2k keys) is what "steady-state throughput"
    /// means — any real SA run is millions of moves.
    incremental_evaluations: usize,
    full_evals_per_sec: f64,
    incremental_evals_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    wall_clock_seconds: f64,
    examined: usize,
    memory_rejected: usize,
    estimated_iteration_seconds: f64,
}

/// Steady-state allocator activity of the incremental SA loop, measured
/// with [`CountingAlloc`]: after warmup, `measured_moves` full
/// propose + commit/rollback cycles must allocate **nothing** — the
/// undo logs, touched-sets, and DP memo are all arena-backed and sized
/// at construction. The binary aborts if the count is nonzero, so a
/// regression can never write a green-looking report.
#[derive(Serialize)]
struct HotPathAllocs {
    warmup_moves: usize,
    measured_moves: usize,
    allocations: u64,
    allocated_bytes: u64,
}

/// Fixed-iteration SA through the incremental objective. Earlier
/// baselines annealed against a wall-clock budget, which made
/// `evaluations` and `improvement` machine-speed-dependent — useless to
/// diff across runs. With the iteration count pinned, both are
/// deterministic (seeded SA, bit-stable objective) and only the
/// wall-clock field varies between machines.
#[derive(Serialize)]
struct SaBudgeted {
    iterations: usize,
    wall_clock_seconds: f64,
    evals_per_sec: f64,
    evaluations: usize,
    improvement: f64,
}

/// Parallel tempering (PR 7): K-chain search throughput, steady-state
/// allocation proof, and equal-per-chain-budget quality vs. the single
/// chain.
///
/// The throughput headline is `aggregate_evals_per_sec` =
/// `total_evaluations / max_chain_busy_seconds`: every chain's busy time
/// is metered inside its own segments, so the metric is what a box with
/// one dedicated core per replica sustains — independent of how many
/// cores *this* machine has (recorded in `host_cpus`; CI runs on shared
/// 1–2-core runners, where wall-clock aggregate throughput would be
/// meaningless and machine-dependent).
#[derive(Serialize)]
struct ParallelTempering {
    replicas: usize,
    exchange_interval: usize,
    /// SA iterations per chain (same budget as `sa_budgeted`, so the
    /// quality comparison below is equal wall clock on >= `replicas`
    /// cores).
    chain_iterations: usize,
    total_evaluations: usize,
    wall_clock_seconds: f64,
    max_chain_busy_seconds: f64,
    /// `total_evaluations / max_chain_busy_seconds` — see struct docs.
    aggregate_evals_per_sec: f64,
    host_cpus: usize,
    /// `sa_budgeted.evals_per_sec`, repeated here so the speedup is
    /// self-contained.
    single_chain_evals_per_sec: f64,
    /// `aggregate_evals_per_sec / single_chain_evals_per_sec`; the full
    /// run asserts >= 3 at 4 replicas.
    speedup_vs_single_chain: f64,
    exchanges_attempted: usize,
    exchanges_accepted: usize,
    steady_state: PtSteadyState,
    /// `sa_budgeted.improvement` — the single chain at the same
    /// per-chain budget and seed.
    equal_budget_single_improvement: f64,
    /// The ladder's merged improvement at that budget; asserted >= the
    /// single chain's (the cold rung replays it until the first accepted
    /// exchange, and the ladder keeps the best of all rungs).
    equal_budget_tempering_improvement: f64,
}

/// K-chain steady-state allocation proof. Measuring "allocations during
/// the hot loop" directly would catch the ladder's setup (K objectives,
/// K mapping clones), so instead two *identical* runs that differ only
/// in per-chain budget are compared: same seed, same ladder, same setup
/// allocations — any difference in allocator totals is, exactly, what
/// the extra `measured_moves` steady-state moves and their exchange
/// rounds allocated. The binary aborts unless that difference is zero.
#[derive(Serialize)]
struct PtSteadyState {
    short_chain_iterations: usize,
    long_chain_iterations: usize,
    /// `(long - short) * replicas` — the move count the zero-alloc claim
    /// is measured over.
    measured_moves: usize,
    allocations: u64,
    allocated_bytes: u64,
}

/// Memory-estimator fast path (PR 2): training kernel speedup, batch
/// screening throughput, and the trained-estimator cache. The paper
/// protocol (50k iterations, five layers × 200 hidden) is extrapolated
/// from a measured slice — per-iteration cost is constant across the run.
#[derive(Serialize)]
struct MemoryEstimatorPerf {
    corpus_samples: usize,
    measured_train_iterations: usize,
    fast_train_seconds: f64,
    reference_train_seconds: f64,
    /// Blocked kernels + allocation-free loop vs. the pre-PR naive loop,
    /// identical arithmetic (the bench asserts bit-equal losses).
    kernel_train_speedup: f64,
    paper_protocol_iterations: usize,
    paper_train_seconds_fast: f64,
    paper_train_seconds_reference: f64,
    single_predictions_per_sec: f64,
    batch_predictions_per_sec: f64,
    batch_screen_speedup: f64,
    /// `configure()` wall clock with an estimator cache, cold (trains)
    /// then warm (fingerprint hit, training skipped entirely).
    cold_configure_seconds: f64,
    warm_configure_seconds: f64,
    warm_cache_hits: u64,
    warm_vs_cold_speedup: f64,
    /// Effective paper-protocol speedup for repeated `configure()` calls:
    /// reference 50k-iteration training vs. a warm cache hit.
    paper_train_vs_cache_hit_speedup: f64,
}

/// Cost of the observability layer on the SA hot path (PR 3): the same
/// annealing run with the no-op observer vs. a recording
/// [`SaTraceObserver`] at the default sampling cadence. The observed run
/// must stay bit-identical and within a few percent of the plain one.
#[derive(Serialize)]
struct TelemetryOverhead {
    sa_iterations: usize,
    plain_evals_per_sec: f64,
    traced_evals_per_sec: f64,
    /// `(plain - traced) / plain` throughput loss; target < 0.05.
    overhead_fraction: f64,
    trace_events: usize,
}

/// The committed reference trace (PR 8): a fixed small job — identical
/// in smoke and full runs, and identical to the `tests/telemetry.rs`
/// reference shape — traced at the default cadence and written to
/// `BENCH_trace.jsonl`. CI uploads the file and gates it with
/// `pipette-cli trace check` against the committed `trace_budgets.json`,
/// so the ceilings are on *logical* work (span costs, event counts) and
/// are machine-independent. The binary itself asserts the span stream is
/// balanced and bit-stable across two back-to-back runs.
#[derive(Serialize)]
struct ReferenceTrace {
    path: String,
    seed: u64,
    total_lines: usize,
    span_instances: usize,
    span_names: Vec<String>,
    /// Total SA objective evaluations (the `anneal` span's cost).
    anneal_evals: u64,
    /// Screened-in candidates (the `estimates` span's cost).
    estimated_candidates: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nodes = if smoke { 2 } else { 16 };
    let cluster = presets::mid_range(nodes).build(3);
    let gpt = GptConfig::gpt_3_1b();
    let cfg = if smoke {
        ParallelConfig::new(4, 2, 2)
    } else {
        ParallelConfig::new(8, 8, 2)
    };
    let plan = MicrobatchPlan::new(64, 2).unwrap();
    let evals = if smoke { 200 } else { 5_000 };

    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let identity = Mapping::identity(cfg, *cluster.topology());
    let block = cfg.tp.max(1);
    let num_blocks = cfg.num_workers() / block;

    // Throughput of the full-estimate path: move, re-estimate everything.
    // Fastest of three passes, same minimum-time estimator as the
    // incremental loop below, so the speedup ratio compares like with
    // like.
    let mut mapping = identity.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut sink = 0.0f64;
    let mut full_elapsed = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..evals {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            sink += model.estimate(cfg, &mapping, plan, &compute);
        }
        full_elapsed = full_elapsed.min(t0.elapsed().as_secs_f64());
    }

    // Throughput of the incremental path: the same kind of move stream,
    // alternating commit/rollback so both bookkeeping branches are
    // measured. Each pass runs long enough (sub-second — each eval is
    // sub-μs) that the one-time memo/hop-table warmup is amortized away,
    // and the *fastest of three passes* is reported: the minimum-time
    // estimator rejects scheduler and frequency-scaling noise that a
    // single pass is exposed to, while any real slowdown in the code
    // shows up in every pass.
    let inc_evals = if smoke { 100_000 } else { 1_000_000 };
    let inc_passes = 3;
    let mut mapping = identity.clone();
    let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &mapping);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut inc_elapsed = f64::INFINITY;
    for _ in 0..inc_passes {
        let t0 = Instant::now();
        for i in 0..inc_evals {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            sink += obj.propose(mv, &mapping);
            if i % 2 == 0 {
                obj.commit();
            } else {
                obj.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
            }
        }
        inc_elapsed = inc_elapsed.min(t0.elapsed().as_secs_f64());
    }

    let objective = ObjectiveThroughput {
        evaluations: evals,
        incremental_evaluations: inc_evals,
        full_evals_per_sec: evals as f64 / full_elapsed,
        incremental_evals_per_sec: inc_evals as f64 / inc_elapsed,
        speedup: (full_elapsed / evals as f64) / (inc_elapsed / inc_evals as f64),
    };

    // Zero-allocation proof: keep driving the (already warm) incremental
    // objective and snapshot the global allocator around the loop. Any
    // nonzero delta is a hot-path regression and fails the run outright.
    let warmup_moves = inc_evals * inc_passes;
    let measured_moves = if smoke { 10_000 } else { 200_000 };
    let (alloc0, bytes0) = alloc_snapshot();
    for i in 0..measured_moves {
        let mv = Move::random(&mut rng, num_blocks);
        mv.apply(mapping.as_mut_slice(), block);
        sink += obj.propose(mv, &mapping);
        if i % 2 == 0 {
            obj.commit();
        } else {
            obj.rollback();
            mv.inverse().apply(mapping.as_mut_slice(), block);
        }
    }
    let (alloc1, bytes1) = alloc_snapshot();
    let hot_path_allocs = HotPathAllocs {
        warmup_moves,
        measured_moves,
        allocations: alloc1 - alloc0,
        allocated_bytes: bytes1 - bytes0,
    };
    assert_eq!(
        hot_path_allocs.allocations, 0,
        "SA hot path allocated {} times ({} bytes) over {} moves — the \
         propose/commit/rollback cycle must be allocation-free",
        hot_path_allocs.allocations, hot_path_allocs.allocated_bytes, measured_moves
    );

    // End-to-end Algorithm 1 on the same cluster, with a modest memory
    // training budget (the estimator is trained once per cluster in
    // practice and its cost is reported separately in Table II).
    let mut options = PipetteOptions::fast_test();
    options.seed = 3;
    if smoke {
        options.sa_top_k = 1;
        options.annealer.iterations = 200;
    }
    let t0 = Instant::now();
    let rec = Pipette::new(&cluster, &gpt, 256, options)
        .run()
        .expect("feasible space");
    let end_to_end = EndToEnd {
        wall_clock_seconds: t0.elapsed().as_secs_f64(),
        examined: rec.examined,
        memory_rejected: rec.memory_rejected,
        estimated_iteration_seconds: rec.estimated_seconds,
    };

    // Fixed-iteration SA: how much mapping improvement a known number of
    // incremental evaluations buys (deterministic — see `SaBudgeted`).
    let budget_iters = if smoke { 5_000 } else { 1_500_000 };
    let sa = Annealer::new(AnnealerConfig {
        iterations: budget_iters,
        seed: 2,
        ..Default::default()
    });
    let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &identity);
    let t0 = Instant::now();
    let (_, _, stats) = sa.anneal_with(&identity, &mut obj);
    let budget_elapsed = t0.elapsed().as_secs_f64();
    let sa_budgeted = SaBudgeted {
        iterations: budget_iters,
        wall_clock_seconds: budget_elapsed,
        evals_per_sec: stats.evaluations as f64 / budget_elapsed,
        evaluations: stats.evaluations,
        improvement: stats.improvement(),
    };

    // Parallel tempering: the same per-chain budget and seed as
    // `sa_budgeted`, K = 4 replicas on the default ladder. One core per
    // chain is the deployment model, so throughput is metered on busy
    // time (see `ParallelTempering` docs) and the quality row is the
    // equal-wall-clock comparison on a >= 4-core box.
    let pt_replicas = 4usize;
    let pt_schedule = TemperingSchedule {
        replicas: pt_replicas,
        ..Default::default()
    };
    let pt = ParallelTemperingAnnealer::new(
        AnnealerConfig {
            iterations: budget_iters,
            seed: 2,
            ..Default::default()
        },
        pt_schedule,
    );
    let pt_threads = parallel::default_threads().min(pt_replicas);
    let t0 = Instant::now();
    let (_, _, pt_stats) = pt.anneal(pt_threads, &identity, |_, init| {
        IncrementalObjective::from_model(&model, &gpt, plan, &compute, init)
    });
    let pt_wall = t0.elapsed().as_secs_f64();
    let pt_merged = pt_stats.merged();
    let max_busy = pt_stats
        .replica_stats
        .iter()
        .map(|s| s.elapsed.as_secs_f64())
        .fold(0.0f64, f64::max);
    let aggregate_evals_per_sec = pt_merged.evaluations as f64 / max_busy.max(1e-12);
    let speedup_vs_single_chain = aggregate_evals_per_sec / sa_budgeted.evals_per_sec;

    // Steady-state allocation proof: two runs differing only in budget
    // (sequential, so the allocator totals are single-threaded and
    // exact); equal totals mean the extra moves allocated nothing.
    let pt_short_iters = if smoke { 2_500 } else { 50_000 };
    let pt_long_iters = if smoke { 5_000 } else { 100_000 };
    let pt_alloc_run = |iters: usize| -> (u64, u64) {
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: iters,
                seed: 2,
                ..Default::default()
            },
            pt_schedule,
        );
        let (a0, b0) = alloc_snapshot();
        let _ = pt.anneal(1, &identity, |_, init| {
            IncrementalObjective::from_model(&model, &gpt, plan, &compute, init)
        });
        let (a1, b1) = alloc_snapshot();
        (a1 - a0, b1 - b0)
    };
    let (short_allocs, short_bytes) = pt_alloc_run(pt_short_iters);
    let (long_allocs, long_bytes) = pt_alloc_run(pt_long_iters);
    let pt_measured_moves = (pt_long_iters - pt_short_iters) * pt_replicas;
    let steady_state = PtSteadyState {
        short_chain_iterations: pt_short_iters,
        long_chain_iterations: pt_long_iters,
        measured_moves: pt_measured_moves,
        allocations: long_allocs.saturating_sub(short_allocs),
        allocated_bytes: long_bytes.saturating_sub(short_bytes),
    };
    assert_eq!(
        long_allocs,
        short_allocs,
        "tempering steady state allocated {} times ({} bytes) over {} \
         moves — chain stepping and replica exchange must be \
         allocation-free",
        long_allocs.saturating_sub(short_allocs),
        long_bytes.saturating_sub(short_bytes),
        pt_measured_moves
    );
    // Deterministic (seeded) comparison, so this holds on every machine,
    // smoke or full: the ladder's best never trails the single chain at
    // the committed seed and budget.
    assert!(
        pt_merged.improvement() >= sa_budgeted.improvement,
        "tempering improvement {} fell below the single chain's {} at \
         equal per-chain budget",
        pt_merged.improvement(),
        sa_budgeted.improvement
    );
    if !smoke {
        // Timing-based, so only enforced on the full run (smoke budgets
        // finish in microseconds and the ratio is all noise).
        assert!(
            speedup_vs_single_chain >= 3.0,
            "aggregate tempering throughput is only {speedup_vs_single_chain:.2}x \
             the single chain's (need >= 3x at 4 replicas)"
        );
    }
    let pt = ParallelTempering {
        replicas: pt_replicas,
        exchange_interval: pt_schedule.exchange_interval,
        chain_iterations: budget_iters,
        total_evaluations: pt_merged.evaluations,
        wall_clock_seconds: pt_wall,
        max_chain_busy_seconds: max_busy,
        aggregate_evals_per_sec,
        host_cpus: parallel::default_threads(),
        single_chain_evals_per_sec: sa_budgeted.evals_per_sec,
        speedup_vs_single_chain,
        exchanges_attempted: pt_stats.exchanges_attempted,
        exchanges_accepted: pt_stats.exchanges_accepted,
        steady_state,
        equal_budget_single_improvement: sa_budgeted.improvement,
        equal_budget_tempering_improvement: pt_merged.improvement(),
    };

    // Memory-estimator fast path: a deterministic profiling corpus (the
    // shape the configurator's ≤ 4-node sweep produces), the paper's MLP
    // architecture, and the three measured claims — training kernel
    // speedup, batched screening throughput, cache-hit wall clock.
    let spec = SampleSpec {
        gpu_counts: vec![8, 16, 32],
        gpus_per_node: 8,
        models: vec![
            GptConfig::new(8, 1024, 16, 2048, 51200),
            GptConfig::new(16, 1536, 16, 2048, 51200),
        ],
        global_batches: vec![64],
        max_micro: 4,
    };
    let samples = collect_samples(&spec, &MemorySim::new(1));
    let x_rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| s.features.iter().map(|f| f.max(1.0).ln()).collect())
        .collect();
    let x_refs: Vec<&[f64]> = x_rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&x_refs);
    let y_data: Vec<f64> = samples
        .iter()
        .map(|s| (s.peak_bytes as f64 / 1e9).ln())
        .collect();
    let y = Matrix::from_vec(y_data.len(), 1, y_data);

    let measured_iters = if smoke { 25 } else { 400 };
    let train_cfg = TrainConfig {
        iterations: measured_iters,
        learning_rate: 1e-3,
        batch_size: 128,
        record_every: 100,
        seed: 0,
    };
    let mut fast_mlp = Mlp::paper_architecture(10, 0);
    let t0 = Instant::now();
    let fast_report = fast_mlp.fit(&x, &y, &train_cfg);
    let fast_train = t0.elapsed().as_secs_f64();
    let mut ref_mlp = Mlp::paper_architecture(10, 0);
    let t0 = Instant::now();
    let ref_report = ref_mlp.fit_reference(&x, &y, &train_cfg);
    let ref_train = t0.elapsed().as_secs_f64();
    assert_eq!(
        fast_report.final_loss.to_bits(),
        ref_report.final_loss.to_bits(),
        "fast and reference training must agree bit-for-bit"
    );
    let paper_iters = 50_000usize;
    let scale = paper_iters as f64 / measured_iters as f64;

    // Screening throughput: one row at a time vs. one batched forward
    // pass over the whole candidate set.
    let mut est_cfg = pipette::memory::MemoryEstimatorConfig::default();
    est_cfg.train.iterations = if smoke { 150 } else { 1_500 };
    est_cfg.hidden = 32;
    est_cfg.depth = 2;
    let estimator = MemoryEstimator::train(&samples, &est_cfg);
    let features: Vec<[f64; 10]> = samples.iter().map(|s| s.features).collect();
    let reps = if smoke { 3 } else { 20 };
    let t0 = Instant::now();
    let mut single_sink = 0u64;
    for _ in 0..reps {
        for f in &features {
            single_sink = single_sink.wrapping_add(estimator.predict_bytes(f));
        }
    }
    let single_elapsed = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut batch_sink = 0u64;
    for _ in 0..reps {
        for p in estimator.predict_bytes_batch(&features, 1) {
            batch_sink = batch_sink.wrapping_add(p);
        }
    }
    let batch_elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(
        single_sink, batch_sink,
        "batch screen must match row-by-row"
    );
    let predictions = (reps * features.len()) as f64;

    // Cache: cold `configure()` trains; warm hits the fingerprint and
    // skips training entirely.
    let cache = TrainedEstimatorCache::in_memory();
    let t0 = Instant::now();
    let cold_rec = Pipette::new(&cluster, &gpt, 256, options)
        .with_estimator_cache(&cache)
        .run()
        .expect("feasible space");
    let cold_configure = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm_rec = Pipette::new(&cluster, &gpt, 256, options)
        .with_estimator_cache(&cache)
        .run()
        .expect("feasible space");
    let warm_configure = t0.elapsed().as_secs_f64();
    assert_eq!(cold_rec.config, warm_rec.config);
    assert_eq!(cold_rec.plan, warm_rec.plan);
    assert!(cache.hits() > 0, "warm configure() must hit the cache");
    let warm_training = warm_rec.overhead.memory_training.as_secs_f64();

    let memory_estimator = MemoryEstimatorPerf {
        corpus_samples: samples.len(),
        measured_train_iterations: measured_iters,
        fast_train_seconds: fast_train,
        reference_train_seconds: ref_train,
        kernel_train_speedup: ref_train / fast_train,
        paper_protocol_iterations: paper_iters,
        paper_train_seconds_fast: fast_train * scale,
        paper_train_seconds_reference: ref_train * scale,
        single_predictions_per_sec: predictions / single_elapsed,
        batch_predictions_per_sec: predictions / batch_elapsed,
        batch_screen_speedup: single_elapsed / batch_elapsed,
        cold_configure_seconds: cold_configure,
        warm_configure_seconds: warm_configure,
        warm_cache_hits: cache.hits(),
        warm_vs_cold_speedup: cold_configure / warm_configure,
        paper_train_vs_cache_hit_speedup: (ref_train * scale) / warm_training.max(1e-9),
    };

    // Telemetry overhead on the SA hot path: identical annealing runs,
    // no-op observer vs. default-cadence trace recording. Best-of-3 on
    // each side to damp scheduler noise.
    let sa_iters = if smoke { 2_000 } else { 200_000 };
    let sa = Annealer::new(AnnealerConfig {
        iterations: sa_iters,
        seed: 2,
        ..Default::default()
    });
    let mut plain_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut plain_cost = 0.0f64;
    let mut traced_cost = 0.0f64;
    let mut trace_events = 0usize;
    for _ in 0..3 {
        let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &identity);
        let t0 = Instant::now();
        let (_, cost, _) = sa.anneal_with(&identity, &mut obj);
        plain_best = plain_best.min(t0.elapsed().as_secs_f64());
        plain_cost = cost;

        let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &identity);
        let mut trace = Trace::new(TraceConfig::default());
        let mut observer = SaTraceObserver::new(&mut trace, 0);
        let t0 = Instant::now();
        let (_, cost, stats) = sa.anneal_observed(&identity, &mut obj, &mut observer);
        traced_best = traced_best.min(t0.elapsed().as_secs_f64());
        traced_cost = cost;
        observer.finish(&stats);
        trace_events = trace.len();
    }
    assert_eq!(
        plain_cost.to_bits(),
        traced_cost.to_bits(),
        "recording telemetry must not change the search"
    );
    let telemetry = TelemetryOverhead {
        sa_iterations: sa_iters,
        plain_evals_per_sec: sa_iters as f64 / plain_best,
        traced_evals_per_sec: sa_iters as f64 / traced_best,
        overhead_fraction: 1.0 - plain_best / traced_best.max(1e-12),
        trace_events,
    };
    if !smoke {
        // Timing-based, so only enforced on the full run: span + event
        // recording must cost less than 5% of SA throughput.
        assert!(
            telemetry.overhead_fraction < 0.05,
            "telemetry overhead is {:.2}% of SA throughput (need < 5%)",
            100.0 * telemetry.overhead_fraction
        );
    }

    // Reference trace for the CI budget gate: a fixed job whose logical
    // trace is identical on every machine and in smoke and full modes,
    // so `trace_budgets.json` ceilings apply to both.
    let reference_trace = {
        let ref_cluster = presets::mid_range(2).build(5);
        let ref_gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
        let mut ref_options = PipetteOptions::fast_test();
        ref_options.seed = 21;
        let run = || -> Trace {
            let mut trace = Trace::new(TraceConfig::default());
            Pipette::new(&ref_cluster, &ref_gpt, 64, ref_options)
                .run_traced(&mut trace)
                .expect("reference job is feasible");
            trace
        };
        let trace = run();
        let again = run();
        assert_eq!(
            trace.to_jsonl(),
            again.to_jsonl(),
            "reference trace must be bit-stable across runs"
        );
        let tree = SpanTree::from_trace(&trace).expect("reference span stream is balanced");
        let rollups = tree.rollups();
        let span_cost = |name: &str| {
            rollups
                .iter()
                .find(|r| r.name == name)
                .map_or(0, |r| r.cost)
        };
        let path = "BENCH_trace.jsonl";
        trace
            .write_jsonl(std::path::Path::new(path))
            .expect("write BENCH_trace.jsonl");
        ReferenceTrace {
            path: path.to_string(),
            seed: ref_options.seed,
            total_lines: trace.len(),
            span_instances: tree.nodes().len(),
            span_names: rollups.iter().map(|r| r.name.clone()).collect(),
            anneal_evals: span_cost("anneal"),
            estimated_candidates: span_cost("estimates"),
        }
    };

    let report = Report {
        smoke,
        cluster: ClusterShape {
            nodes,
            gpus_per_node: cluster.topology().gpus_per_node(),
            pp: cfg.pp,
            tp: cfg.tp,
            dp: cfg.dp,
        },
        objective,
        hot_path_allocs,
        end_to_end,
        sa_budgeted,
        pt,
        memory_estimator,
        telemetry,
        reference_trace,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_configurator.json", &json).expect("write BENCH_configurator.json");
    println!("{json}");
    eprintln!(
        "wrote BENCH_configurator.json  (objective speedup: {:.1}x, tempering aggregate: {:.1}x, telemetry overhead: {:.2}%, checksum {sink:.3})",
        report.objective.speedup,
        report.pt.speedup_vs_single_chain,
        100.0 * report.telemetry.overhead_fraction
    );
    eprintln!(
        "wrote {}  ({} lines, {} span instances, anneal cost {} evals)",
        report.reference_trace.path,
        report.reference_trace.total_lines,
        report.reference_trace.span_instances,
        report.reference_trace.anneal_evals
    );
}
