//! Configurator performance baseline — writes `BENCH_configurator.json`.
//!
//! Measures, without criterion (so it runs in seconds and emits one JSON
//! artifact CI and future sessions can diff):
//!
//! * SA objective throughput (evaluations/second) for the full-estimate
//!   path and the incremental objective, and the resulting speedup, on
//!   the paper's 128-GPU mid-range cluster (pp = 8, tp = 8, dp = 2);
//! * end-to-end `Pipette::run` wall-clock on that cluster;
//! * the SA improvement reached within a fixed 1-second budget through
//!   the incremental objective (the paper's budget is 10 s; 1 s keeps
//!   the baseline cheap while still running hundreds of thousands of
//!   incremental evaluations).
//!
//! `--smoke` shrinks every measurement to a CI-friendly sanity check
//! (same code paths, tiny budgets, no meaning in the absolute numbers).

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig, IncrementalObjective, Move, Objective};
use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ComputeProfiler, Mapping};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Report {
    smoke: bool,
    cluster: ClusterShape,
    objective: ObjectiveThroughput,
    end_to_end: EndToEnd,
    sa_budgeted: SaBudgeted,
}

#[derive(Serialize)]
struct ClusterShape {
    nodes: usize,
    gpus_per_node: usize,
    pp: usize,
    tp: usize,
    dp: usize,
}

#[derive(Serialize)]
struct ObjectiveThroughput {
    evaluations: usize,
    full_evals_per_sec: f64,
    incremental_evals_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    wall_clock_seconds: f64,
    examined: usize,
    memory_rejected: usize,
    estimated_iteration_seconds: f64,
}

#[derive(Serialize)]
struct SaBudgeted {
    budget_seconds: f64,
    evaluations: usize,
    improvement: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nodes = if smoke { 2 } else { 16 };
    let cluster = presets::mid_range(nodes).build(3);
    let gpt = GptConfig::gpt_3_1b();
    let cfg = if smoke {
        ParallelConfig::new(4, 2, 2)
    } else {
        ParallelConfig::new(8, 8, 2)
    };
    let plan = MicrobatchPlan::new(64, 2).unwrap();
    let evals = if smoke { 200 } else { 5_000 };

    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
    let gpu = cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let identity = Mapping::identity(cfg, *cluster.topology());
    let block = cfg.tp.max(1);
    let num_blocks = cfg.num_workers() / block;

    // Throughput of the full-estimate path: move, re-estimate everything.
    let mut mapping = identity.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut sink = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..evals {
        let mv = Move::random(&mut rng, num_blocks);
        mv.apply(mapping.as_mut_slice(), block);
        sink += model.estimate(cfg, &mapping, plan, &compute);
    }
    let full_elapsed = t0.elapsed().as_secs_f64();

    // Throughput of the incremental path: same move stream, alternating
    // commit/rollback so both bookkeeping branches are measured.
    let mut mapping = identity.clone();
    let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &mapping);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let t0 = Instant::now();
    for i in 0..evals {
        let mv = Move::random(&mut rng, num_blocks);
        mv.apply(mapping.as_mut_slice(), block);
        sink += obj.propose(mv, &mapping);
        if i % 2 == 0 {
            obj.commit();
        } else {
            obj.rollback();
            mv.inverse().apply(mapping.as_mut_slice(), block);
        }
    }
    let inc_elapsed = t0.elapsed().as_secs_f64();

    let objective = ObjectiveThroughput {
        evaluations: evals,
        full_evals_per_sec: evals as f64 / full_elapsed,
        incremental_evals_per_sec: evals as f64 / inc_elapsed,
        speedup: full_elapsed / inc_elapsed,
    };

    // End-to-end Algorithm 1 on the same cluster, with a modest memory
    // training budget (the estimator is trained once per cluster in
    // practice and its cost is reported separately in Table II).
    let mut options = PipetteOptions::fast_test();
    options.seed = 3;
    if smoke {
        options.sa_top_k = 1;
        options.annealer.iterations = 200;
    }
    let t0 = Instant::now();
    let rec = Pipette::new(&cluster, &gpt, 256, options)
        .run()
        .expect("feasible space");
    let end_to_end = EndToEnd {
        wall_clock_seconds: t0.elapsed().as_secs_f64(),
        examined: rec.examined,
        memory_rejected: rec.memory_rejected,
        estimated_iteration_seconds: rec.estimated_seconds,
    };

    // Fixed-wall-clock SA: how much mapping improvement one budget buys
    // through the incremental objective.
    let budget = if smoke {
        Duration::from_millis(50)
    } else {
        Duration::from_secs(1)
    };
    let sa = Annealer::new(AnnealerConfig {
        time_limit: Some(budget),
        iterations: usize::MAX,
        seed: 2,
        ..Default::default()
    });
    let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &identity);
    let (_, _, stats) = sa.anneal_with(&identity, &mut obj);
    let sa_budgeted = SaBudgeted {
        budget_seconds: budget.as_secs_f64(),
        evaluations: stats.evaluations,
        improvement: stats.improvement(),
    };

    let report = Report {
        smoke,
        cluster: ClusterShape {
            nodes,
            gpus_per_node: cluster.topology().gpus_per_node(),
            pp: cfg.pp,
            tp: cfg.tp,
            dp: cfg.dp,
        },
        objective,
        end_to_end,
        sa_budgeted,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_configurator.json", &json).expect("write BENCH_configurator.json");
    println!("{json}");
    eprintln!(
        "wrote BENCH_configurator.json  (objective speedup: {:.1}x, checksum {sink:.3})",
        report.objective.speedup
    );
}
