//! Extension study: how quickly does an optimized worker mapping go stale
//! as the interconnect drifts (Fig. 3's 40-day wander), and what does
//! periodic re-profiling buy?
//!
//! For each simulated day we measure three placements on that day's true
//! bandwidths: the identity mapping, the mapping annealed once against the
//! day-0 profile (stale), and a mapping re-annealed against a fresh
//! profile (fresh).

use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette_bench::context::ClusterKind;
use pipette_cluster::TemporalDrift;
use pipette_model::{MicrobatchPlan, ParallelConfig};
use pipette_sim::{ComputeProfiler, IterationSim, Mapping};

fn main() {
    let cluster = ClusterKind::MidRange.cluster(8);
    let gpt = ClusterKind::MidRange.model_for_gpus(64);
    let cfg = ParallelConfig::new(2, 4, 8);
    let plan = MicrobatchPlan::new(32, 1).unwrap();
    let gpu = cluster.gpu().clone();
    let days = 40;
    let series = TemporalDrift::default().series(cluster.bandwidth(), days, 2024);
    let identity = Mapping::identity(cfg, *cluster.topology());

    let anneal_against = |matrix: &pipette_cluster::BandwidthMatrix, seed: u64| {
        let (profiled, _) = cluster.profiler().profile(matrix, seed);
        let compute = ComputeProfiler::default().profile(matrix, &gpu, &gpt, cfg, plan, seed);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let sa = Annealer::new(AnnealerConfig {
            iterations: 20_000,
            seed,
            ..Default::default()
        });
        sa.anneal(&identity, |m| model.estimate(cfg, m, plan, &compute))
            .0
    };
    let stale = anneal_against(&series[0], 1);

    println!(
        "drift study — {} cluster, {cfg}, {} days",
        cluster.name(),
        days
    );
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>16}",
        "day", "identity", "stale", "fresh", "stale penalty"
    );
    let mut worst_penalty: f64 = 0.0;
    for (day, matrix) in series.iter().enumerate().step_by(5) {
        let measure = |m: &Mapping| {
            IterationSim::new(matrix, &gpu, &gpt)
                .simulate(cfg, m, plan)
                .total_seconds
        };
        let t_id = measure(&identity);
        let t_stale = measure(&stale);
        let fresh = anneal_against(matrix, 100 + day as u64);
        let t_fresh = measure(&fresh);
        let penalty = t_stale / t_fresh - 1.0;
        worst_penalty = worst_penalty.max(penalty);
        println!(
            "{:<6} {:>8.3} s {:>8.3} s {:>8.3} s {:>15.1}%",
            day,
            t_id,
            t_stale,
            t_fresh,
            penalty * 100.0
        );
    }
    println!(
        "\nworst staleness penalty over {days} days: {:.1}%",
        worst_penalty * 100.0
    );
    println!("(the paper profiles continuously for 40 days — Fig. 3 — precisely because");
    println!(" attained bandwidths drift; this study quantifies the cost of not re-profiling)");
}
