//! Runs every table and figure of the paper in sequence — the full
//! reproduction, as recorded in EXPERIMENTS.md.
use pipette_bench::context::ClusterKind;
use pipette_bench::fig6::Fig6Options;
use pipette_bench::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Fig6Options::quick()
    } else {
        Fig6Options::default()
    };
    let sa = if quick { 4_000 } else { 30_000 };

    table1::print(&table1::run(16));
    fig3::print(&fig3::run(ClusterKind::HighEnd, 8, 40, 2024));
    for kind in ClusterKind::both() {
        fig5a::print(&fig5a::run(kind, 16, 512, 2024));
    }
    fig5b::print(&fig5b::run(ClusterKind::MidRange, 16, 512, 10, 2024));
    for kind in ClusterKind::both() {
        fig6::print(&fig6::run(kind, 16, 512, &opts));
    }
    for kind in ClusterKind::both() {
        fig7::print(&fig7::run(kind, 16, 2024));
    }
    table2::print(&table2::run(512, &opts));
    for kind in ClusterKind::both() {
        fig8::print(&fig8::run(kind, &[32, 64, 96, 128], 256, &opts));
    }
    for kind in ClusterKind::both() {
        fig9::print(&fig9::run_micro_sweep(kind, 16, &[1, 2, 4, 8], sa, 2024));
        fig9::print(&fig9::run_mini_sweep(
            kind,
            16,
            &[64, 128, 256, 512, 1024],
            sa,
            2024,
        ));
    }
}
