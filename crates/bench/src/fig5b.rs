//! Fig. 5b — runnability of the top-10 recommendations.
//!
//! The paper launches the top-10 configurations recommended by AMP and
//! Varuna on the mid-range cluster: 8 of 10 OOM for both, including the
//! top pick. Pipette's memory estimator filters its list, so its
//! recommendations run.

use crate::context::ClusterKind;
use crate::util;
use pipette::baselines::{count_oom_in_top_k, AmpConfigurator, VarunaConfigurator};
use pipette::configurator::{Pipette, PipetteOptions};
use pipette_model::{MicrobatchPlan, ParallelConfig};
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};

/// Top-k OOM counts per method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5bResult {
    /// Cluster label.
    pub cluster: String,
    /// List length examined (paper: 10).
    pub k: usize,
    /// OOM count within AMP's top-k.
    pub amp_oom: usize,
    /// OOM count within Varuna's top-k.
    pub varuna_oom: usize,
    /// OOM count within Pipette's top-k (memory-filtered list).
    pub pipette_oom: usize,
    /// Whether each method's *first* recommendation runs.
    pub amp_top1_runs: bool,
    /// Varuna's first recommendation runs.
    pub varuna_top1_runs: bool,
    /// Pipette's first recommendation runs.
    pub pipette_top1_runs: bool,
}

/// Runs the top-10 runnability comparison (paper: mid-range cluster) with
/// the full memory-estimator training budget.
pub fn run(kind: ClusterKind, nodes: usize, global_batch: u64, k: usize, seed: u64) -> Fig5bResult {
    run_with_training(kind, nodes, global_batch, k, seed, 12_000)
}

/// [`run`] with an explicit memory-estimator training budget (tests and
/// benches use a smaller one).
pub fn run_with_training(
    kind: ClusterKind,
    nodes: usize,
    global_batch: u64,
    k: usize,
    seed: u64,
    mem_iterations: usize,
) -> Fig5bResult {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    let runner = ClusterRun::new(&cluster, &gpt);
    let runner_recompute = ClusterRun::new(&cluster, &gpt).with_recompute(true);
    let limit = cluster.gpu().memory_bytes;

    // The run seed drives every stochastic component: the baselines'
    // compute-profiling noise as well as Pipette's own options below.
    let amp = AmpConfigurator::new(&cluster, &gpt, global_batch)
        .with_seed(seed)
        .top_k(k);
    let varuna = VarunaConfigurator::new(&cluster, &gpt, global_batch)
        .with_seed(seed)
        .top_k(k);

    // Pipette's top-k: the configurator's own ranked list (winner first,
    // then its alternatives, already ordered by the latency estimate and
    // filtered by the memory estimator).
    let mut opts = PipetteOptions::default().latency_only();
    opts.seed = seed;
    opts.memory.train.iterations = mem_iterations;
    let rec = Pipette::new(&cluster, &gpt, global_batch, opts)
        .run()
        // pipette-lint: allow(D2) -- experiment harness over baked-in presets; aborting the figure run is the right failure mode
        .expect("Pipette finds candidates");
    let mut pipette_list: Vec<(ParallelConfig, MicrobatchPlan)> =
        std::iter::once((rec.config, rec.plan))
            .chain(rec.alternatives.iter().map(|a| (a.config, a.plan)))
            .collect();
    pipette_list.truncate(k);
    let pipette_oom = pipette_list
        .iter()
        .filter(|(cfg, plan)| runner.peak_memory(*cfg, *plan).peak_bytes > limit)
        .count();

    let oom = |cfg: ParallelConfig, plan: MicrobatchPlan, rec: bool| {
        let r = if rec { &runner_recompute } else { &runner };
        r.peak_memory(cfg, plan).peak_bytes > limit
    };

    Fig5bResult {
        cluster: kind.label().to_owned(),
        k,
        amp_oom: count_oom_in_top_k(&amp, &runner, k),
        varuna_oom: count_oom_in_top_k(&varuna, &runner_recompute, k),
        pipette_oom,
        amp_top1_runs: amp
            .first()
            .map(|c| !oom(c.config, c.plan, false))
            .unwrap_or(false),
        varuna_top1_runs: varuna
            .first()
            .map(|c| !oom(c.config, c.plan, true))
            .unwrap_or(false),
        pipette_top1_runs: pipette_list
            .first()
            .map(|(c, p)| !oom(*c, *p, false))
            .unwrap_or(false),
    }
}

/// Prints the comparison with paper reference values.
pub fn print(r: &Fig5bResult) {
    println!(
        "Fig. 5b — OOM configurations among the top-{} recommendations ({} cluster)",
        r.k, r.cluster
    );
    util::rule(72);
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "method", "OOM in top-10", "top-1 runs", "paper OOM"
    );
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "AMP",
        r.amp_oom,
        yes_no(r.amp_top1_runs),
        "8/10 (top-1 OOM)"
    );
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "Varuna",
        r.varuna_oom,
        yes_no(r.varuna_top1_runs),
        "8/10 (top-1 OOM)"
    );
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "Pipette",
        r.pipette_oom,
        yes_no(r.pipette_top1_runs),
        "0/10"
    );
    println!();
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_recommend_oom_pipette_does_not() {
        let r = run_with_training(ClusterKind::MidRange, 8, 256, 10, 5, 3_000);
        assert!(
            r.amp_oom >= 5,
            "AMP should OOM most of its top-10: {}",
            r.amp_oom
        );
        assert!(
            r.varuna_oom >= 3,
            "Varuna should OOM several of its top-10: {}",
            r.varuna_oom
        );
        assert_eq!(r.pipette_oom, 0, "Pipette must not recommend OOM configs");
        assert!(r.pipette_top1_runs);
    }
}
