//! Fig. 5a — latency-estimation accuracy of Pipette vs AMP.
//!
//! The paper reports 5.87 % MAPE for Pipette's latency estimator against
//! real iteration times, vs 23.18 % for AMP's Eq. 1 model. We sample every
//! runnable configuration of the target cluster, estimate with both
//! models, and compare against the ground-truth simulator.

use crate::context::ClusterKind;
use crate::util;
use pipette::latency::{AmpLatencyModel, Eq1Flavor, PipetteLatencyModel};
use pipette_model::{BatchConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, ComputeProfiler, IterationSim, Mapping};
use serde::{Deserialize, Serialize};

/// One estimated configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatePoint {
    /// The configuration.
    pub config: ParallelConfig,
    /// Microbatch size.
    pub micro_batch: u64,
    /// Ground-truth iteration time (seconds).
    pub truth: f64,
    /// Pipette's estimate.
    pub pipette: f64,
    /// AMP's (Eq. 1) estimate.
    pub amp: f64,
}

/// Full experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5aResult {
    /// Cluster label.
    pub cluster: String,
    /// Sampled points (runnable configurations only).
    pub points: Vec<EstimatePoint>,
}

impl Fig5aResult {
    /// Pipette estimator MAPE.
    pub fn pipette_mape(&self) -> f64 {
        let (p, t): (Vec<f64>, Vec<f64>) = self.points.iter().map(|x| (x.pipette, x.truth)).unzip();
        util::mape(&p, &t)
    }

    /// AMP model MAPE.
    pub fn amp_mape(&self) -> f64 {
        let (p, t): (Vec<f64>, Vec<f64>) = self.points.iter().map(|x| (x.amp, x.truth)).unzip();
        util::mape(&p, &t)
    }
}

/// Evaluates both estimators over every runnable configuration of the
/// cluster at `global_batch`.
pub fn run(kind: ClusterKind, nodes: usize, global_batch: u64, seed: u64) -> Fig5aResult {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    let runner = ClusterRun::new(&cluster, &gpt);
    let gpu = cluster.gpu().clone();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), seed);
    let ppt_model = PipetteLatencyModel::new(&profiled, &gpt);
    // Fig. 5a measures Eq. 1 exactly as the paper writes it (scalar C).
    let amp_model =
        AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt).with_flavor(Eq1Flavor::Scalar);
    let profiler = ComputeProfiler::default();
    let topo = cluster.topology();

    let mut points = Vec::new();
    for cfg in ParallelConfig::enumerate(topo.num_gpus(), topo.gpus_per_node(), gpt.n_layers) {
        let Ok(mini) = BatchConfig::new(global_batch).minibatch(cfg.dp) else {
            continue;
        };
        for plan in MicrobatchPlan::enumerate(mini, 8) {
            if runner.peak_memory(cfg, plan).peak_bytes > cluster.gpu().memory_bytes {
                continue;
            }
            let mapping = Mapping::identity(cfg, *topo);
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let compute = profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, seed ^ 0x5a);
            let pipette = ppt_model.estimate(cfg, &mapping, plan, &compute);
            let amp = amp_model.estimate(cfg, plan, &compute);
            points.push(EstimatePoint {
                config: cfg,
                micro_batch: plan.micro_batch,
                truth,
                pipette,
                amp,
            });
        }
    }
    Fig5aResult {
        cluster: kind.label().to_owned(),
        points,
    }
}

/// Prints the MAPE comparison and the worst offenders.
pub fn print(r: &Fig5aResult) {
    println!(
        "Fig. 5a — latency estimation accuracy ({} cluster, {} runnable configs)",
        r.cluster,
        r.points.len()
    );
    util::rule(78);
    println!("{:<22} {:>12} {:>12}", "estimator", "measured", "paper");
    println!(
        "{:<22} {:>11.2}% {:>12}",
        "AMP (Eq. 1)",
        r.amp_mape() * 100.0,
        "23.18%"
    );
    println!(
        "{:<22} {:>11.2}% {:>12}",
        "Pipette (Eqs. 3-6)",
        r.pipette_mape() * 100.0,
        "5.87%"
    );
    util::rule(78);
    let mut worst: Vec<&EstimatePoint> = r.points.iter().collect();
    worst.sort_by(|a, b| {
        let ea = (a.amp - a.truth).abs() / a.truth;
        let eb = (b.amp - b.truth).abs() / b.truth;
        eb.total_cmp(&ea)
    });
    println!("worst AMP mis-estimates:");
    for p in worst.iter().take(4) {
        println!(
            "  {} micro={}: truth {:.3}s  amp {:.3}s ({:+.1}%)  pipette {:.3}s ({:+.1}%)",
            p.config,
            p.micro_batch,
            p.truth,
            p.amp,
            (p.amp / p.truth - 1.0) * 100.0,
            p.pipette,
            (p.pipette / p.truth - 1.0) * 100.0,
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipette_is_far_more_accurate_than_amp() {
        let r = run(ClusterKind::MidRange, 8, 256, 3);
        assert!(r.points.len() >= 6, "need a population: {}", r.points.len());
        let (ppt, amp) = (r.pipette_mape(), r.amp_mape());
        assert!(ppt < 0.10, "Pipette MAPE too high: {ppt:.3}");
        assert!(
            amp > 2.0 * ppt,
            "AMP {amp:.3} should be much worse than Pipette {ppt:.3}"
        );
    }
}
