//! Fig. 8 — cluster/model-size scalability.
//!
//! Weak-scaling sweep: 32→128 GPUs with the model grown alongside
//! (following Megatron-LM practice). The paper reports Pipette keeps a
//! 1.02–1.17× speedup over AMP even on smaller clusters where
//! heterogeneity has fewer links to express itself.

use crate::context::ClusterKind;
use crate::fig6::{self, Fig6Options};
use crate::util;
use serde::{Deserialize, Serialize};

/// One weak-scaling point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// GPUs used.
    pub n_gpus: usize,
    /// Model size (billions).
    pub model_billions: f64,
    /// AMP's measured iteration time.
    pub amp_seconds: f64,
    /// Pipette's (PPT-LF) measured iteration time.
    pub pipette_seconds: f64,
}

impl ScalePoint {
    /// Speedup of Pipette over AMP.
    pub fn speedup(&self) -> f64 {
        self.amp_seconds / self.pipette_seconds
    }
}

/// The sweep result for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Cluster label.
    pub cluster: String,
    /// One point per GPU count.
    pub points: Vec<ScalePoint>,
}

/// Runs the weak-scaling sweep over `gpu_counts` (the paper uses
/// 32/64/96/128; 96 is skipped when the node count is not divisible).
pub fn run(
    kind: ClusterKind,
    gpu_counts: &[usize],
    global_batch: u64,
    opts: &Fig6Options,
) -> Fig8Result {
    let mut points = Vec::new();
    for &g in gpu_counts {
        debug_assert!(g % 8 == 0, "GPU counts must be whole nodes");
        let nodes = g / 8;
        let r = fig6::run(kind, nodes, global_batch, opts);
        let model = kind.model_for_gpus(g);
        points.push(ScalePoint {
            n_gpus: g,
            model_billions: model.size_billions(),
            amp_seconds: r.seconds_of("AMP"),
            pipette_seconds: r.seconds_of("PPT-LF"),
        });
    }
    Fig8Result {
        cluster: kind.label().to_owned(),
        points,
    }
}

/// Prints the sweep with the paper's reference band.
pub fn print(r: &Fig8Result) {
    println!(
        "Fig. 8 — weak-scaling speedup of Pipette over AMP ({} cluster)",
        r.cluster
    );
    util::rule(78);
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10} {:>14}",
        "GPUs", "model", "AMP", "Pipette", "speedup", "paper band"
    );
    for p in &r.points {
        println!(
            "{:<8} {:>8.1}B {:>12} {:>12} {:>9.2}x {:>14}",
            p.n_gpus,
            p.model_billions,
            util::secs(p.amp_seconds),
            util::secs(p.pipette_seconds),
            p.speedup(),
            "1.02-1.17x"
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_holds_across_scales() {
        let r = run(ClusterKind::MidRange, &[32, 64], 256, &Fig6Options::quick());
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(
                p.speedup() > 0.97,
                "Pipette should not lose at {} GPUs: {:.3}",
                p.n_gpus,
                p.speedup()
            );
            assert!(p.pipette_seconds.is_finite());
        }
    }
}
