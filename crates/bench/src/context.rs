//! Shared experiment context: the two Table-I clusters and their default
//! models/batches.

use pipette_cluster::{presets, Cluster};
use pipette_model::GptConfig;

/// Master seed for all experiments (change to re-draw the synthetic
/// cluster).
pub const MASTER_SEED: u64 = 2024;

/// Which of the paper's two clusters an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// 16 × 8 V100, IB-EDR (Table I top).
    MidRange,
    /// 16 × 8 A100, IB-HDR (Table I bottom).
    HighEnd,
}

impl ClusterKind {
    /// Short label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            ClusterKind::MidRange => "mid-range",
            ClusterKind::HighEnd => "high-end",
        }
    }

    /// Builds the cluster with `nodes` nodes.
    pub fn cluster(&self, nodes: usize) -> Cluster {
        match self {
            ClusterKind::MidRange => presets::mid_range(nodes).build(MASTER_SEED),
            ClusterKind::HighEnd => presets::high_end(nodes).build(MASTER_SEED ^ 0x9e37),
        }
    }

    /// The default (128-GPU) evaluation model: 3.1B mid-range, 11.1B
    /// high-end (§VII-A).
    pub fn default_model(&self) -> GptConfig {
        match self {
            ClusterKind::MidRange => GptConfig::gpt_3_1b(),
            ClusterKind::HighEnd => GptConfig::gpt_11_1b(),
        }
    }

    /// Weak-scaled model for a given GPU count (Fig. 8, Table II).
    pub fn model_for_gpus(&self, n_gpus: usize) -> GptConfig {
        match self {
            ClusterKind::MidRange => GptConfig::mid_range_for_gpus(n_gpus),
            ClusterKind::HighEnd => GptConfig::high_end_for_gpus(n_gpus),
        }
    }

    /// Both clusters, for experiments that sweep them.
    pub fn both() -> [ClusterKind; 2] {
        [ClusterKind::MidRange, ClusterKind::HighEnd]
    }
}

/// The paper's default global batch (it evaluates 128–512; we use 512 for
/// the headline runs, matching the largest minibatch sweep point).
pub const DEFAULT_GLOBAL_BATCH: u64 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_match_table_one() {
        let mid = ClusterKind::MidRange.cluster(16);
        assert_eq!(mid.topology().num_gpus(), 128);
        assert_eq!(mid.gpu().name, "V100");
        let high = ClusterKind::HighEnd.cluster(16);
        assert_eq!(high.gpu().name, "A100");
    }

    #[test]
    fn default_models_match_paper() {
        assert!((ClusterKind::MidRange.default_model().size_billions() - 3.1).abs() < 0.2);
        assert!((ClusterKind::HighEnd.default_model().size_billions() - 11.1).abs() < 0.4);
    }
}
