//! Fig. 9 — micro/minibatch-size sensitivity.
//!
//! Two sweeps on the default clusters, comparing Pipette (PPT-LF) against
//! AMP when the batch shape is pinned:
//!
//! * microbatch ∈ {1, 2, 4, 8} with the minibatch fixed at 256;
//! * minibatch ∈ {64 … 1024} with the microbatch fixed at 8.
//!
//! The paper reports a stable 1.14–1.44× speedup across all settings.

use crate::context::ClusterKind;
use crate::util;
use pipette::baselines::{first_runnable, AmpConfigurator};
use pipette::configurator::{Pipette, PipetteOptions};
use pipette::mapping::AnnealerConfig;
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};

/// One sensitivity point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The pinned value (micro- or minibatch size).
    pub pinned: u64,
    /// AMP's measured iteration time (seconds; INFINITY if nothing ran).
    pub amp_seconds: f64,
    /// Pipette's measured iteration time.
    pub pipette_seconds: f64,
}

impl SensitivityPoint {
    /// Speedup of Pipette over AMP.
    pub fn speedup(&self) -> f64 {
        self.amp_seconds / self.pipette_seconds
    }
}

/// Result of one sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Cluster label.
    pub cluster: String,
    /// Which quantity the sweep pins ("microbatch" / "minibatch").
    pub sweep: String,
    /// Sweep points.
    pub points: Vec<SensitivityPoint>,
}

fn run_pinned(
    kind: ClusterKind,
    nodes: usize,
    global_batch: u64,
    micro: u64,
    sa_iterations: usize,
    seed: u64,
) -> (f64, f64) {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    let runner = ClusterRun::new(&cluster, &gpt);

    // AMP with the microbatch capped at `micro` (both tools sweep the
    // same cap: "recent works use microbatch sizes from 1 to 8").
    let ranked: Vec<_> = AmpConfigurator::new(&cluster, &gpt, global_batch)
        .with_max_micro(micro)
        .rank();
    let amp_seconds = first_runnable(&ranked, &runner)
        .map(|h| h.measured.iteration_seconds)
        .unwrap_or(f64::INFINITY);

    // Pipette under the same cap.
    let mut memory = pipette::memory::MemoryEstimatorConfig::default();
    memory.train.iterations = 3_000;
    let opts = PipetteOptions {
        max_micro: micro,
        annealer: AnnealerConfig {
            iterations: sa_iterations,
            ..AnnealerConfig::default()
        },
        seed,
        memory,
        ..PipetteOptions::default()
    };
    let pipette_seconds = match Pipette::new(&cluster, &gpt, global_batch, opts).run() {
        Ok(rec) => crate::util::launch_recommendation(&rec, &runner)
            .map(|(_, _, m, _)| m.iteration_seconds)
            .unwrap_or(f64::INFINITY),
        Err(_) => f64::INFINITY,
    };
    (amp_seconds, pipette_seconds)
}

/// Microbatch sweep at fixed minibatch (paper: minibatch 256).
pub fn run_micro_sweep(
    kind: ClusterKind,
    nodes: usize,
    micros: &[u64],
    sa_iterations: usize,
    seed: u64,
) -> Fig9Result {
    // Paper fixes the minibatch at 256 for the microbatch sensitivity.
    let global_batch = 256;
    let points = micros
        .iter()
        .map(|&m| {
            let (amp, ppt) = run_pinned(kind, nodes, global_batch, m, sa_iterations, seed);
            SensitivityPoint {
                pinned: m,
                amp_seconds: amp,
                pipette_seconds: ppt,
            }
        })
        .collect();
    Fig9Result {
        cluster: kind.label().to_owned(),
        sweep: "microbatch".into(),
        points,
    }
}

/// Minibatch sweep at fixed microbatch (paper: microbatch 8).
pub fn run_mini_sweep(
    kind: ClusterKind,
    nodes: usize,
    minis: &[u64],
    sa_iterations: usize,
    seed: u64,
) -> Fig9Result {
    let points = minis
        .iter()
        .map(|&global| {
            let (amp, ppt) = run_pinned(kind, nodes, global, 8, sa_iterations, seed);
            SensitivityPoint {
                pinned: global,
                amp_seconds: amp,
                pipette_seconds: ppt,
            }
        })
        .collect();
    Fig9Result {
        cluster: kind.label().to_owned(),
        sweep: "minibatch".into(),
        points,
    }
}

/// Prints a sweep.
pub fn print(r: &Fig9Result) {
    println!(
        "Fig. 9 — {} sensitivity ({} cluster); paper: stable 1.14-1.44x over AMP",
        r.sweep, r.cluster
    );
    util::rule(70);
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        r.sweep.as_str(),
        "AMP",
        "Pipette",
        "speedup"
    );
    for p in &r.points {
        println!(
            "{:<12} {:>12} {:>12} {:>9.2}x",
            p.pinned,
            util::secs(p.amp_seconds),
            util::secs(p.pipette_seconds),
            p.speedup()
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_sensitivity_never_loses() {
        let r = run_micro_sweep(ClusterKind::MidRange, 4, &[1, 2], 3_000, 3);
        for p in &r.points {
            assert!(
                p.pipette_seconds.is_finite(),
                "Pipette must run at micro={}",
                p.pinned
            );
            assert!(
                p.speedup() > 0.97,
                "Pipette should match or beat AMP at micro={}: {:.3}",
                p.pinned,
                p.speedup()
            );
        }
    }
}
