//! Fig. 6 — training time and speedup of Pipette vs the baselines.
//!
//! Five methods configure the same cluster/model/global-batch, and every
//! recommendation is *executed* on the ground-truth simulator:
//!
//! * **MLM** — hand-tuned Megatron-LM (tp = 8, expert trials);
//! * **VR** — Varuna (pipeline-only, activation recomputation);
//! * **AMP** — Eq. 1 ranking, first runnable candidate from the top;
//! * **PPT-L** — Pipette's latency + memory estimators, identity mapping;
//! * **PPT-LF** — PPT-L plus fine-grained worker dedication.

use crate::context::ClusterKind;
use crate::util;
use pipette::baselines::{first_runnable, AmpConfigurator, MegatronTuner, VarunaConfigurator};
use pipette::configurator::{Pipette, PipetteOptions};
use pipette::mapping::AnnealerConfig;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};

/// One method's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method label (MLM/VR/AMP/PPT-L/PPT-LF).
    pub method: String,
    /// Chosen configuration (None if the method found nothing runnable).
    pub config: Option<ParallelConfig>,
    /// Chosen microbatch plan.
    pub plan: Option<MicrobatchPlan>,
    /// Measured iteration time on the ground-truth cluster (seconds;
    /// `f64::INFINITY` if nothing ran).
    pub iteration_seconds: f64,
    /// Cluster launches spent reaching a runnable configuration.
    pub launches: usize,
}

/// Full Fig. 6 panel for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Cluster label.
    pub cluster: String,
    /// Model evaluated.
    pub model: String,
    /// Global batch size.
    pub global_batch: u64,
    /// Per-method outcomes.
    pub rows: Vec<MethodResult>,
}

impl Fig6Result {
    /// Iteration time of a method by label.
    pub fn seconds_of(&self, method: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.method == method)
            .map(|r| r.iteration_seconds)
            .unwrap_or(f64::INFINITY)
    }

    /// Speedup of `a` over `b` (`t_b / t_a`).
    pub fn speedup(&self, a: &str, b: &str) -> f64 {
        self.seconds_of(b) / self.seconds_of(a)
    }
}

/// Experiment scale knobs (the full run anneals longer).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Options {
    /// SA iterations per annealed candidate.
    pub sa_iterations: usize,
    /// Candidates that get an SA pass.
    pub sa_top_k: usize,
    /// Memory-estimator training iterations.
    pub mem_iterations: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig6Options {
    fn default() -> Self {
        Self {
            sa_iterations: 30_000,
            sa_top_k: 4,
            mem_iterations: 8_000,
            seed: 7,
        }
    }
}

impl Fig6Options {
    /// Reduced budget for criterion benches and CI.
    pub fn quick() -> Self {
        Self {
            sa_iterations: 4_000,
            sa_top_k: 2,
            mem_iterations: 2_000,
            seed: 7,
        }
    }

    /// Pipette options implementing this budget.
    pub fn pipette_options(&self) -> PipetteOptions {
        let mut memory = pipette::memory::MemoryEstimatorConfig::default();
        memory.train.iterations = self.mem_iterations;
        PipetteOptions {
            annealer: AnnealerConfig {
                iterations: self.sa_iterations,
                ..AnnealerConfig::default()
            },
            sa_top_k: self.sa_top_k,
            memory,
            seed: self.seed,
            ..PipetteOptions::default()
        }
    }
}

/// Runs the five methods on one cluster.
pub fn run(kind: ClusterKind, nodes: usize, global_batch: u64, opts: &Fig6Options) -> Fig6Result {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    run_on(&cluster, &gpt, global_batch, opts, kind.label())
}

/// Runs the five methods on an explicit cluster/model pair.
pub fn run_on(
    cluster: &pipette_cluster::Cluster,
    gpt: &GptConfig,
    global_batch: u64,
    opts: &Fig6Options,
    label: &str,
) -> Fig6Result {
    let run = ClusterRun::new(cluster, gpt);
    let run_recompute = ClusterRun::new(cluster, gpt).with_recompute(true);
    let mut rows = Vec::new();

    // MLM: expert trials with tp = node size.
    let mlm = MegatronTuner::new(cluster, gpt, global_batch).tune(&run);
    rows.push(match mlm {
        Some(t) => MethodResult {
            method: "MLM".into(),
            config: Some(t.config),
            plan: Some(t.plan),
            iteration_seconds: t.measured.iteration_seconds,
            launches: t.trials,
        },
        None => none_row("MLM"),
    });

    // Varuna: pipeline-only ranking, walks its list with recomputation on.
    let vr_ranked = VarunaConfigurator::new(cluster, gpt, global_batch).rank();
    rows.push(match first_runnable(&vr_ranked, &run_recompute) {
        Some(hit) => MethodResult {
            method: "VR".into(),
            config: Some(hit.candidate.config),
            plan: Some(hit.candidate.plan),
            iteration_seconds: hit.measured.iteration_seconds,
            launches: hit.attempts,
        },
        None => none_row("VR"),
    });

    // AMP: Eq. 1 ranking, manually tested top-down.
    let amp_ranked = AmpConfigurator::new(cluster, gpt, global_batch).rank();
    rows.push(match first_runnable(&amp_ranked, &run) {
        Some(hit) => MethodResult {
            method: "AMP".into(),
            config: Some(hit.candidate.config),
            plan: Some(hit.candidate.plan),
            iteration_seconds: hit.measured.iteration_seconds,
            launches: hit.attempts,
        },
        None => none_row("AMP"),
    });

    // Pipette ablations. Train the memory estimator once, share it.
    let base = Pipette::new(cluster, gpt, global_batch, opts.pipette_options());
    let (estimator, _, _) = base.train_memory_estimator();

    let ppt_l = Pipette::new(
        cluster,
        gpt,
        global_batch,
        opts.pipette_options().latency_only(),
    )
    .with_memory_estimator(estimator.clone())
    .run();
    rows.push(execute_recommendation("PPT-L", ppt_l, &run));

    let ppt_lf = Pipette::new(cluster, gpt, global_batch, opts.pipette_options())
        .with_memory_estimator(estimator)
        .run();
    rows.push(execute_recommendation("PPT-LF", ppt_lf, &run));

    Fig6Result {
        cluster: label.to_owned(),
        model: gpt.to_string(),
        global_batch,
        rows,
    }
}

fn none_row(method: &str) -> MethodResult {
    MethodResult {
        method: method.to_owned(),
        config: None,
        plan: None,
        iteration_seconds: f64::INFINITY,
        launches: 0,
    }
}

fn execute_recommendation(
    method: &str,
    rec: Result<pipette::Recommendation, pipette::ConfigureError>,
    run: &ClusterRun<'_>,
) -> MethodResult {
    let Ok(rec) = rec else {
        return none_row(method);
    };
    // Launch the top recommendation; on the (rare) OOM miss of the memory
    // estimator, walk the rest of the list like any practitioner would —
    // `launches` records the attempts, comparable to the baselines'.
    match crate::util::launch_recommendation(&rec, run) {
        Some((cfg, plan, m, launches)) => MethodResult {
            method: method.to_owned(),
            config: Some(cfg),
            plan: Some(plan),
            iteration_seconds: m.iteration_seconds,
            launches,
        },
        None => none_row(method),
    }
}

/// Prints one panel in the paper's format, with the paper's speedups for
/// reference.
pub fn print(result: &Fig6Result) {
    println!(
        "Fig. 6 — {} cluster, {}, global batch {}",
        result.cluster, result.model, result.global_batch
    );
    util::rule(92);
    println!(
        "{:<8} {:>20} {:>6} {:>6} {:>12} {:>9} {:>8}",
        "method", "(pp,tp,dp)", "micro", "n_mb", "iter time", "launches", "vs MLM"
    );
    util::rule(92);
    let mlm = result.seconds_of("MLM");
    for r in &result.rows {
        let cfg = r
            .config
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        let (micro, n_mb) = r
            .plan
            .map(|p| (p.micro_batch.to_string(), p.n_microbatches.to_string()))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "{:<8} {:>20} {:>6} {:>6} {:>12} {:>9} {:>7.2}x",
            r.method,
            cfg,
            micro,
            n_mb,
            util::secs(r.iteration_seconds),
            r.launches,
            mlm / r.iteration_seconds
        );
    }
    util::rule(92);
    let paper: &[(&str, &str, f64, f64)] = &[
        ("PPT-L", "VR", 1.36, 1.56),
        ("PPT-L", "AMP", 1.06, 1.35),
        ("PPT-LF", "AMP", 1.12, 1.46),
        ("PPT-LF", "MLM", 1.07, 1.26),
    ];
    println!(
        "{:<20} {:>10} {:>18}",
        "speedup", "measured", "paper (mid/high)"
    );
    for (a, b, mid, high) in paper {
        println!(
            "{:<20} {:>9.2}x {:>13.2}/{:.2}x",
            format!("{a} over {b}"),
            result.speedup(a, b),
            mid,
            high
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_preserves_ordering_on_small_cluster() {
        // 4 nodes, weak-scaled model: the ordering VR slowest, Pipette no
        // worse than AMP, must already be visible.
        let r = run(ClusterKind::MidRange, 4, 128, &Fig6Options::quick());
        let vr = r.seconds_of("VR");
        let amp = r.seconds_of("AMP");
        let lf = r.seconds_of("PPT-LF");
        assert!(lf.is_finite(), "Pipette must produce a runnable config");
        assert!(
            amp.is_finite(),
            "AMP must eventually find a runnable config"
        );
        assert!(
            vr > amp,
            "pipeline-only Varuna should lose to AMP: {vr} vs {amp}"
        );
        assert!(
            lf <= amp * 1.02,
            "Pipette should not lose to AMP: {lf} vs {amp}"
        );
    }
}
