//! Table II — configuration overhead of Pipette.
//!
//! For 8- and 16-node slices of both clusters (with the paper's
//! weak-scaled models: 1.1B/3.1B on mid-range, 8.1B/11.1B on high-end):
//! bandwidth-profiling seconds, simulated-annealing seconds, memory-
//! estimation seconds, the total as a fraction of a 300K-iteration
//! training run, and the days saved over AMP's configuration.

use crate::context::ClusterKind;
use crate::fig6::Fig6Options;
use crate::util;
use pipette::baselines::{first_runnable, AmpConfigurator};
use pipette::configurator::Pipette;
use pipette::report::training_days;
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};

/// Training iterations of a full run (the paper follows Megatron-LM's
/// 300K).
pub const FULL_RUN_ITERATIONS: u64 = 300_000;

/// One Table II column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Cluster label.
    pub cluster: String,
    /// Nodes used.
    pub nodes: usize,
    /// Model size in billions.
    pub model_billions: f64,
    /// Bandwidth profiling seconds (simulated cluster wall-clock).
    pub profiling_s: f64,
    /// Simulated annealing seconds (host wall-clock actually spent).
    pub annealing_s: f64,
    /// Memory-estimator inference seconds.
    pub mem_estimation_s: f64,
    /// Total configuration minutes.
    pub total_min: f64,
    /// Overhead as a percentage of the 300K-iteration run.
    pub overhead_pct: f64,
    /// AMP's full-run projection (days).
    pub amp_days: f64,
    /// Pipette's full-run projection (days).
    pub pipette_days: f64,
    /// Days saved.
    pub saved_days: f64,
}

/// Runs the overhead analysis for one (cluster, nodes) cell.
pub fn run_cell(
    kind: ClusterKind,
    nodes: usize,
    global_batch: u64,
    opts: &Fig6Options,
) -> Table2Row {
    let cluster = kind.cluster(nodes);
    let gpt = kind.model_for_gpus(cluster.topology().num_gpus());
    let runner = ClusterRun::new(&cluster, &gpt);

    let ranked = AmpConfigurator::new(&cluster, &gpt, global_batch).rank();
    let amp_seconds = first_runnable(&ranked, &runner)
        .map(|h| h.measured.iteration_seconds)
        .unwrap_or(f64::INFINITY);

    let rec = Pipette::new(&cluster, &gpt, global_batch, opts.pipette_options())
        .run()
        // pipette-lint: allow(D2) -- experiment harness over baked-in presets; aborting the table run is the right failure mode
        .expect("Pipette must find a configuration");
    let pipette_seconds = runner
        .execute(rec.config, &rec.mapping, rec.plan)
        .map(|m| m.iteration_seconds)
        .unwrap_or(f64::INFINITY);

    let overhead = rec.overhead;
    let total = overhead.total().as_secs_f64();
    Table2Row {
        cluster: kind.label().to_owned(),
        nodes,
        model_billions: gpt.size_billions(),
        profiling_s: overhead.bandwidth_profiling.as_secs_f64(),
        annealing_s: overhead.simulated_annealing.as_secs_f64(),
        mem_estimation_s: overhead.memory_estimation.as_secs_f64(),
        total_min: total / 60.0,
        overhead_pct: overhead.overhead_fraction(pipette_seconds, FULL_RUN_ITERATIONS) * 100.0,
        amp_days: training_days(amp_seconds, FULL_RUN_ITERATIONS),
        pipette_days: training_days(pipette_seconds, FULL_RUN_ITERATIONS),
        saved_days: training_days(amp_seconds - pipette_seconds, FULL_RUN_ITERATIONS),
    }
}

/// Runs all four Table II cells.
pub fn run(global_batch: u64, opts: &Fig6Options) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for kind in ClusterKind::both() {
        for nodes in [8usize, 16] {
            rows.push(run_cell(kind, nodes, global_batch, opts));
        }
    }
    rows
}

/// Prints Table II with the paper's reference values.
pub fn print(rows: &[Table2Row]) {
    println!("Table II — configuration overhead of Pipette (300K-iteration run)");
    util::rule(112);
    println!(
        "{:<11} {:>6} {:>7} {:>11} {:>9} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "cluster",
        "nodes",
        "model",
        "profiling",
        "SA",
        "mem-est",
        "total",
        "overhead",
        "AMP",
        "Pipette",
        "saved"
    );
    for r in rows {
        println!(
            "{:<11} {:>6} {:>6.1}B {:>9.1} s {:>7.1} s {:>7.3} s {:>6.1} min {:>8.3}% {:>7.1} d {:>7.1} d {:>7.1} d",
            r.cluster,
            r.nodes,
            r.model_billions,
            r.profiling_s,
            r.annealing_s,
            r.mem_estimation_s,
            r.total_min,
            r.overhead_pct,
            r.amp_days,
            r.pipette_days,
            r.saved_days
        );
    }
    util::rule(112);
    println!("paper: profiling 58-239 s, SA 640-790 s, mem-est 0.03-0.05 s, total 10.7-16.9 min,");
    println!("       overhead 0.02-0.05 %, savings 0.97 / 2.33 / 5.25 / 10.97 days");
    println!("note: our SA column is host wall-clock of this reproduction's annealing budget,");
    println!("      not the paper's fixed 10 s-per-candidate cluster-side budget.");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_negligible_and_savings_positive() {
        let row = run_cell(ClusterKind::MidRange, 8, 256, &Fig6Options::quick());
        assert!(row.profiling_s > 30.0, "profiling models Table II seconds");
        assert!(
            row.overhead_pct < 0.2,
            "overhead must be tiny: {}",
            row.overhead_pct
        );
        assert!(row.pipette_days.is_finite());
        assert!(
            row.saved_days > -0.5,
            "Pipette should not cost days vs AMP: {}",
            row.saved_days
        );
    }
}
