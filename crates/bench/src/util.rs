//! Small shared helpers for experiment output.

use pipette::Recommendation;
use pipette_model::{MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, Mapping, Measured};

/// Launches a Pipette recommendation, falling back to its runner-up list
/// on OOM (the practitioner protocol; `launches` counts attempts).
pub fn launch_recommendation(
    rec: &Recommendation,
    run: &ClusterRun<'_>,
) -> Option<(ParallelConfig, MicrobatchPlan, Measured, usize)> {
    if let Ok(m) = run.execute(rec.config, &rec.mapping, rec.plan) {
        return Some((rec.config, rec.plan, m, 1));
    }
    let mut launches = 1;
    for alt in &rec.alternatives {
        let (cfg, plan) = (alt.config, alt.plan);
        launches += 1;
        let mapping = Mapping::identity(cfg, *run.cluster().topology());
        if let Ok(m) = run.execute(cfg, &mapping, plan) {
            return Some((cfg, plan, m, launches));
        }
    }
    None
}

/// Mean absolute percentage error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    debug_assert_eq!(pred.len(), truth.len(), "length mismatch");
    debug_assert!(!pred.is_empty(), "need at least one point");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t)
        .sum::<f64>()
        / pred.len() as f64
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats seconds compactly.
pub fn secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Formats bytes as GiB.
pub fn gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_of_exact_is_zero() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mape_of_double_is_one() {
        assert!((mape(&[2.0, 4.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(0.5), "500.0 ms");
        assert_eq!(secs(2.0), "2.00 s");
        assert_eq!(secs(600.0), "10.0 min");
        assert_eq!(gib(1 << 30), "1.00 GiB");
    }
}
