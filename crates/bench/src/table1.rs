//! Table I — the experimental environments.
//!
//! Prints the two synthetic clusters side by side with the paper's
//! hardware table, so a reader can check what the substitution preserves.

use crate::context::ClusterKind;
use crate::util;
use serde::{Deserialize, Serialize};

/// One cluster's specification row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpecRow {
    /// Cluster label.
    pub cluster: String,
    /// GPU name.
    pub gpu: String,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Node count.
    pub nodes: usize,
    /// Nominal inter-node bandwidth (GiB/s).
    pub inter_gib_s: f64,
    /// Nominal intra-node bandwidth (GiB/s).
    pub intra_gib_s: f64,
    /// GPU memory (GiB).
    pub gpu_memory_gib: f64,
    /// Mean attained inter-node bandwidth (GiB/s) — the synthetic
    /// cluster's realized heterogeneity.
    pub attained_inter_gib_s: f64,
}

/// Builds the specification rows for both clusters.
pub fn run(nodes: usize) -> Vec<ClusterSpecRow> {
    ClusterKind::both()
        .iter()
        .map(|kind| {
            let c = kind.cluster(nodes);
            let bw = c.bandwidth();
            ClusterSpecRow {
                cluster: kind.label().to_owned(),
                gpu: c.gpu().name.clone(),
                gpus_per_node: c.topology().gpus_per_node(),
                nodes: c.topology().num_nodes(),
                inter_gib_s: bw.inter_spec().bandwidth_gib_s,
                intra_gib_s: bw.intra_spec().bandwidth_gib_s,
                gpu_memory_gib: c.gpu().memory_gib(),
                attained_inter_gib_s: bw.mean_inter_node(),
            }
        })
        .collect()
}

/// Prints Table I.
pub fn print(rows: &[ClusterSpecRow]) {
    println!("Table I — experimental environments (synthetic stand-ins for the paper's clusters)");
    util::rule(100);
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>14} {:>14} {:>16} {:>10}",
        "cluster",
        "GPU",
        "nodes",
        "GPUs",
        "inter nominal",
        "inter attained",
        "intra nominal",
        "GPU mem"
    );
    for r in rows {
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>10.1} GiB/s {:>10.1} GiB/s {:>12.1} GiB/s {:>7.0} GiB",
            r.cluster,
            r.gpu,
            r.nodes,
            r.nodes * r.gpus_per_node,
            r.inter_gib_s,
            r.attained_inter_gib_s,
            r.intra_gib_s,
            r.gpu_memory_gib
        );
    }
    println!("paper: mid-range = 16x8 V100, IB-EDR 100 Gb/s, NVLink 300 GB/s;");
    println!("       high-end  = 16x8 A100, IB-HDR 200 Gb/s, NVSwitch 600 GB/s");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_specs() {
        let rows = run(16);
        assert_eq!(rows.len(), 2);
        let mid = &rows[0];
        assert_eq!(mid.gpu, "V100");
        assert_eq!(mid.nodes * mid.gpus_per_node, 128);
        assert!((mid.inter_gib_s - 11.64).abs() < 0.01);
        // Attained bandwidth is visibly below nominal (heterogeneity).
        assert!(mid.attained_inter_gib_s < 0.9 * mid.inter_gib_s);
        let high = &rows[1];
        assert_eq!(high.gpu, "A100");
        assert!(high.intra_gib_s > mid.intra_gib_s);
    }
}
