//! Property tests for the MLP substrate: numerical gradients, training
//! monotonicity, and scaler invariants over randomized shapes and data.

use pipette_mlp::{Matrix, Mlp, StandardScaler, TrainConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_matrix(rows: usize, cols: usize, seed: u64, scale: f64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Training on linearly-generated data always reduces the loss below
    /// the untrained network's loss, for any small architecture.
    #[test]
    fn training_reduces_loss(
        hidden in 4usize..24,
        n in 16usize..48,
        seed in 0u64..100,
    ) {
        let x = random_matrix(n, 3, seed, 1.0);
        // y = x0 - 2*x1 + 0.5*x2
        let y_data: Vec<f64> = (0..n)
            .map(|r| x.get(r, 0) - 2.0 * x.get(r, 1) + 0.5 * x.get(r, 2))
            .collect();
        let y = Matrix::from_vec(n, 1, y_data);
        let loss_of = |mlp: &Mlp| {
            let pred = mlp.predict(&x);
            pred.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / n as f64
        };
        let mut mlp = Mlp::new(&[3, hidden, 1], seed);
        let before = loss_of(&mlp);
        mlp.fit(&x, &y, &TrainConfig { iterations: 600, learning_rate: 5e-3, ..TrainConfig::default() });
        let after = loss_of(&mlp);
        prop_assert!(after < before, "loss {before} -> {after}");
    }

    /// Prediction is a pure function: same input, same output, and
    /// row-wise batching doesn't change per-row results.
    #[test]
    fn prediction_is_pure_and_batch_invariant(
        rows in 2usize..10,
        seed in 0u64..100,
    ) {
        let mlp = Mlp::new(&[4, 8, 1], seed);
        let x = random_matrix(rows, 4, seed ^ 1, 2.0);
        let batch = mlp.predict(&x);
        for r in 0..rows {
            let single = mlp.predict(&Matrix::from_rows(&[x.row(r)]));
            prop_assert!((single.get(0, 0) - batch.get(r, 0)).abs() < 1e-12);
        }
    }

    /// StandardScaler transform/inverse round-trips arbitrary data.
    #[test]
    fn scaler_round_trips(
        rows in 2usize..20,
        cols in 1usize..6,
        seed in 0u64..100,
        scale in 0.1f64..1000.0,
    ) {
        let x = random_matrix(rows, cols, seed, scale);
        let scaler = StandardScaler::fit(&x);
        let back = scaler.inverse_transform(&scaler.transform(&x));
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9 * scale.max(1.0), "{a} vs {b}");
        }
    }

    /// Matrix algebra: (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in 1usize..5, b in 1usize..5, c in 1usize..5, d in 1usize..5,
        seed in 0u64..100,
    ) {
        let ma = random_matrix(a, b, seed, 1.0);
        let mb = random_matrix(b, c, seed ^ 2, 1.0);
        let mc = random_matrix(c, d, seed ^ 3, 1.0);
        let left = ma.matmul(&mb).matmul(&mc);
        let right = ma.matmul(&mb.matmul(&mc));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }
}

/// End-to-end descent validation of the full network: one continuous
/// full-batch Adam run on a fixed dataset must drive the loss down with
/// only occasional upticks. If the backward pass were wrong, descent
/// would stall or diverge.
#[test]
fn end_to_end_gradient_check_via_training_descent() {
    let x = random_matrix(24, 3, 7, 1.0);
    let y_data: Vec<f64> = (0..24)
        .map(|r| (x.get(r, 0) * x.get(r, 1)).tanh())
        .collect();
    let y = Matrix::from_vec(24, 1, y_data);
    let mut mlp = Mlp::new(&[3, 16, 16, 1], 9);
    let report = mlp.fit(
        &x,
        &y,
        &TrainConfig {
            iterations: 1_000,
            learning_rate: 1e-3,
            batch_size: 64, // > rows → full batch, deterministic descent
            record_every: 25,
            seed: 0,
        },
    );
    let curve = &report.loss_curve;
    assert!(curve.len() >= 30);
    let increases = curve.windows(2).filter(|w| w[1] > w[0] * 1.001).count();
    assert!(
        increases <= curve.len() / 5,
        "descent too bumpy: {increases} of {}",
        curve.len()
    );
    assert!(report.final_loss < 0.05, "final loss {}", report.final_loss);
    assert!(
        report.final_loss < curve[0] / 5.0,
        "must improve substantially"
    );
}
