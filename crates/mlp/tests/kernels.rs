//! Property tests: every fast kernel is bit-identical to the naive
//! reference (`Matrix::matmul_naive`), over shapes that straddle the
//! register-tile width (including non-multiples) and inputs with exact
//! zeros (to exercise the zero-skip predicate) and subnormals.

use pipette_mlp::{Matrix, Mlp, TrainConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random matrix with ~`zero_pct`% exact zeros (ReLU-like sparsity).
fn random_matrix(rows: usize, cols: usize, zero_pct: u32, rng: &mut ChaCha8Rng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen_range(0u32..100) < zero_pct {
                0.0
            } else {
                rng.gen_range(-10.0..10.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked kernel == naive triple loop, bit for bit. Dimensions up to
    /// 70 cross the 32-wide tile boundary at 32 and 64 and leave ragged
    /// tails in between.
    #[test]
    fn blocked_matmul_matches_naive(
        n in 1usize..70, m in 1usize..70, p in 1usize..70,
        zero_pct in 0u32..60, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix(n, m, zero_pct, &mut rng);
        let b = random_matrix(m, p, zero_pct, &mut rng);
        assert_bits_equal(&a.matmul(&b), &a.matmul_naive(&b), "blocked");
    }

    /// Row-split parallel kernel == naive at every thread count,
    /// including counts that exceed the row count.
    #[test]
    fn parallel_matmul_matches_naive(
        n in 1usize..40, m in 1usize..40, p in 1usize..40,
        threads in 1usize..9, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix(n, m, 30, &mut rng);
        let b = random_matrix(m, p, 30, &mut rng);
        assert_bits_equal(&a.matmul_parallel(&b, threads), &a.matmul_naive(&b), "parallel");
    }

    /// Fused matmul+bias == naive matmul followed by add_row.
    #[test]
    fn fused_bias_matches_naive_two_step(
        n in 1usize..50, m in 1usize..50, p in 1usize..50,
        threads in 1usize..5, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix(n, m, 30, &mut rng);
        let b = random_matrix(m, p, 0, &mut rng);
        let bias: Vec<f64> = (0..p).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut two_step = a.matmul_naive(&b);
        two_step.add_row(&bias);
        let mut fused = Matrix::zeros(n, p);
        a.matmul_bias_into_threaded(&b, &bias, &mut fused, threads);
        assert_bits_equal(&fused, &two_step, "fused bias");
    }

    /// Aᵀ·B without materializing the transpose == materialized naive.
    #[test]
    fn transpose_a_matches_materialized(
        n in 1usize..50, m in 1usize..50, p in 1usize..50,
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix(n, m, 30, &mut rng);
        let b = random_matrix(n, p, 30, &mut rng);
        assert_bits_equal(
            &a.matmul_transpose_a(&b),
            &a.transpose().matmul_naive(&b),
            "transpose-a",
        );
    }

    /// A·Bᵀ via scratch transpose == materialized naive.
    #[test]
    fn transpose_b_matches_materialized(
        n in 1usize..50, m in 1usize..50, p in 1usize..50,
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix(n, m, 30, &mut rng);
        let b = random_matrix(p, m, 30, &mut rng);
        assert_bits_equal(
            &a.matmul_transpose_b(&b),
            &a.matmul_naive(&b.transpose()),
            "transpose-b",
        );
    }

    /// The allocation-free training loop reproduces the original loop
    /// exactly: same RNG stream, same losses, same weights.
    #[test]
    fn fit_matches_reference(
        hidden in 1usize..24, batch in 1usize..40, seed in 0u64..1000,
    ) {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 15.0 - 1.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y = x.map(|v| v * v - 0.5 * v);
        let cfg = TrainConfig {
            iterations: 40,
            batch_size: batch,
            record_every: 7,
            seed,
            ..TrainConfig::default()
        };
        let mut fast = Mlp::new(&[1, hidden, 1], seed);
        let mut slow = Mlp::new(&[1, hidden, 1], seed);
        let rf = fast.fit(&x, &y, &cfg);
        let rs = slow.fit_reference(&x, &y, &cfg);
        prop_assert_eq!(rf.final_loss.to_bits(), rs.final_loss.to_bits());
        prop_assert_eq!(rf.loss_curve.len(), rs.loss_curve.len());
        for (a, b) in rf.loss_curve.iter().zip(&rs.loss_curve) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(&fast, &slow);
    }

    /// Training is thread-count invariant.
    #[test]
    fn fit_thread_invariant(threads in 2usize..9, seed in 0u64..1000) {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y = x.map(|v| 3.0 * v - 1.0);
        let cfg = TrainConfig { iterations: 30, batch_size: 8, seed, ..TrainConfig::default() };
        let mut one = Mlp::new(&[1, 12, 1], seed);
        let mut many = Mlp::new(&[1, 12, 1], seed);
        one.fit_with_threads(&x, &y, &cfg, 1);
        many.fit_with_threads(&x, &y, &cfg, threads);
        prop_assert_eq!(&one, &many);
    }
}
