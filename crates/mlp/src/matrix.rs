//! Minimal dense row-major matrix used by the MLP.
//!
//! Two matmul kernels live here. [`Matrix::matmul_naive`] is the
//! reference triple loop the crate started with; [`Matrix::matmul`] (and
//! the `*_into` / fused / transposed variants) is a register-tiled
//! rewrite of the same arithmetic: for every output element the products
//! are accumulated over `k` in ascending order, skipping `a == 0.0` terms
//! exactly like the reference, so the results are **bit-identical** — the
//! tiling only changes which intermediate lives in a register instead of
//! memory, never the sequence of floating-point operations that produces
//! an element. `matmul_parallel` splits output rows across threads; rows
//! are independent, so any thread count returns the same bits
//! (property-tested in `tests/kernels.rs`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of the register tile the blocked kernels accumulate into. 32
/// doubles (4 cache lines) keeps the accumulator in vector registers on
/// anything from SSE2 to AVX-512 while still amortizing the loop
/// bookkeeping over long rows.
const TILE: usize = 32;

/// One output row of `A · B`: `out_row = Σ_k a_row[k] · B[k][·]`, with an
/// optional fused bias added after the whole sum (matching
/// `matmul` + `add_row` exactly). `k` ascends and `a_row[k] == 0.0` terms
/// are skipped, mirroring [`Matrix::matmul_naive`] term by term.
#[inline]
fn mm_row_into(a_row: &[f64], b: &[f64], p: usize, out_row: &mut [f64], bias: Option<&[f64]>) {
    let mut j0 = 0;
    while j0 < p {
        let w = TILE.min(p - j0);
        let mut acc = [0.0f64; TILE];
        if w == TILE {
            // Hot path: fixed-width tile, fully unrollable.
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let br = &b[k * p + j0..k * p + j0 + TILE];
                for (ac, &bv) in acc.iter_mut().zip(br) {
                    *ac += av * bv;
                }
            }
        } else {
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let br = &b[k * p + j0..k * p + j0 + w];
                for (ac, &bv) in acc[..w].iter_mut().zip(br) {
                    *ac += av * bv;
                }
            }
        }
        match bias {
            Some(bias) => {
                for ((o, &ac), &bi) in out_row[j0..j0 + w]
                    .iter_mut()
                    .zip(&acc[..w])
                    .zip(&bias[j0..j0 + w])
                {
                    *o = ac + bi;
                }
            }
            None => out_row[j0..j0 + w].copy_from_slice(&acc[..w]),
        }
        j0 += w;
    }
}

/// One output row of `Aᵀ · B` without materializing `Aᵀ`: row `i` of the
/// product reads column `i` of `A` (stride `m`). Accumulation order and
/// the zero-skip match `A.transpose().matmul_naive(B)` exactly.
#[inline]
fn mm_at_row_into(a: &[f64], m: usize, i: usize, b: &[f64], p: usize, out_row: &mut [f64]) {
    let n = a.len() / m;
    let mut j0 = 0;
    while j0 < p {
        let w = TILE.min(p - j0);
        let mut acc = [0.0f64; TILE];
        for k in 0..n {
            let av = a[k * m + i];
            if av == 0.0 {
                continue;
            }
            let br = &b[k * p + j0..k * p + j0 + w];
            for (ac, &bv) in acc[..w].iter_mut().zip(br) {
                *ac += av * bv;
            }
        }
        out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
        j0 += w;
    }
}

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        debug_assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), rows * cols, "data length mismatch");
        debug_assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        debug_assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        debug_assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            debug_assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` through the register-tiled kernel.
    /// Bit-identical to [`Self::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        debug_assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "output shape mismatch"
        );
        let p = rhs.cols;
        for (i, out_row) in out.data.chunks_mut(p).enumerate() {
            mm_row_into(self.row(i), &rhs.data, p, out_row, None);
        }
    }

    /// Fused `self · rhs + bias` (bias broadcast over rows), into a
    /// caller-provided buffer. The bias is added after the full `k`
    /// accumulation, so the result is bit-identical to
    /// `matmul` followed by [`Self::add_row`].
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_bias_into(&self, rhs: &Matrix, bias: &[f64], out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        debug_assert_eq!(bias.len(), rhs.cols, "bias length mismatch");
        debug_assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "output shape mismatch"
        );
        let p = rhs.cols;
        for (i, out_row) in out.data.chunks_mut(p).enumerate() {
            mm_row_into(self.row(i), &rhs.data, p, out_row, Some(bias));
        }
    }

    /// `selfᵀ · rhs` without materializing the transpose, into a
    /// caller-provided buffer. Bit-identical to
    /// `self.transpose().matmul(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_transpose_a_into(&self, rhs: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.rows, rhs.rows, "inner dimensions must agree");
        debug_assert_eq!(
            (out.rows, out.cols),
            (self.cols, rhs.cols),
            "output shape mismatch"
        );
        let p = rhs.cols;
        for (i, out_row) in out.data.chunks_mut(p).enumerate() {
            mm_at_row_into(&self.data, self.cols, i, &rhs.data, p, out_row);
        }
    }

    /// `selfᵀ · rhs`, allocating the output.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    pub fn matmul_transpose_a(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transpose_a_into(rhs, &mut out);
        out
    }

    /// `self · rhsᵀ` into a caller-provided buffer, using `scratch` to
    /// hold the transposed `rhs` (rows stay contiguous for the kernel).
    /// Bit-identical to `self.matmul(&rhs.transpose())`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_transpose_b_into(&self, rhs: &Matrix, scratch: &mut Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs.cols, "inner dimensions must agree");
        rhs.transpose_into(scratch);
        self.matmul_into(scratch, out);
    }

    /// `self · rhsᵀ`, allocating the output.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(self.cols, rhs.cols, "inner dimensions must agree");
        let mut scratch = Matrix::zeros(rhs.cols, rhs.rows);
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_b_into(rhs, &mut scratch, &mut out);
        out
    }

    /// Matrix product with output rows computed on up to `threads` worker
    /// threads. Every row of the product depends only on the matching row
    /// of `self`, so the result is bit-identical to [`Self::matmul`] at
    /// any thread count; `threads <= 1` runs inline with no
    /// synchronization (the same ordered fork-join discipline as
    /// `pipette::parallel::ordered_map`).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_parallel(&self, rhs: &Matrix, threads: usize) -> Matrix {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.mm_threaded(rhs, None, &mut out, threads);
        out
    }

    /// Fused `self · rhs + bias` into a caller-provided buffer with output
    /// rows split over up to `threads` workers. Bit-identical to
    /// [`Self::matmul_bias_into`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_bias_into_threaded(
        &self,
        rhs: &Matrix,
        bias: &[f64],
        out: &mut Matrix,
        threads: usize,
    ) {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        debug_assert_eq!(bias.len(), rhs.cols, "bias length mismatch");
        debug_assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "output shape mismatch"
        );
        self.mm_threaded(rhs, Some(bias), out, threads);
    }

    /// Row-split driver shared by the threaded kernels. Each worker owns a
    /// disjoint, contiguous block of output rows, so the partition never
    /// affects the bits.
    fn mm_threaded(&self, rhs: &Matrix, bias: Option<&[f64]>, out: &mut Matrix, threads: usize) {
        let p = rhs.cols;
        let m = self.cols;
        let workers = threads.clamp(1, self.rows);
        if workers <= 1 {
            for (i, out_row) in out.data.chunks_mut(p).enumerate() {
                mm_row_into(&self.data[i * m..(i + 1) * m], &rhs.data, p, out_row, bias);
            }
            return;
        }
        let rows_per = self.rows.div_ceil(workers);
        let a = &self.data;
        let b = &rhs.data;
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.data.chunks_mut(rows_per * p).enumerate() {
                scope.spawn(move || {
                    let row0 = ci * rows_per;
                    for (r, out_row) in out_chunk.chunks_mut(p).enumerate() {
                        let i = row0 + r;
                        mm_row_into(&a[i * m..(i + 1) * m], b, p, out_row, bias);
                    }
                });
            }
        });
    }

    /// The reference matmul: the crate's original scalar triple loop,
    /// kept verbatim as the ground truth the blocked/parallel kernels are
    /// property-tested against (`tests/kernels.rs`).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        debug_assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(lhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong shape.
    pub fn transpose_into(&self, out: &mut Matrix) {
        debug_assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "output shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Adds a row vector (bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&mut self, bias: &[f64]) {
        debug_assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (cell, b) in row.iter_mut().zip(bias) {
                *cell += b;
            }
        }
    }

    /// Column sums, returned as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.col_sums_into(&mut out);
        out
    }

    /// Column sums into a caller-provided buffer (no allocation). Rows
    /// accumulate in ascending order, matching [`Self::col_sums`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cols`.
    pub fn col_sums_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.cols, "output length mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        for row in self.data.chunks(self.cols) {
            for (acc, cell) in out.iter_mut().zip(row) {
                *acc += cell;
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        debug_assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Selects a subset of rows (with repetition allowed), e.g. a minibatch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-range row.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        debug_assert!(!indices.is_empty(), "need at least one row");
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Copies the selected rows into a caller-provided buffer (the
    /// allocation-free [`Self::select_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.rows() != indices.len()`, widths differ, or an
    /// index is out of range.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        debug_assert_eq!(out.rows, indices.len(), "output row count mismatch");
        debug_assert_eq!(out.cols, self.cols, "output width mismatch");
        for (&i, out_row) in indices.iter().zip(out.data.chunks_mut(self.cols)) {
            out_row.copy_from_slice(self.row(i));
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(c, a.matmul_naive(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_row_and_col_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row(&[1.0, 2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn fused_bias_matches_two_step() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.5, 4.0, -1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, -3.0], &[1.5, 2.5]]);
        let bias = [0.25, -0.75];
        let mut two_step = a.matmul(&b);
        two_step.add_row(&bias);
        let mut fused = Matrix::zeros(2, 2);
        a.matmul_bias_into(&b, &bias, &mut fused);
        assert_eq!(fused, two_step);
    }

    #[test]
    fn transpose_variants_match_materialized() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 0.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        // Aᵀ·B  (2×3ᵀ = 3×2, times 2×2)
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
        // A·Bᵀ with B sharing A's width.
        let c = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[3.0, -1.0, 0.5]]);
        assert_eq!(a.matmul_transpose_b(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn gather_rows_matches_select_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let idx = [2usize, 0, 2, 1];
        let mut out = Matrix::zeros(4, 1);
        a.gather_rows_into(&idx, &mut out);
        assert_eq!(out, a.select_rows(&idx));
    }

    #[test]
    fn select_rows_repeats() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = a.select_rows(&[2, 0, 2]);
        assert_eq!(b, Matrix::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[11.0, 18.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_transpose(
            n in 1usize..5, m in 1usize..5, k in 1usize..5,
            seed in 0u64..1000,
        ) {
            // (A·B)ᵀ = Bᵀ·Aᵀ
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::from_vec(n, m, (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let b = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
