//! Minimal dense row-major matrix used by the MLP.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(lhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a row vector (bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (cell, b) in row.iter_mut().zip(bias) {
                *cell += b;
            }
        }
    }

    /// Column sums, returned as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols) {
            for (acc, cell) in out.iter_mut().zip(row) {
                *acc += cell;
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Selects a subset of rows (with repetition allowed), e.g. a minibatch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-range row.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "need at least one row");
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_row_and_col_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row(&[1.0, 2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn select_rows_repeats() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = a.select_rows(&[2, 0, 2]);
        assert_eq!(b, Matrix::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[11.0, 18.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_transpose(
            n in 1usize..5, m in 1usize..5, k in 1usize..5,
            seed in 0u64..1000,
        ) {
            // (A·B)ᵀ = Bᵀ·Aᵀ
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::from_vec(n, m, (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let b = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
