//! Training configuration and reporting.

use serde::{Deserialize, Serialize};

/// Hyperparameters for [`crate::Mlp::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of Adam steps (the paper trains for 50,000).
    pub iterations: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Minibatch size (capped at the dataset size; full batch if larger).
    pub batch_size: usize,
    /// Record the loss every this many iterations.
    pub record_every: usize,
    /// RNG seed for minibatch sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            iterations: 5_000,
            learning_rate: 1e-3,
            batch_size: 64,
            record_every: 100,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// The paper's training protocol: 50,000 iterations.
    pub fn paper() -> Self {
        Self {
            iterations: 50_000,
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Steps taken.
    pub iterations: usize,
    /// Loss of the last step.
    pub final_loss: f64,
    /// Sampled loss curve (every `record_every` steps).
    pub loss_curve: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_is_50k() {
        assert_eq!(TrainConfig::paper().iterations, 50_000);
    }

    #[test]
    fn default_is_reasonable() {
        let c = TrainConfig::default();
        assert!(c.learning_rate > 0.0 && c.batch_size > 0 && c.record_every > 0);
    }
}
