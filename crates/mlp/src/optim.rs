//! The Adam optimizer.

use serde::{Deserialize, Serialize};

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with standard defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `learning_rate <= 0`.
    pub fn new(n: usize, learning_rate: f64) -> Self {
        debug_assert!(n > 0, "optimizer needs at least one parameter");
        debug_assert!(learning_rate > 0.0, "learning rate must be positive");
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `params` in place given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the optimizer's parameter count.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        debug_assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut adam = Adam::new(1, 0.1);
        let mut x = [0.0f64];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn first_step_moves_by_learning_rate() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut adam = Adam::new(1, 0.05);
        let mut x = [1.0f64];
        adam.step(&mut x, &[123.0]);
        assert!((x[0] - (1.0 - 0.05)).abs() < 1e-6);
    }

    #[test]
    fn steps_counter_increments() {
        let mut adam = Adam::new(2, 0.01);
        assert_eq!(adam.steps(), 0);
        adam.step(&mut [0.0, 0.0], &[1.0, 1.0]);
        adam.step(&mut [0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn mismatched_params_rejected() {
        Adam::new(2, 0.01).step(&mut [0.0], &[1.0]);
    }
}
