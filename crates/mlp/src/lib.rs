//! A small, dependency-free multi-layer perceptron.
//!
//! The paper's memory estimator (§VI, Eq. 7) is "an MLP with five layers
//! and 200 hidden sizes, trained for 50,000 iterations" on profiled memory
//! samples. This crate provides exactly that model class, built from
//! scratch: dense layers, ReLU activations, mean-squared-error loss, the
//! Adam optimizer, and a standard feature scaler.
//!
//! # Example
//!
//! Fit `y = 2·x₀ + 1`:
//!
//! ```
//! use pipette_mlp::{Matrix, Mlp, TrainConfig};
//!
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[3.0], &[5.0], &[7.0]]);
//! let mut mlp = Mlp::new(&[1, 16, 1], 42);
//! let report = mlp.fit(&x, &y, &TrainConfig { iterations: 2000, ..TrainConfig::default() });
//! assert!(report.final_loss < 1e-2);
//! let pred = mlp.predict(&Matrix::from_rows(&[&[4.0]]));
//! assert!((pred.get(0, 0) - 9.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod matrix;
pub mod net;
pub mod optim;
pub mod scaler;
pub mod train;

pub use layer::Dense;
pub use matrix::Matrix;
pub use net::Mlp;
pub use optim::Adam;
pub use scaler::StandardScaler;
pub use train::{TrainConfig, TrainReport};
