//! Dense (fully connected) layer with optional ReLU activation.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `Y = X·W + b`, optionally followed by ReLU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, `in_dim × out_dim`.
    pub weights: Matrix,
    /// Bias, length `out_dim`.
    pub bias: Vec<f64>,
    /// Whether a ReLU follows the affine map.
    pub relu: bool,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_pre_activation: Option<Matrix>,
}

/// Gradients produced by a backward pass through a dense layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrads {
    /// Gradient w.r.t. weights.
    pub weights: Matrix,
    /// Gradient w.r.t. bias.
    pub bias: Vec<f64>,
}

/// Samples a standard normal via Box–Muller (keeps the crate free of
/// `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Dense {
    /// He-initialized dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, relu: bool, rng: &mut R) -> Self {
        debug_assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let scale = (2.0 / in_dim as f64).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| standard_normal(rng) * scale)
            .collect();
        Self {
            weights: Matrix::from_vec(in_dim, out_dim, data),
            bias: vec![0.0; out_dim],
            relu,
            cache_input: None,
            cache_pre_activation: None,
        }
    }

    /// Reassembles a layer from its persisted parts (weights, bias,
    /// activation flag) with cold forward/backward caches — the
    /// deserialization path of binary estimator snapshots, equivalent to
    /// what `serde(skip)` produces when decoding JSON.
    pub fn from_parts(weights: Matrix, bias: Vec<f64>, relu: bool) -> Self {
        debug_assert_eq!(weights.cols(), bias.len(), "bias length mismatch");
        Self {
            weights,
            bias,
            relu,
            cache_input: None,
            cache_pre_activation: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass, caching intermediates for a later backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.weights);
        pre.add_row(&self.bias);
        self.cache_input = Some(x.clone());
        let out = if self.relu {
            pre.map(|v| v.max(0.0))
        } else {
            pre.clone()
        };
        self.cache_pre_activation = Some(pre);
        out
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.infer_threaded(x, 1)
    }

    /// [`Self::infer`] with the matmul split over up to `threads` row
    /// blocks; bit-identical at any thread count.
    pub fn infer_threaded(&self, x: &Matrix, threads: usize) -> Matrix {
        let mut pre = x.matmul_parallel(&self.weights, threads);
        pre.add_row(&self.bias);
        if self.relu {
            pre.map(|v| v.max(0.0))
        } else {
            pre
        }
    }

    /// Backward pass: consumes `d_out` (gradient w.r.t. this layer's
    /// output) and returns the gradient w.r.t. the layer's input together
    /// with the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, d_out: &Matrix) -> (Matrix, DenseGrads) {
        let x = self
            .cache_input
            .take()
            // pipette-lint: allow(D2) -- documented `# Panics` protocol: backward consumes the cache forward just stored
            .expect("backward called before forward");
        let pre = self
            .cache_pre_activation
            .take()
            // pipette-lint: allow(D2) -- forward stores both caches together; reaching here means the first take succeeded
            .expect("missing pre-activation cache");
        let d_pre = if self.relu {
            d_out.zip(&pre, |g, p| if p > 0.0 { g } else { 0.0 })
        } else {
            d_out.clone()
        };
        let d_w = x.transpose().matmul(&d_pre);
        let d_b = d_pre.col_sums();
        let d_x = d_pre.matmul(&self.weights.transpose());
        (
            d_x,
            DenseGrads {
                weights: d_w,
                bias: d_b,
            },
        )
    }

    /// Number of trainable scalars in this layer.
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layer(relu: bool) -> Dense {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Dense::new(3, 2, relu, &mut rng)
    }

    #[test]
    fn forward_matches_infer() {
        let mut l = layer(true);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        assert_eq!(l.forward(&x), l.infer(&x));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut l = layer(false);
        l.relu = true;
        let x = Matrix::from_rows(&[&[-100.0, -100.0, -100.0]]);
        // With zero bias and He weights, a hugely negative input saturates.
        let y = l.forward(&x);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of dL/dW for L = sum(forward(x)).
        let mut l = layer(true);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.9, 0.1, -0.4]]);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = l.forward(&x);
        let (_, grads) = l.backward(&ones);

        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let orig = l.weights.get(r, c);
                l.weights.set(r, c, orig + eps);
                let up: f64 = l.infer(&x).as_slice().iter().sum();
                l.weights.set(r, c, orig - eps);
                let down: f64 = l.infer(&x).as_slice().iter().sum();
                l.weights.set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.weights.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn bias_gradient_sums_rows() {
        let mut l = layer(false);
        let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let _ = l.forward(&x);
        let d_out = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (_, grads) = l.backward(&d_out);
        assert_eq!(grads.bias, vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut l = layer(false);
        let d = Matrix::zeros(1, 2);
        let _ = l.backward(&d);
    }

    #[test]
    fn param_count() {
        assert_eq!(layer(false).num_params(), 3 * 2 + 2);
    }
}
