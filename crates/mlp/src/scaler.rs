//! Feature standardization (zero mean, unit variance per column).
//!
//! The memory estimator's features span orders of magnitude (GPU counts vs
//! hidden sizes vs batch sizes); standardizing them is what lets a small
//! MLP extrapolate from ≤ 4-node profiles to 16-node clusters.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-column affine normalizer: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to the columns of `x`.
    ///
    /// Columns with zero variance get a standard deviation of 1 so they map
    /// to zero rather than NaN.
    pub fn fit(x: &Matrix) -> Self {
        let (n, c) = (x.rows() as f64, x.cols());
        let mut means = vec![0.0; c];
        for r in 0..x.rows() {
            for (j, m) in means.iter_mut().enumerate() {
                *m += x.get(r, j);
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut stds = vec![0.0; c];
        for r in 0..x.rows() {
            for (j, s) in stds.iter_mut().enumerate() {
                let d = x.get(r, j) - means[j];
                *s += d * d;
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Reassembles a scaler from persisted per-column statistics (the
    /// binary-snapshot deserialization path).
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        debug_assert_eq!(means.len(), stds.len(), "column count mismatch");
        Self { means, stds }
    }

    /// Per-column means, as fitted.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations, as fitted (zero-variance columns
    /// hold 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Number of features this scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Applies the normalization.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        debug_assert_eq!(x.cols(), self.means.len(), "feature count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.set(r, c, (x.get(r, c) - self.means[c]) / self.stds[c]);
            }
        }
        out
    }

    /// Inverse transform (for targets scaled by the same mechanism).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        debug_assert_eq!(x.cols(), self.means.len(), "feature count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.set(r, c, x.get(r, c) * self.stds[c] + self.means[c]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for c in 0..2 {
            let mean: f64 = (0..3).map(|r| t.get(r, c)).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|r| t.get(r, c).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x = Matrix::from_rows(&[&[5.0, -2.0], &[9.0, 4.0], &[1.0, 0.0]]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0], &[7.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }
}
