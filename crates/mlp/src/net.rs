//! The multi-layer perceptron: a stack of dense layers with ReLU between.

use crate::layer::{Dense, DenseGrads};
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::train::{TrainConfig, TrainReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network `in → hidden… → out` with ReLU on every layer
/// except the last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[10, 200, 200, 200,
    /// 200, 1]` for the paper's five-layer/200-hidden memory estimator.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = widths.len() - 1;
        let layers = (0..n)
            .map(|i| Dense::new(widths[i], widths[i + 1], i + 1 < n, &mut rng))
            .collect();
        Self { layers }
    }

    /// The architecture the paper specifies: five layers of 200 hidden
    /// units mapping `in_dim` features to one output (Eq. 7).
    pub fn paper_architecture(in_dim: usize, seed: u64) -> Self {
        Self::new(&[in_dim, 200, 200, 200, 200, 1], seed)
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Forward pass for inference (no caches).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer(&h);
        }
        h
    }

    /// One forward+backward pass on a batch; returns the MSE loss and
    /// applies gradients through `optimizers` (one per layer, weights then
    /// bias interleaved by [`Self::fit`]).
    fn train_step(&mut self, x: &Matrix, y: &Matrix, opt: &mut Adam) -> f64 {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        let n = (x.rows() * y.cols()) as f64;
        let diff = h.zip(y, |p, t| p - t);
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
        let mut grad = diff.map(|d| 2.0 * d / n);
        let mut layer_grads: Vec<DenseGrads> = Vec::with_capacity(self.layers.len());
        for l in self.layers.iter_mut().rev() {
            let (g_in, grads) = l.backward(&grad);
            layer_grads.push(grads);
            grad = g_in;
        }
        layer_grads.reverse();

        // Flatten all parameter gradients in a fixed order and take one
        // Adam step over the whole network.
        let mut flat_params = Vec::with_capacity(self.num_params());
        let mut flat_grads = Vec::with_capacity(self.num_params());
        for (l, g) in self.layers.iter().zip(&layer_grads) {
            flat_params.extend_from_slice(l.weights.as_slice());
            flat_params.extend_from_slice(&l.bias);
            flat_grads.extend_from_slice(g.weights.as_slice());
            flat_grads.extend_from_slice(&g.bias);
        }
        opt.step(&mut flat_params, &flat_grads);
        let mut off = 0;
        for l in &mut self.layers {
            let wn = l.weights.rows() * l.weights.cols();
            l.weights
                .as_mut_slice()
                .copy_from_slice(&flat_params[off..off + wn]);
            off += wn;
            let bn = l.bias.len();
            l.bias.copy_from_slice(&flat_params[off..off + bn]);
            off += bn;
        }
        loss
    }

    /// Trains the network on `(x, y)` with minibatch Adam under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on row count or widths mismatch the
    /// network.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix, config: &TrainConfig) -> TrainReport {
        assert_eq!(
            x.rows(),
            y.rows(),
            "x and y must have the same number of rows"
        );
        assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        assert_eq!(y.cols(), self.out_dim(), "output width mismatch");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut opt = Adam::new(self.num_params(), config.learning_rate);
        let batch = config.batch_size.min(x.rows()).max(1);
        let mut losses = Vec::new();
        let mut last = f64::INFINITY;
        for it in 0..config.iterations {
            let (bx, by) = if batch == x.rows() {
                (x.clone(), y.clone())
            } else {
                use rand::Rng;
                let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..x.rows())).collect();
                (x.select_rows(&idx), y.select_rows(&idx))
            };
            last = self.train_step(&bx, &by, &mut opt);
            if it % config.record_every == 0 {
                losses.push(last);
            }
        }
        TrainReport {
            iterations: config.iterations,
            final_loss: last,
            loss_curve: losses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_shape() {
        let mlp = Mlp::paper_architecture(10, 0);
        assert_eq!(mlp.in_dim(), 10);
        assert_eq!(mlp.out_dim(), 1);
        // 5 weight matrices: 10*200 + 3*(200*200) + 200*1, plus biases.
        assert_eq!(
            mlp.num_params(),
            10 * 200 + 200 + 3 * (200 * 200 + 200) + 200 + 1
        );
    }

    #[test]
    fn fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y = x.map(|v| 3.0 * v - 1.0);
        let mut mlp = Mlp::new(&[1, 32, 1], 1);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 3000,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        assert!(report.final_loss < 1e-2, "loss {}", report.final_loss);
    }

    #[test]
    fn fits_nonlinear_function() {
        // y = x0² + x1, needs the hidden layer.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 / 5.0 - 1.0, (i / 10) as f64 / 5.0 - 1.0])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y_data: Vec<f64> = rows.iter().map(|r| r[0] * r[0] + r[1]).collect();
        let y = Matrix::from_vec(100, 1, y_data);
        let mut mlp = Mlp::new(&[2, 64, 64, 1], 3);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 4000,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
        );
        assert!(report.final_loss < 5e-3, "loss {}", report.final_loss);
    }

    #[test]
    fn training_is_deterministic() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0]]);
        let cfg = TrainConfig {
            iterations: 200,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[1, 8, 1], 5);
        let mut b = Mlp::new(&[1, 8, 1], 5);
        let ra = a.fit(&x, &y, &cfg);
        let rb = b.fit(&x, &y, &cfg);
        assert_eq!(ra.final_loss, rb.final_loss);
        assert_eq!(a, b);
    }

    #[test]
    fn loss_curve_descends() {
        let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]]);
        let y = x.map(|v| 2.0 * v);
        let mut mlp = Mlp::new(&[1, 16, 1], 9);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 1000,
                record_every: 100,
                ..TrainConfig::default()
            },
        );
        assert!(report.loss_curve.first().unwrap() > report.loss_curve.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn predict_checks_width() {
        Mlp::new(&[2, 4, 1], 0).predict(&Matrix::zeros(1, 3));
    }
}
