//! The multi-layer perceptron: a stack of dense layers with ReLU between.
//!
//! Two training entry points exist. [`Mlp::fit`] is the fast path: it
//! preallocates every minibatch/activation/gradient buffer once and runs
//! the whole loop allocation-free through the blocked matmul kernels.
//! [`Mlp::fit_reference`] is the crate's original loop (fresh matrices
//! every step, naive kernel), kept verbatim as the ground truth: the two
//! produce **bit-identical** weights, losses, and RNG streams (see
//! `tests/kernels.rs`), so the fast path is a pure speedup, not a
//! numerical change.

use crate::layer::{Dense, DenseGrads};
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::train::{TrainConfig, TrainReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network `in → hidden… → out` with ReLU on every layer
/// except the last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[10, 200, 200, 200,
    /// 200, 1]` for the paper's five-layer/200-hidden memory estimator.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        debug_assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = widths.len() - 1;
        let layers = (0..n)
            .map(|i| Dense::new(widths[i], widths[i + 1], i + 1 < n, &mut rng))
            .collect();
        Self { layers }
    }

    /// The architecture the paper specifies: five layers of 200 hidden
    /// units mapping `in_dim` features to one output (Eq. 7).
    pub fn paper_architecture(in_dim: usize, seed: u64) -> Self {
        Self::new(&[in_dim, 200, 200, 200, 200, 1], seed)
    }

    /// The layer stack, input to output.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Reassembles a network from persisted layers (the binary-snapshot
    /// deserialization path).
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        debug_assert!(!layers.is_empty(), "a network needs at least one layer");
        Self { layers }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(Dense::in_dim).unwrap_or(0)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(Dense::out_dim).unwrap_or(0)
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Forward pass for inference (no caches).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.predict_with_threads(x, 1)
    }

    /// Forward pass for inference with the layer matmuls split over up to
    /// `threads` row blocks. Every output row depends only on the matching
    /// input row, so the result is bit-identical to [`Self::predict`] at
    /// any thread count — and a batch prediction over `n` rows is
    /// bit-identical to `n` single-row predictions.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn predict_with_threads(&self, x: &Matrix, threads: usize) -> Matrix {
        debug_assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer_threaded(&h, threads);
        }
        h
    }

    /// One forward+backward pass on a batch; returns the MSE loss and
    /// applies gradients through `opt` (weights then bias per layer, in
    /// layer order). Allocates fresh matrices throughout — only used by
    /// [`Self::fit_reference`].
    fn train_step(&mut self, x: &Matrix, y: &Matrix, opt: &mut Adam) -> f64 {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        let n = (x.rows() * y.cols()) as f64;
        let diff = h.zip(y, |p, t| p - t);
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
        let mut grad = diff.map(|d| 2.0 * d / n);
        let mut layer_grads: Vec<DenseGrads> = Vec::with_capacity(self.layers.len());
        for l in self.layers.iter_mut().rev() {
            let (g_in, grads) = l.backward(&grad);
            layer_grads.push(grads);
            grad = g_in;
        }
        layer_grads.reverse();

        // Flatten all parameter gradients in a fixed order and take one
        // Adam step over the whole network.
        let mut flat_params = Vec::with_capacity(self.num_params());
        let mut flat_grads = Vec::with_capacity(self.num_params());
        for (l, g) in self.layers.iter().zip(&layer_grads) {
            flat_params.extend_from_slice(l.weights.as_slice());
            flat_params.extend_from_slice(&l.bias);
            flat_grads.extend_from_slice(g.weights.as_slice());
            flat_grads.extend_from_slice(&g.bias);
        }
        opt.step(&mut flat_params, &flat_grads);
        let mut off = 0;
        for l in &mut self.layers {
            let wn = l.weights.rows() * l.weights.cols();
            l.weights
                .as_mut_slice()
                .copy_from_slice(&flat_params[off..off + wn]);
            off += wn;
            let bn = l.bias.len();
            l.bias.copy_from_slice(&flat_params[off..off + bn]);
            off += bn;
        }
        loss
    }

    /// Trains the network on `(x, y)` with minibatch Adam under `config`.
    ///
    /// Allocation-free after setup: minibatch gather buffers, per-layer
    /// activation/gradient scratch, and the flattened parameter vector
    /// are built once and reused for every iteration. Bit-identical to
    /// [`Self::fit_reference`] (same RNG stream, same arithmetic order).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on row count or widths mismatch the
    /// network.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix, config: &TrainConfig) -> TrainReport {
        self.fit_with_threads(x, y, config, 1)
    }

    /// [`Self::fit`] with the forward matmuls split over up to `threads`
    /// row blocks. Rows are independent, so results are bit-identical at
    /// any thread count; `threads <= 1` runs fully inline.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on row count or widths mismatch the
    /// network.
    pub fn fit_with_threads(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        config: &TrainConfig,
        threads: usize,
    ) -> TrainReport {
        debug_assert_eq!(
            x.rows(),
            y.rows(),
            "x and y must have the same number of rows"
        );
        debug_assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        debug_assert_eq!(y.cols(), self.out_dim(), "output width mismatch");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut opt = Adam::new(self.num_params(), config.learning_rate);
        let batch = config.batch_size.min(x.rows()).max(1);
        let full_batch = batch == x.rows();
        let n_layers = self.layers.len();

        // One-time workspace. `dxs[l]` holds the gradient w.r.t. the input
        // of layer `l + 1` (equivalently: w.r.t. the output of layer `l`);
        // the gradient w.r.t. layer 0's input is never needed, so it is
        // neither stored nor computed.
        let mut bx = Matrix::zeros(batch, x.cols());
        let mut by = Matrix::zeros(batch, y.cols());
        let mut idx = vec![0usize; batch];
        let mut pres: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(batch, l.out_dim()))
            .collect();
        let mut acts: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(batch, l.out_dim()))
            .collect();
        let mut dxs: Vec<Matrix> = self.layers[1..]
            .iter()
            .map(|l| Matrix::zeros(batch, l.in_dim()))
            .collect();
        let mut wts: Vec<Matrix> = self.layers[1..]
            .iter()
            .map(|l| Matrix::zeros(l.out_dim(), l.in_dim()))
            .collect();
        let mut dloss = Matrix::zeros(batch, self.out_dim());
        let mut dws: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.in_dim(), l.out_dim()))
            .collect();
        let mut dbs: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.out_dim()]).collect();
        let mut flat_grads = vec![0.0; self.num_params()];
        // Parameters stay flattened across iterations; layers are synced
        // from this vector after every Adam step, so re-gathering each
        // iteration (as the reference loop does) would read back the same
        // bits.
        let mut flat_params = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            flat_params.extend_from_slice(l.weights.as_slice());
            flat_params.extend_from_slice(&l.bias);
        }

        let mut losses = Vec::new();
        let mut last = f64::INFINITY;
        for it in 0..config.iterations {
            let (cx, cy): (&Matrix, &Matrix) = if full_batch {
                (x, y)
            } else {
                use rand::Rng;
                for slot in idx.iter_mut() {
                    *slot = rng.gen_range(0..x.rows());
                }
                x.gather_rows_into(&idx, &mut bx);
                y.gather_rows_into(&idx, &mut by);
                (&bx, &by)
            };

            // Forward: fused matmul+bias into `pres`, activation into `acts`.
            for l in 0..n_layers {
                let (done, rest) = acts.split_at_mut(l);
                let inp: &Matrix = if l == 0 { cx } else { &done[l - 1] };
                let layer = &self.layers[l];
                inp.matmul_bias_into_threaded(&layer.weights, &layer.bias, &mut pres[l], threads);
                let act = &mut rest[0];
                if layer.relu {
                    for (a, &p) in act.as_mut_slice().iter_mut().zip(pres[l].as_slice()) {
                        *a = p.max(0.0);
                    }
                } else {
                    act.as_mut_slice().copy_from_slice(pres[l].as_slice());
                }
            }

            // Loss and output gradient, matching the reference exactly:
            // loss = Σ (h − t)² / n, d = 2·(h − t)/n.
            let n = (cx.rows() * cy.cols()) as f64;
            let h = &acts[n_layers - 1];
            let mut sq_sum = 0.0;
            for ((d, &p), &t) in dloss
                .as_mut_slice()
                .iter_mut()
                .zip(h.as_slice())
                .zip(cy.as_slice())
            {
                let diff = p - t;
                sq_sum += diff * diff;
                *d = 2.0 * diff / n;
            }
            last = sq_sum / n;

            // Backward, reusing `d_out` buffers in place for the ReLU mask.
            for l in (0..n_layers).rev() {
                let (dx_lo, dx_hi) = dxs.split_at_mut(l);
                let d_out: &mut Matrix = if l == n_layers - 1 {
                    &mut dloss
                } else {
                    &mut dx_hi[0]
                };
                let layer = &self.layers[l];
                if layer.relu {
                    for (g, &p) in d_out.as_mut_slice().iter_mut().zip(pres[l].as_slice()) {
                        *g = if p > 0.0 { *g } else { 0.0 };
                    }
                }
                let d_pre: &Matrix = d_out;
                let inp: &Matrix = if l == 0 { cx } else { &acts[l - 1] };
                inp.matmul_transpose_a_into(d_pre, &mut dws[l]);
                d_pre.col_sums_into(&mut dbs[l]);
                if l > 0 {
                    d_pre.matmul_transpose_b_into(
                        &layer.weights,
                        &mut wts[l - 1],
                        &mut dx_lo[l - 1],
                    );
                }
            }

            // Flatten gradients and take one Adam step over the network.
            let mut off = 0;
            for l in 0..n_layers {
                let wn = dws[l].rows() * dws[l].cols();
                flat_grads[off..off + wn].copy_from_slice(dws[l].as_slice());
                off += wn;
                let bn = dbs[l].len();
                flat_grads[off..off + bn].copy_from_slice(&dbs[l]);
                off += bn;
            }
            opt.step(&mut flat_params, &flat_grads);
            let mut off = 0;
            for l in &mut self.layers {
                let wn = l.weights.rows() * l.weights.cols();
                l.weights
                    .as_mut_slice()
                    .copy_from_slice(&flat_params[off..off + wn]);
                off += wn;
                let bn = l.bias.len();
                l.bias.copy_from_slice(&flat_params[off..off + bn]);
                off += bn;
            }

            if it % config.record_every == 0 {
                losses.push(last);
            }
        }
        TrainReport {
            iterations: config.iterations,
            final_loss: last,
            loss_curve: losses,
        }
    }

    /// The crate's original training loop, kept verbatim (fresh matrices
    /// every iteration, naive matmul through [`Dense::forward`] /
    /// [`Dense::backward`]). Ground truth for the equivalence tests and
    /// the honest baseline for the `mlp_throughput` bench.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on row count or widths mismatch the
    /// network.
    pub fn fit_reference(&mut self, x: &Matrix, y: &Matrix, config: &TrainConfig) -> TrainReport {
        debug_assert_eq!(
            x.rows(),
            y.rows(),
            "x and y must have the same number of rows"
        );
        debug_assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        debug_assert_eq!(y.cols(), self.out_dim(), "output width mismatch");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut opt = Adam::new(self.num_params(), config.learning_rate);
        let batch = config.batch_size.min(x.rows()).max(1);
        let mut losses = Vec::new();
        let mut last = f64::INFINITY;
        for it in 0..config.iterations {
            let (bx, by) = if batch == x.rows() {
                (x.clone(), y.clone())
            } else {
                use rand::Rng;
                let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..x.rows())).collect();
                (x.select_rows(&idx), y.select_rows(&idx))
            };
            last = self.train_step(&bx, &by, &mut opt);
            if it % config.record_every == 0 {
                losses.push(last);
            }
        }
        TrainReport {
            iterations: config.iterations,
            final_loss: last,
            loss_curve: losses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_shape() {
        let mlp = Mlp::paper_architecture(10, 0);
        assert_eq!(mlp.in_dim(), 10);
        assert_eq!(mlp.out_dim(), 1);
        // 5 weight matrices: 10*200 + 3*(200*200) + 200*1, plus biases.
        assert_eq!(
            mlp.num_params(),
            10 * 200 + 200 + 3 * (200 * 200 + 200) + 200 + 1
        );
    }

    #[test]
    fn fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y = x.map(|v| 3.0 * v - 1.0);
        let mut mlp = Mlp::new(&[1, 32, 1], 1);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 3000,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        assert!(report.final_loss < 1e-2, "loss {}", report.final_loss);
    }

    #[test]
    fn fits_nonlinear_function() {
        // y = x0² + x1, needs the hidden layer.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 / 5.0 - 1.0, (i / 10) as f64 / 5.0 - 1.0])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y_data: Vec<f64> = rows.iter().map(|r| r[0] * r[0] + r[1]).collect();
        let y = Matrix::from_vec(100, 1, y_data);
        let mut mlp = Mlp::new(&[2, 64, 64, 1], 3);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 4000,
                learning_rate: 0.005,
                ..TrainConfig::default()
            },
        );
        assert!(report.final_loss < 5e-3, "loss {}", report.final_loss);
    }

    #[test]
    fn training_is_deterministic() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0]]);
        let cfg = TrainConfig {
            iterations: 200,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[1, 8, 1], 5);
        let mut b = Mlp::new(&[1, 8, 1], 5);
        let ra = a.fit(&x, &y, &cfg);
        let rb = b.fit(&x, &y, &cfg);
        assert_eq!(ra.final_loss, rb.final_loss);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_matches_reference_bitwise() {
        // Minibatch path (batch < rows) and full-batch path both must
        // reproduce the original loop exactly.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 / 5.0 - 1.0, (i / 10) as f64 / 5.0])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y_data: Vec<f64> = rows.iter().map(|r| r[0] * 0.5 - r[1]).collect();
        let y = Matrix::from_vec(50, 1, y_data);
        for batch_size in [16, 64] {
            let cfg = TrainConfig {
                iterations: 120,
                batch_size,
                record_every: 10,
                ..TrainConfig::default()
            };
            let mut fast = Mlp::new(&[2, 24, 24, 1], 11);
            let mut slow = Mlp::new(&[2, 24, 24, 1], 11);
            let rf = fast.fit(&x, &y, &cfg);
            let rs = slow.fit_reference(&x, &y, &cfg);
            assert_eq!(rf.final_loss, rs.final_loss, "batch {batch_size}");
            assert_eq!(rf.loss_curve, rs.loss_curve, "batch {batch_size}");
            assert_eq!(fast, slow, "batch {batch_size}");
        }
    }

    #[test]
    fn fit_threads_invariant() {
        let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5], &[2.0]]);
        let y = x.map(|v| v * v);
        let cfg = TrainConfig {
            iterations: 150,
            batch_size: 3,
            ..TrainConfig::default()
        };
        let mut one = Mlp::new(&[1, 16, 1], 2);
        let mut eight = Mlp::new(&[1, 16, 1], 2);
        let r1 = one.fit_with_threads(&x, &y, &cfg, 1);
        let r8 = eight.fit_with_threads(&x, &y, &cfg, 8);
        assert_eq!(r1.final_loss, r8.final_loss);
        assert_eq!(one, eight);
    }

    #[test]
    fn batch_predict_matches_row_predict() {
        let mlp = Mlp::new(&[3, 16, 16, 1], 4);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 2.0, -3.0], &[0.0, 0.0, 0.0]]);
        let batch = mlp.predict(&x);
        for r in 0..x.rows() {
            let single = mlp.predict(&Matrix::from_rows(&[x.row(r)]));
            assert_eq!(single.row(0), batch.row(r), "row {r}");
        }
        let threaded = mlp.predict_with_threads(&x, 8);
        assert_eq!(threaded, batch);
    }

    #[test]
    fn loss_curve_descends() {
        let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]]);
        let y = x.map(|v| 2.0 * v);
        let mut mlp = Mlp::new(&[1, 16, 1], 9);
        let report = mlp.fit(
            &x,
            &y,
            &TrainConfig {
                iterations: 1000,
                record_every: 100,
                ..TrainConfig::default()
            },
        );
        assert!(report.loss_curve.first().unwrap() > report.loss_curve.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn predict_checks_width() {
        Mlp::new(&[2, 4, 1], 0).predict(&Matrix::zeros(1, 3));
    }
}
