//! Throughput metrics: tokens/second, model-FLOPs utilization, scaling
//! efficiency — the numbers practitioners compare configurations by.

use crate::flops;
use crate::gpt::GptConfig;
use serde::{Deserialize, Serialize};

/// Throughput summary of one measured iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Samples processed per second.
    pub samples_per_second: f64,
    /// Tokens processed per second.
    pub tokens_per_second: f64,
    /// Model FLOPs utilization: achieved training FLOPs over the
    /// cluster's aggregate peak.
    pub mfu: f64,
}

/// Computes throughput metrics for one iteration.
///
/// `peak_flops_total` is the aggregate peak throughput of all GPUs
/// (FLOP/s); MFU uses the `6·N·T` training-FLOPs rule.
///
/// # Panics
///
/// Panics if `iteration_seconds` or `peak_flops_total` are not positive.
pub fn of_iteration(
    gpt: &GptConfig,
    global_batch: u64,
    iteration_seconds: f64,
    peak_flops_total: f64,
) -> Throughput {
    debug_assert!(iteration_seconds > 0.0, "iteration time must be positive");
    debug_assert!(peak_flops_total > 0.0, "peak FLOPs must be positive");
    let samples_per_second = global_batch as f64 / iteration_seconds;
    let tokens_per_second = samples_per_second * gpt.seq_len as f64;
    let achieved = flops::iteration_flops(gpt, global_batch) / iteration_seconds;
    Throughput {
        samples_per_second,
        tokens_per_second,
        mfu: achieved / peak_flops_total,
    }
}

/// Weak-scaling efficiency between two measurements: how much of the
/// per-GPU throughput at the small scale survives at the large scale.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn weak_scaling_efficiency(
    small_tokens_per_second: f64,
    small_gpus: usize,
    large_tokens_per_second: f64,
    large_gpus: usize,
) -> f64 {
    debug_assert!(small_tokens_per_second > 0.0 && large_tokens_per_second > 0.0);
    debug_assert!(small_gpus > 0 && large_gpus > 0);
    (large_tokens_per_second / large_gpus as f64) / (small_tokens_per_second / small_gpus as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let g = GptConfig::gpt_1_1b();
        // 256 samples in 2 s on 32 GPUs of 125 TFLOPs peak.
        let t = of_iteration(&g, 256, 2.0, 32.0 * 125e12);
        assert!((t.samples_per_second - 128.0).abs() < 1e-9);
        assert!((t.tokens_per_second - 128.0 * 2048.0).abs() < 1e-6);
        assert!(t.mfu > 0.0 && t.mfu < 1.0, "mfu {}", t.mfu);
    }

    #[test]
    fn mfu_halves_when_time_doubles() {
        let g = GptConfig::gpt_1_1b();
        let fast = of_iteration(&g, 256, 1.0, 32.0 * 125e12);
        let slow = of_iteration(&g, 256, 2.0, 32.0 * 125e12);
        assert!((fast.mfu / slow.mfu - 2.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_weak_scaling_is_one() {
        assert!((weak_scaling_efficiency(100.0, 8, 200.0, 16) - 1.0).abs() < 1e-12);
        assert!(weak_scaling_efficiency(100.0, 8, 150.0, 16) < 1.0);
    }
}
