//! Communication message sizes for the three parallel dimensions.
//!
//! These are the `msg_PP` and `msg_DP` terms of Eqs. 5–6 and the payload of
//! the per-microbatch tensor-parallel all-reduces.

use crate::gpt::GptConfig;

/// Bytes of an fp16 activation tensor for one microbatch
/// (`micro · seq · hidden · 2`). This is the pipeline-parallel message
/// (`msg_PP`) sent between adjacent stages per microbatch per direction.
pub fn pp_message_bytes(cfg: &GptConfig, micro_batch: u64) -> u64 {
    micro_batch * cfg.seq_len as u64 * cfg.hidden as u64 * 2
}

/// Bytes all-reduced by one tensor-parallel all-reduce (the activation
/// tensor, fp16).
pub fn tp_allreduce_bytes(cfg: &GptConfig, micro_batch: u64) -> u64 {
    pp_message_bytes(cfg, micro_batch)
}

/// Number of tensor-parallel all-reduces per layer per microbatch:
/// two in the forward pass (attention output, MLP output) and two in the
/// backward pass.
pub const TP_ALLREDUCES_PER_LAYER: u64 = 4;

/// Bytes of gradients all-reduced by data parallelism for one GPU of stage
/// `stage`: the fp32 gradients of its tensor-parallel shard (`msg_DP`).
pub fn dp_gradient_bytes(cfg: &GptConfig, pp: usize, tp: usize, stage: usize) -> u64 {
    let shard = cfg.stage_params(pp, stage).div_ceil(tp as u64);
    shard * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_message_scales_with_microbatch() {
        let g = GptConfig::gpt_1_1b();
        assert_eq!(pp_message_bytes(&g, 4), 4 * pp_message_bytes(&g, 1));
        // 1 sample * 2048 seq * 1920 hidden * 2 bytes = 7.5 MiB
        assert_eq!(pp_message_bytes(&g, 1), 2048 * 1920 * 2);
    }

    #[test]
    fn dp_gradient_shrinks_with_tp() {
        let g = GptConfig::gpt_3_1b();
        let full = dp_gradient_bytes(&g, 4, 1, 1);
        let shard = dp_gradient_bytes(&g, 4, 8, 1);
        assert!(full > 7 * shard && full < 9 * shard);
    }

    #[test]
    fn first_stage_gradients_include_embeddings() {
        let g = GptConfig::gpt_3_1b();
        assert!(dp_gradient_bytes(&g, 4, 1, 0) > dp_gradient_bytes(&g, 4, 1, 1));
    }

    #[test]
    fn tp_allreduce_matches_activation_size() {
        let g = GptConfig::gpt_1_1b();
        assert_eq!(tp_allreduce_bytes(&g, 2), pp_message_bytes(&g, 2));
    }
}
