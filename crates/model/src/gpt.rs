//! GPT transformer model descriptions.
//!
//! The paper evaluates GPT models "of sizes up to 3.1B and 11.1B
//! parameters" (mid-range / high-end respectively), weak-scaling the model
//! with cluster size (Fig. 8, Table II). Hyperparameters follow the
//! Megatron-LM convention (sequence length 2048, vocabulary 51200).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hyperparameters of a GPT-style decoder-only transformer.
///
/// ```
/// use pipette_model::GptConfig;
///
/// let gpt = GptConfig::gpt_3_1b();
/// assert_eq!(gpt.n_layers, 32);
/// // Split over a 4-stage pipeline, each stage carries 8 layers; the
/// // first additionally holds the embeddings.
/// assert_eq!(gpt.layers_of_stage(4, 0), 8);
/// assert!(gpt.stage_params(4, 0) > gpt.stage_params(4, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GptConfig {
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of attention heads; must divide `hidden`.
    pub n_heads: usize,
    /// Sequence length per sample.
    pub seq_len: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl GptConfig {
    /// Creates a config, validating head divisibility.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `n_heads` does not divide `hidden`.
    pub fn new(
        n_layers: usize,
        hidden: usize,
        n_heads: usize,
        seq_len: usize,
        vocab: usize,
    ) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` constructor contract for model presets
        assert!(n_layers > 0 && hidden > 0 && n_heads > 0 && seq_len > 0 && vocab > 0);
        assert_eq!(hidden % n_heads, 0, "heads must divide hidden dimension");
        Self {
            n_layers,
            hidden,
            n_heads,
            seq_len,
            vocab,
        }
    }

    /// Parameters in one transformer layer: `12 h² + 13 h`
    /// (QKV + attention output + two MLP matrices, biases, layer norms).
    pub fn layer_params(&self) -> u64 {
        let h = self.hidden as u64;
        12 * h * h + 13 * h
    }

    /// Parameters of the (tied) token embedding / output head.
    pub fn embedding_params(&self) -> u64 {
        (self.vocab as u64) * (self.hidden as u64)
    }

    /// Parameters of the learned position embedding.
    pub fn position_params(&self) -> u64 {
        (self.seq_len as u64) * (self.hidden as u64)
    }

    /// Total parameter count (embeddings counted once).
    pub fn num_params(&self) -> u64 {
        self.embedding_params()
            + self.position_params()
            + self.n_layers as u64 * self.layer_params()
            + 2 * self.hidden as u64 // final layer norm
    }

    /// Number of layers assigned to pipeline stage `stage` of `pp` total,
    /// distributing the remainder to the earliest stages (Megatron-LM
    /// behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `pp == 0`, `stage >= pp`, or `pp > n_layers`.
    pub fn layers_of_stage(&self, pp: usize, stage: usize) -> usize {
        debug_assert!(pp > 0 && stage < pp, "invalid stage {stage} of {pp}");
        debug_assert!(pp <= self.n_layers, "more stages than layers");
        let base = self.n_layers / pp;
        let extra = self.n_layers % pp;
        base + usize::from(stage < extra)
    }

    /// Parameters held by pipeline stage `stage` (before tensor-parallel
    /// sharding). Stage 0 additionally holds the input embeddings; the last
    /// stage holds the final layer norm plus — when `pp > 1` — its own copy
    /// of the (tied) output head, as Megatron-LM keeps one per end stage.
    pub fn stage_params(&self, pp: usize, stage: usize) -> u64 {
        let mut p = self.layers_of_stage(pp, stage) as u64 * self.layer_params();
        if stage == 0 {
            p += self.embedding_params() + self.position_params();
        }
        if stage == pp - 1 {
            p += 2 * self.hidden as u64;
            if pp > 1 {
                p += self.embedding_params();
            }
        }
        p
    }

    /// The 1.1B-parameter GPT (Table II, mid-range 8-node row).
    pub fn gpt_1_1b() -> Self {
        Self::new(24, 1920, 24, 2048, 51200)
    }

    /// The 3.1B-parameter GPT (mid-range cluster default).
    pub fn gpt_3_1b() -> Self {
        Self::new(32, 2816, 32, 2048, 51200)
    }

    /// The 8.1B-parameter GPT (Table II, high-end 8-node row).
    pub fn gpt_8_1b() -> Self {
        Self::new(40, 4096, 32, 2048, 51200)
    }

    /// The 11.1B-parameter GPT (high-end cluster default).
    pub fn gpt_11_1b() -> Self {
        Self::new(48, 4352, 32, 2048, 51200)
    }

    /// Weak-scaled model for the mid-range cluster at a given GPU count
    /// (Fig. 8: the model grows with the cluster).
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is not one of 32/64/96/128.
    pub fn mid_range_for_gpus(n_gpus: usize) -> Self {
        match n_gpus {
            32 => Self::new(16, 1536, 16, 2048, 51200), // ~0.5B
            64 => Self::gpt_1_1b(),
            96 => Self::new(28, 2560, 32, 2048, 51200), // ~2.2B
            128 => Self::gpt_3_1b(),
            // pipette-lint: allow(D2) -- documented `# Panics`: the weak-scaling ladder exists only at these fixed GPU counts
            _ => panic!("no mid-range weak-scaling point for {n_gpus} GPUs"),
        }
    }

    /// Weak-scaled model for the high-end cluster at a given GPU count.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is not one of 32/64/96/128.
    pub fn high_end_for_gpus(n_gpus: usize) -> Self {
        match n_gpus {
            32 => Self::new(32, 3072, 32, 2048, 51200), // ~3.7B
            64 => Self::gpt_8_1b(),
            96 => Self::new(44, 4224, 32, 2048, 51200), // ~9.6B
            128 => Self::gpt_11_1b(),
            // pipette-lint: allow(D2) -- documented `# Panics`: the weak-scaling ladder exists only at these fixed GPU counts
            _ => panic!("no high-end weak-scaling point for {n_gpus} GPUs"),
        }
    }

    /// Approximate size in billions of parameters, for display.
    pub fn size_billions(&self) -> f64 {
        self.num_params() as f64 / 1e9
    }
}

impl fmt::Display for GptConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPT-{:.1}B (L={}, h={}, a={}, s={})",
            self.size_billions(),
            self.n_layers,
            self.hidden,
            self.n_heads,
            self.seq_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_match_paper_labels() {
        assert!((GptConfig::gpt_1_1b().size_billions() - 1.1).abs() < 0.15);
        assert!((GptConfig::gpt_3_1b().size_billions() - 3.1).abs() < 0.2);
        assert!((GptConfig::gpt_8_1b().size_billions() - 8.1).abs() < 0.3);
        assert!((GptConfig::gpt_11_1b().size_billions() - 11.1).abs() < 0.4);
    }

    #[test]
    fn stage_params_sum_close_to_total() {
        let g = GptConfig::gpt_3_1b();
        for pp in [1, 2, 4, 8] {
            let sum: u64 = (0..pp).map(|s| g.stage_params(pp, s)).sum();
            // The output head copy is double-counted relative to num_params
            // when pp > 1 (both end stages hold an embedding-sized matrix).
            let expected_extra = if pp > 1 { g.embedding_params() } else { 0 };
            assert_eq!(sum, g.num_params() + expected_extra);
        }
    }

    #[test]
    fn layers_distribute_with_remainder_first() {
        let g = GptConfig::new(10, 512, 8, 128, 1000);
        let counts: Vec<_> = (0..4).map(|s| g.layers_of_stage(4, s)).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn weak_scaling_is_monotone() {
        let mut prev = 0;
        for g in [32, 64, 96, 128] {
            let p = GptConfig::mid_range_for_gpus(g).num_params();
            assert!(p > prev);
            prev = p;
        }
        let mut prev = 0;
        for g in [32, 64, 96, 128] {
            let p = GptConfig::high_end_for_gpus(g).num_params();
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn single_stage_holds_everything() {
        let g = GptConfig::gpt_1_1b();
        assert_eq!(g.stage_params(1, 0), g.num_params());
        assert_eq!(g.layers_of_stage(1, 0), g.n_layers);
    }

    #[test]
    fn one_layer_per_stage_at_max_depth() {
        let g = GptConfig::new(8, 512, 8, 128, 1000);
        for s in 0..8 {
            assert_eq!(g.layers_of_stage(8, s), 1);
        }
    }

    #[test]
    #[should_panic(expected = "more stages than layers")]
    fn too_deep_pipeline_rejected() {
        GptConfig::new(4, 512, 8, 128, 1000).layers_of_stage(5, 0);
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn head_divisibility_enforced() {
        GptConfig::new(2, 100, 3, 128, 1000);
    }

    #[test]
    fn display_shows_size() {
        assert!(GptConfig::gpt_3_1b().to_string().contains("GPT-3.2B"));
    }
}
