//! Memory anatomy of mixed-precision 3D-parallel training.
//!
//! This module provides the *analytically visible* memory components: model
//! state (weights, gradients, optimizer moments) and activation storage.
//! These are what the naive baseline estimator \[20\] counts. The *hidden*
//! components that make real peak memory much larger — framework and
//! library overheads, communicator buffers, fragmentation — are modelled in
//! `pipette-sim`'s ground-truth memory simulator, which is exactly the gap
//! the paper's MLP memory estimator learns (§VI, Fig. 7).

use crate::gpt::GptConfig;

/// Bytes of model state per parameter for mixed-precision Adam as
/// Megatron-LM lays it out: fp16 weight (2) + fp32 main gradient (4) +
/// fp32 master weight (4) + fp32 momentum (4) + fp32 variance (4).
pub const BYTES_PER_PARAM: u64 = 18;

/// Model-state bytes on one GPU: the tensor-parallel shard of the stage's
/// parameters times [`BYTES_PER_PARAM`].
pub fn model_state_bytes(cfg: &GptConfig, pp: usize, tp: usize, stage: usize) -> u64 {
    cfg.stage_params(pp, stage).div_ceil(tp as u64) * BYTES_PER_PARAM
}

/// Activation bytes stored per transformer layer for one in-flight
/// microbatch on one tensor-parallel rank.
///
/// Follows the standard accounting (Korthikanti et al.): an fp16 layer with
/// full activation storage keeps `s·b·h·(10 + 24/t + 5·a·s/(h·t))` bytes,
/// where `t` is the tensor-parallel degree and `a` the head count.
pub fn activation_bytes_per_layer(cfg: &GptConfig, micro_batch: u64, tp: usize) -> u64 {
    let s = cfg.seq_len as f64;
    let b = micro_batch as f64;
    let h = cfg.hidden as f64;
    let a = cfg.n_heads as f64;
    let t = tp as f64;
    (s * b * h * (10.0 + 24.0 / t + 5.0 * a * s / (h * t))) as u64
}

/// Activation bytes stored per transformer layer per in-flight microbatch
/// with *selective* recomputation (Megatron-LM's
/// `--recompute-activations`): the quadratic attention tensors
/// (`5·a·s²·b` bytes) are recomputed in the backward pass, everything
/// else is kept. This is the big memory lever for long sequences at a
/// small compute cost.
pub fn activation_bytes_selective(cfg: &GptConfig, micro_batch: u64, tp: usize) -> u64 {
    let s = cfg.seq_len as f64;
    let b = micro_batch as f64;
    let h = cfg.hidden as f64;
    let t = tp as f64;
    (s * b * h * (10.0 + 24.0 / t)) as u64
}

/// Model-state bytes on one GPU with a ZeRO-1 style distributed optimizer:
/// fp16 weights and fp32 main gradients stay replicated within the data-
/// parallel group, but the optimizer state (master weights + Adam moments,
/// 12 B/param) is sharded `dp` ways.
pub fn model_state_bytes_zero1(
    cfg: &GptConfig,
    pp: usize,
    tp: usize,
    dp: usize,
    stage: usize,
) -> u64 {
    debug_assert!(tp > 0 && dp > 0, "parallel degrees must be positive");
    let shard = cfg.stage_params(pp, stage).div_ceil(tp as u64);
    shard * 6 + (shard * 12).div_ceil(dp as u64)
}

/// Activation bytes stored per layer per in-flight microbatch when full
/// activation recomputation (checkpointing) is enabled: only the layer
/// *input* (`s·b·h` fp16) is kept; everything else is recomputed during
/// the backward pass. This is how pipeline-only systems such as Varuna
/// keep deep pipelines within memory.
pub fn checkpoint_bytes_per_layer(cfg: &GptConfig, micro_batch: u64) -> u64 {
    cfg.seq_len as u64 * micro_batch * cfg.hidden as u64 * 2
}

/// Peak number of in-flight microbatches whose activations stage `stage`
/// must hold under the memory-efficient 1F1B schedule:
/// `min(pp - stage, n_mb)`. (Under GPipe it would be `n_mb` for every
/// stage — the memory blow-up 1F1B exists to avoid, Fig. 2.)
pub fn one_f_one_b_inflight(pp: usize, stage: usize, n_microbatches: u64) -> u64 {
    ((pp - stage) as u64).min(n_microbatches.max(1))
}

/// Activation bytes at peak for one GPU of stage `stage` under 1F1B.
pub fn activation_bytes_1f1b(
    cfg: &GptConfig,
    pp: usize,
    tp: usize,
    stage: usize,
    micro_batch: u64,
    n_microbatches: u64,
) -> u64 {
    let layers = cfg.layers_of_stage(pp, stage) as u64;
    let inflight = one_f_one_b_inflight(pp, stage, n_microbatches);
    layers * activation_bytes_per_layer(cfg, micro_batch, tp) * inflight
}

/// Activation bytes at peak for one GPU of stage `stage` under 1F1B with
/// full recomputation: checkpoints for every in-flight microbatch plus the
/// transient full activations of the one layer being recomputed.
pub fn activation_bytes_1f1b_recompute(
    cfg: &GptConfig,
    pp: usize,
    tp: usize,
    stage: usize,
    micro_batch: u64,
    n_microbatches: u64,
) -> u64 {
    let layers = cfg.layers_of_stage(pp, stage) as u64;
    let inflight = one_f_one_b_inflight(pp, stage, n_microbatches);
    layers * checkpoint_bytes_per_layer(cfg, micro_batch) * inflight
        + activation_bytes_per_layer(cfg, micro_batch, tp)
}

/// Activation bytes at peak under the memory-hungry GPipe schedule
/// (all `n_mb` microbatches in flight on every stage).
pub fn activation_bytes_gpipe(
    cfg: &GptConfig,
    pp: usize,
    tp: usize,
    stage: usize,
    micro_batch: u64,
    n_microbatches: u64,
) -> u64 {
    let layers = cfg.layers_of_stage(pp, stage) as u64;
    layers * activation_bytes_per_layer(cfg, micro_batch, tp) * n_microbatches.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_state_shrinks_with_sharding() {
        let g = GptConfig::gpt_3_1b();
        let full = model_state_bytes(&g, 1, 1, 0);
        assert_eq!(full, g.num_params() * BYTES_PER_PARAM);
        let sharded = model_state_bytes(&g, 4, 8, 1);
        assert!(sharded < full / 20);
    }

    #[test]
    fn inflight_counts_match_1f1b() {
        // pp=4: stage 0 holds 4 in-flight activations, last stage holds 1.
        assert_eq!(one_f_one_b_inflight(4, 0, 32), 4);
        assert_eq!(one_f_one_b_inflight(4, 3, 32), 1);
        // Bounded by the number of microbatches.
        assert_eq!(one_f_one_b_inflight(8, 0, 2), 2);
    }

    #[test]
    fn gpipe_needs_more_activation_memory_than_1f1b() {
        let g = GptConfig::gpt_1_1b();
        let (pp, tp, micro, n_mb) = (4, 2, 2, 32);
        for stage in 0..pp {
            let a = activation_bytes_1f1b(&g, pp, tp, stage, micro, n_mb);
            let b = activation_bytes_gpipe(&g, pp, tp, stage, micro, n_mb);
            assert!(b >= a);
        }
        assert!(
            activation_bytes_gpipe(&g, 4, 2, 0, 2, 32)
                > 4 * activation_bytes_1f1b(&g, 4, 2, 0, 2, 32)
        );
    }

    #[test]
    fn earlier_stages_hold_more_activations() {
        let g = GptConfig::gpt_3_1b();
        let s0 = activation_bytes_1f1b(&g, 4, 8, 0, 1, 32);
        let s3 = activation_bytes_1f1b(&g, 4, 8, 3, 1, 32);
        assert!(s0 > 3 * s3);
    }

    #[test]
    fn activation_scales_with_microbatch() {
        let g = GptConfig::gpt_1_1b();
        let a1 = activation_bytes_per_layer(&g, 1, 4);
        let a4 = activation_bytes_per_layer(&g, 4, 4);
        assert!((a4 as f64 / a1 as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn selective_recompute_sits_between_full_and_checkpoint() {
        let g = GptConfig::gpt_3_1b();
        let full = activation_bytes_per_layer(&g, 2, 4);
        let selective = activation_bytes_selective(&g, 2, 4);
        let ckpt = checkpoint_bytes_per_layer(&g, 2);
        assert!(selective < full);
        assert!(ckpt < selective);
        // Selective drops the attention matrices, which dominate at long
        // sequence lengths.
        assert!(selective < full / 2);
    }

    #[test]
    fn zero1_shards_optimizer_state_only() {
        let g = GptConfig::gpt_3_1b();
        let plain = model_state_bytes(&g, 4, 8, 1);
        let z1 = model_state_bytes_zero1(&g, 4, 8, 8, 1);
        // 18 B/param -> 6 + 12/8 = 7.5 B/param.
        let ratio = plain as f64 / z1 as f64;
        assert!(ratio > 2.2 && ratio < 2.6, "ratio {ratio}");
        // dp = 1 degenerates to the replicated layout.
        assert_eq!(model_state_bytes_zero1(&g, 4, 8, 1, 1), plain);
    }

    #[test]
    fn recomputation_slashes_activation_memory() {
        let g = GptConfig::gpt_3_1b();
        let full = activation_bytes_1f1b(&g, 8, 1, 0, 1, 64);
        let ckpt = activation_bytes_1f1b_recompute(&g, 8, 1, 0, 1, 64);
        assert!(
            ckpt < full / 10,
            "checkpointing {ckpt} should dwarf full storage {full}"
        );
    }

    #[test]
    fn tensor_parallel_shards_most_activation_memory() {
        let g = GptConfig::gpt_3_1b();
        let t1 = activation_bytes_per_layer(&g, 2, 1) as f64;
        let t8 = activation_bytes_per_layer(&g, 2, 8) as f64;
        // Not a full 8x reduction (the 10·s·b·h term is replicated).
        assert!(t1 / t8 > 4.0 && t1 / t8 < 8.0);
    }
}
