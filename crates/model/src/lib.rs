//! Model substrate for the Pipette reproduction: GPT transformer
//! descriptions and the arithmetic the configurator needs about them.
//!
//! Everything Pipette decides is driven by four families of quantities:
//!
//! * **FLOPs** per microbatch per pipeline stage ([`flops`]) — the compute
//!   term `C` of the latency models;
//! * **message sizes** for pipeline, tensor, and data parallel
//!   communication ([`messages`]) — the `msg` terms of Eqs. 5–6;
//! * **memory anatomy** ([`memory`]) — weights/optimizer state and
//!   activation footprints per GPU;
//! * **the configuration space itself** ([`parallel`], [`batching`]) —
//!   `(pp, tp, dp)` factorizations and micro/minibatch decompositions
//!   (Algorithm 1's loops).
//!
//! # Example
//!
//! ```
//! use pipette_model::{GptConfig, ParallelConfig};
//!
//! let gpt = GptConfig::gpt_3_1b();
//! assert!(gpt.num_params() > 3_000_000_000);
//! let configs = ParallelConfig::enumerate(128, 8, gpt.n_layers);
//! assert!(configs.iter().all(|c| c.num_workers() == 128));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod error;
pub mod flops;
pub mod gpt;
pub mod memory;
pub mod messages;
pub mod parallel;
pub mod throughput;

pub use batching::{divisors, BatchConfig, MicrobatchPlan};
pub use error::ModelError;
pub use gpt::GptConfig;
pub use parallel::{ParallelConfig, WorkerId};
