//! Error types for model-side configuration arithmetic.

use std::error::Error;
use std::fmt;

/// Errors from invalid batch or parallel configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// `dp` does not divide the global batch.
    IndivisibleBatch {
        /// Global batch size.
        global: u64,
        /// Data-parallel degree.
        dp: usize,
    },
    /// The microbatch size does not divide the minibatch.
    IndivisibleMicrobatch {
        /// Per-replica minibatch.
        minibatch: u64,
        /// Requested microbatch.
        micro: u64,
    },
    /// `pp·tp·dp` does not equal the GPU count.
    WorkerMismatch {
        /// Logical workers in the configuration.
        workers: usize,
        /// Physical GPUs available.
        gpus: usize,
    },
    /// Tensor parallelism wider than allowed (usually the node size).
    TensorWaysTooLarge {
        /// Requested tensor ways.
        tp: usize,
        /// Maximum allowed.
        max_tp: usize,
    },
    /// More pipeline stages than transformer layers.
    TooManyStages {
        /// Requested stages.
        pp: usize,
        /// Available layers.
        layers: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::IndivisibleBatch { global, dp } => {
                write!(
                    f,
                    "data parallel degree {dp} does not divide global batch {global}"
                )
            }
            ModelError::IndivisibleMicrobatch { minibatch, micro } => {
                write!(
                    f,
                    "microbatch {micro} does not divide minibatch {minibatch}"
                )
            }
            ModelError::WorkerMismatch { workers, gpus } => {
                write!(
                    f,
                    "configuration has {workers} workers but cluster has {gpus} GPUs"
                )
            }
            ModelError::TensorWaysTooLarge { tp, max_tp } => {
                write!(f, "tensor parallel ways {tp} exceed the maximum {max_tp}")
            }
            ModelError::TooManyStages { pp, layers } => {
                write!(f, "{pp} pipeline stages exceed the {layers} model layers")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ModelError::IndivisibleBatch { global: 100, dp: 3 };
        assert!(e.to_string().contains("100"));
        let e = ModelError::TensorWaysTooLarge { tp: 16, max_tp: 8 };
        assert!(e.to_string().contains("16"));
    }
}
