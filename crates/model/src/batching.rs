//! Batch decomposition: global batch → per-replica minibatch → microbatches.
//!
//! With data parallel degree `dp`, each replica processes a minibatch of
//! `global / dp` samples per iteration, split into `n_mb = mini / micro`
//! microbatches that flow through the pipeline (Algorithm 1, lines 4–5).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Global batch configuration for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Samples per optimizer step across the whole cluster.
    pub global_batch: u64,
}

impl BatchConfig {
    /// Creates a batch config.
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` is zero.
    pub fn new(global_batch: u64) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` constructor contract
        assert!(global_batch > 0, "global batch must be positive");
        Self { global_batch }
    }

    /// The per-replica minibatch under `dp`-way data parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndivisibleBatch`] if `dp` does not divide the
    /// global batch.
    pub fn minibatch(&self, dp: usize) -> Result<u64, ModelError> {
        let dp = dp as u64;
        if dp == 0 || !self.global_batch.is_multiple_of(dp) {
            return Err(ModelError::IndivisibleBatch {
                global: self.global_batch,
                dp: dp as usize,
            });
        }
        Ok(self.global_batch / dp)
    }
}

/// A choice of microbatch size for a given minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicrobatchPlan {
    /// Samples per microbatch.
    pub micro_batch: u64,
    /// Microbatches per iteration per replica (`mini / micro`).
    pub n_microbatches: u64,
}

impl MicrobatchPlan {
    /// Builds a plan; `micro_batch` must divide `minibatch`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IndivisibleMicrobatch`] otherwise.
    pub fn new(minibatch: u64, micro_batch: u64) -> Result<Self, ModelError> {
        if micro_batch == 0 || !minibatch.is_multiple_of(micro_batch) {
            return Err(ModelError::IndivisibleMicrobatch {
                minibatch,
                micro: micro_batch,
            });
        }
        Ok(Self {
            micro_batch,
            n_microbatches: minibatch / micro_batch,
        })
    }

    /// All valid plans for a minibatch with microbatch size at most
    /// `max_micro` (the paper sweeps 1–8).
    pub fn enumerate(minibatch: u64, max_micro: u64) -> Vec<Self> {
        divisors(minibatch)
            .into_iter()
            .filter(|&d| d <= max_micro)
            .map(|d| Self {
                micro_batch: d,
                n_microbatches: minibatch / d,
            })
            .collect()
    }

    /// The minibatch this plan decomposes.
    pub fn minibatch(&self) -> u64 {
        self.micro_batch * self.n_microbatches
    }
}

/// All divisors of `n` in ascending order.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn divisors(n: u64) -> Vec<u64> {
    debug_assert!(n > 0, "divisors of zero are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d * d != n {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn minibatch_divides() {
        let b = BatchConfig::new(512);
        assert_eq!(b.minibatch(4).unwrap(), 128);
        assert!(b.minibatch(3).is_err());
    }

    #[test]
    fn plan_round_trips() {
        let p = MicrobatchPlan::new(128, 4).unwrap();
        assert_eq!(p.n_microbatches, 32);
        assert_eq!(p.minibatch(), 128);
        assert!(MicrobatchPlan::new(128, 3).is_err());
        assert!(MicrobatchPlan::new(128, 0).is_err());
    }

    #[test]
    fn enumerate_respects_cap() {
        let plans = MicrobatchPlan::enumerate(64, 8);
        let sizes: Vec<u64> = plans.iter().map(|p| p.micro_batch).collect();
        assert_eq!(sizes, vec![1, 2, 4, 8]);
    }

    #[test]
    fn divisors_of_60() {
        assert_eq!(divisors(60), vec![1, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    proptest! {
        #[test]
        fn divisors_divide_and_are_sorted(n in 1u64..5000) {
            let ds = divisors(n);
            prop_assert!(ds.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(ds.iter().all(|d| n % d == 0));
            prop_assert_eq!(*ds.first().unwrap(), 1);
            prop_assert_eq!(*ds.last().unwrap(), n);
        }

        #[test]
        fn every_plan_reconstructs_minibatch(mini in 1u64..1024, cap in 1u64..16) {
            for p in MicrobatchPlan::enumerate(mini, cap) {
                prop_assert_eq!(p.minibatch(), mini);
                prop_assert!(p.micro_batch <= cap);
            }
        }
    }
}
