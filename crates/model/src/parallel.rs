//! 3D-parallel configurations and logical worker indexing.
//!
//! A configuration splits `G` GPUs into `pp` pipeline stages × `tp` tensor
//! ways × `dp` data replicas with `pp · tp · dp = G` (Fig. 1). A *logical
//! worker* is a coordinate `(x, y, z)` in that grid (the paper's Eq. 2);
//! the mapping crate assigns each worker to a physical GPU.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `(pp, tp, dp)` parallelization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Pipeline-parallel ways (number of stages).
    pub pp: usize,
    /// Tensor-parallel ways.
    pub tp: usize,
    /// Data-parallel ways (replicas).
    pub dp: usize,
}

/// Coordinate of a logical worker in the `(pipeline, tensor, data)` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkerId {
    /// Pipeline stage index `x ∈ [0, pp)`.
    pub stage: usize,
    /// Tensor-parallel rank `y ∈ [0, tp)`.
    pub tensor: usize,
    /// Data-parallel replica `z ∈ [0, dp)`.
    pub data: usize,
}

impl ParallelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    pub fn new(pp: usize, tp: usize, dp: usize) -> Self {
        debug_assert!(
            pp > 0 && tp > 0 && dp > 0,
            "parallel degrees must be positive"
        );
        Self { pp, tp, dp }
    }

    /// Total logical workers (`pp · tp · dp`).
    pub fn num_workers(&self) -> usize {
        self.pp * self.tp * self.dp
    }

    /// Linear index of a worker: tensor rank fastest, then data replica,
    /// then pipeline stage. With the identity mapping and `tp · dp` equal to
    /// the node size, this keeps each tensor group on consecutive GPUs —
    /// i.e. inside one node — which is the conventional Megatron placement.
    ///
    /// # Panics
    ///
    /// Panics if the worker is out of range for this configuration.
    pub fn index_of(&self, w: WorkerId) -> usize {
        debug_assert!(
            w.stage < self.pp && w.tensor < self.tp && w.data < self.dp,
            "worker out of range"
        );
        (w.stage * self.dp + w.data) * self.tp + w.tensor
    }

    /// Inverse of [`Self::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_workers()`.
    pub fn worker_at(&self, idx: usize) -> WorkerId {
        debug_assert!(idx < self.num_workers(), "worker index out of range");
        let tensor = idx % self.tp;
        let rest = idx / self.tp;
        let data = rest % self.dp;
        let stage = rest / self.dp;
        WorkerId {
            stage,
            tensor,
            data,
        }
    }

    /// Iterates over all workers in linear-index order.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.num_workers()).map(|i| self.worker_at(i))
    }

    /// Validates the configuration against a cluster and model:
    /// `pp·tp·dp == n_gpus`, `tp ≤ max_tp` and `tp | max_tp` (usually the
    /// node size — tensor all-reduce traffic must stay on NVLink, so `tp`
    /// must pack into a node), and `pp ≤ n_layers`.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the violated constraint.
    pub fn validate(
        &self,
        n_gpus: usize,
        max_tp: usize,
        n_layers: usize,
    ) -> Result<(), ModelError> {
        if self.num_workers() != n_gpus {
            return Err(ModelError::WorkerMismatch {
                workers: self.num_workers(),
                gpus: n_gpus,
            });
        }
        if self.tp > max_tp || !max_tp.is_multiple_of(self.tp) {
            return Err(ModelError::TensorWaysTooLarge {
                tp: self.tp,
                max_tp,
            });
        }
        if self.pp > n_layers {
            return Err(ModelError::TooManyStages {
                pp: self.pp,
                layers: n_layers,
            });
        }
        Ok(())
    }

    /// Enumerates all valid `(pp, tp, dp)` triples for `n_gpus` GPUs with
    /// the given constraints, in lexicographic `(pp, tp)` order.
    pub fn enumerate(n_gpus: usize, max_tp: usize, n_layers: usize) -> Vec<Self> {
        let mut out = Vec::new();
        for pp in crate::batching::divisors(n_gpus as u64) {
            let pp = pp as usize;
            if pp > n_layers {
                continue;
            }
            let rest = n_gpus / pp;
            for tp in crate::batching::divisors(rest as u64) {
                let tp = tp as usize;
                if tp > max_tp || !max_tp.is_multiple_of(tp) {
                    continue;
                }
                out.push(Self::new(pp, tp, rest / tp));
            }
        }
        out
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(pp={}, tp={}, dp={})", self.pp, self.tp, self.dp)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w[x={},y={},z={}]", self.stage, self.tensor, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn enumerate_products_are_exact() {
        let configs = ParallelConfig::enumerate(128, 8, 32);
        assert!(!configs.is_empty());
        for c in &configs {
            assert_eq!(c.num_workers(), 128);
            assert!(c.tp <= 8);
            assert!(c.pp <= 32);
        }
        // (pp=1, tp=1, dp=128) must be present; pp=64 must not (> 32 layers).
        assert!(configs.contains(&ParallelConfig::new(1, 1, 128)));
        assert!(!configs.iter().any(|c| c.pp == 64));
    }

    #[test]
    fn index_round_trip_small() {
        let c = ParallelConfig::new(3, 2, 2);
        for i in 0..c.num_workers() {
            assert_eq!(c.index_of(c.worker_at(i)), i);
        }
    }

    #[test]
    fn tensor_rank_is_fastest_dimension() {
        let c = ParallelConfig::new(2, 4, 2);
        let w0 = c.worker_at(0);
        let w1 = c.worker_at(1);
        assert_eq!(w0.stage, w1.stage);
        assert_eq!(w0.data, w1.data);
        assert_eq!(w1.tensor, w0.tensor + 1);
    }

    #[test]
    fn validation_catches_each_constraint() {
        let c = ParallelConfig::new(4, 16, 2);
        assert!(matches!(
            c.validate(128, 8, 32),
            Err(ModelError::TensorWaysTooLarge { .. })
        ));
        let c = ParallelConfig::new(64, 1, 2);
        assert!(matches!(
            c.validate(128, 8, 32),
            Err(ModelError::TooManyStages { .. })
        ));
        let c = ParallelConfig::new(2, 2, 2);
        assert!(matches!(
            c.validate(128, 8, 32),
            Err(ModelError::WorkerMismatch { .. })
        ));
        assert!(ParallelConfig::new(4, 8, 4).validate(128, 8, 32).is_ok());
    }

    proptest! {
        #[test]
        fn index_round_trips(pp in 1usize..6, tp in 1usize..6, dp in 1usize..6) {
            let c = ParallelConfig::new(pp, tp, dp);
            for i in 0..c.num_workers() {
                prop_assert_eq!(c.index_of(c.worker_at(i)), i);
            }
        }

        #[test]
        fn enumerate_is_exhaustive_over_divisor_triples(g in 1usize..200) {
            let configs = ParallelConfig::enumerate(g, g, usize::MAX >> 1);
            // Count triples (pp, tp, dp) with pp*tp*dp = g and tp | g by
            // brute force (max_tp == g here, so tp must divide g — which
            // every divisor of g/pp does not necessarily satisfy... it
            // does: tp divides g/pp which divides g).
            let mut count = 0;
            for pp in 1..=g {
                for tp in 1..=g {
                    if pp * tp <= g && g % (pp * tp) == 0 && g % tp == 0 {
                        count += 1;
                    }
                }
            }
            prop_assert_eq!(configs.len(), count);
        }
    }
}
