//! FLOP counting for transformer training.
//!
//! These counts feed the compute term `C` (per-microbatch computation time)
//! of both latency models. The constants follow the standard Megatron-LM
//! accounting: a transformer layer performs `24 h²` matmul FLOPs per token
//! in the forward pass plus `4 s h` for the attention score/value products,
//! and the backward pass costs twice the forward.

use crate::gpt::GptConfig;

/// Forward FLOPs for one transformer layer over `tokens` tokens.
pub fn layer_fwd_flops(cfg: &GptConfig, tokens: u64) -> f64 {
    let h = cfg.hidden as f64;
    let s = cfg.seq_len as f64;
    tokens as f64 * (24.0 * h * h + 4.0 * s * h)
}

/// Backward FLOPs for one transformer layer over `tokens` tokens (2× fwd).
pub fn layer_bwd_flops(cfg: &GptConfig, tokens: u64) -> f64 {
    2.0 * layer_fwd_flops(cfg, tokens)
}

/// Forward FLOPs of the output-head projection (logits) over `tokens`.
pub fn head_fwd_flops(cfg: &GptConfig, tokens: u64) -> f64 {
    2.0 * tokens as f64 * cfg.hidden as f64 * cfg.vocab as f64
}

/// Forward FLOPs of pipeline stage `stage` for one microbatch of
/// `micro_batch` samples.
///
/// The head projection is attributed to the last stage; the (cheap)
/// embedding lookup is ignored.
pub fn stage_fwd_flops(cfg: &GptConfig, pp: usize, stage: usize, micro_batch: u64) -> f64 {
    let tokens = micro_batch * cfg.seq_len as u64;
    let mut f = cfg.layers_of_stage(pp, stage) as f64 * layer_fwd_flops(cfg, tokens);
    if stage == pp - 1 {
        f += head_fwd_flops(cfg, tokens);
    }
    f
}

/// Backward FLOPs of pipeline stage `stage` for one microbatch (2× fwd).
pub fn stage_bwd_flops(cfg: &GptConfig, pp: usize, stage: usize, micro_batch: u64) -> f64 {
    2.0 * stage_fwd_flops(cfg, pp, stage, micro_batch)
}

/// Total training FLOPs for one iteration over `global_batch` samples,
/// using the `6 · params · tokens` rule of thumb (fwd + bwd).
pub fn iteration_flops(cfg: &GptConfig, global_batch: u64) -> f64 {
    6.0 * cfg.num_params() as f64 * (global_batch * cfg.seq_len as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_is_twice_forward() {
        let g = GptConfig::gpt_1_1b();
        assert_eq!(layer_bwd_flops(&g, 100), 2.0 * layer_fwd_flops(&g, 100));
        assert_eq!(
            stage_bwd_flops(&g, 4, 1, 2),
            2.0 * stage_fwd_flops(&g, 4, 1, 2)
        );
    }

    #[test]
    fn stage_flops_sum_close_to_six_nd_rule() {
        // Sum of fwd+bwd over stages should approximate 6 * N * T within the
        // usual ~10-15 % (embeddings excluded from the per-stage count).
        let g = GptConfig::gpt_3_1b();
        let micro = 4u64;
        let pp = 4;
        let sum: f64 = (0..pp)
            .map(|s| stage_fwd_flops(&g, pp, s, micro) + stage_bwd_flops(&g, pp, s, micro))
            .sum();
        let rule = 6.0 * g.num_params() as f64 * (micro * g.seq_len as u64) as f64;
        let ratio = sum / rule;
        assert!(ratio > 0.8 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn flops_scale_linearly_in_microbatch() {
        let g = GptConfig::gpt_1_1b();
        let f1 = stage_fwd_flops(&g, 2, 0, 1);
        let f4 = stage_fwd_flops(&g, 2, 0, 4);
        assert!((f4 / f1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn last_stage_carries_head() {
        let g = GptConfig::new(8, 1024, 16, 2048, 51200);
        // Same layer count per stage at pp=2; last stage adds the head.
        let f0 = stage_fwd_flops(&g, 2, 0, 1);
        let f1 = stage_fwd_flops(&g, 2, 1, 1);
        assert!(f1 > f0);
        assert!((f1 - f0 - head_fwd_flops(&g, 2048)).abs() < 1.0);
    }
}
