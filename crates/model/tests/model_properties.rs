//! Property tests for the model substrate: conservation laws and
//! monotonicities that must hold for arbitrary model shapes and
//! configurations.

use pipette_model::{
    divisors, flops, memory, messages, BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig,
};
use proptest::prelude::*;

fn arb_gpt() -> impl Strategy<Value = GptConfig> {
    (1usize..32, 1usize..8, 1usize..6).prop_map(|(layers, heads_pow, mult)| {
        let heads = heads_pow * 4;
        let hidden = heads * 32 * mult;
        GptConfig::new(layers, hidden, heads, 2048, 51200)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layers are conserved across any stage split.
    #[test]
    fn layers_conserved(gpt in arb_gpt(), pp_sel in 1usize..8) {
        let pp = pp_sel.min(gpt.n_layers);
        let total: usize = (0..pp).map(|s| gpt.layers_of_stage(pp, s)).sum();
        prop_assert_eq!(total, gpt.n_layers);
        // Earliest stages get the remainder: non-increasing layer counts.
        let counts: Vec<usize> = (0..pp).map(|s| gpt.layers_of_stage(pp, s)).collect();
        prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Stage parameters are conserved (modulo the duplicated tied head).
    #[test]
    fn stage_params_conserved(gpt in arb_gpt(), pp_sel in 1usize..8) {
        let pp = pp_sel.min(gpt.n_layers);
        let total: u64 = (0..pp).map(|s| gpt.stage_params(pp, s)).sum();
        let extra = if pp > 1 { gpt.embedding_params() } else { 0 };
        prop_assert_eq!(total, gpt.num_params() + extra);
    }

    /// Stage FLOPs are conserved across the pipeline split.
    #[test]
    fn stage_flops_conserved(gpt in arb_gpt(), pp_sel in 1usize..8, micro in 1u64..8) {
        let pp = pp_sel.min(gpt.n_layers);
        let total: f64 = (0..pp).map(|s| flops::stage_fwd_flops(&gpt, pp, s, micro)).sum();
        let single = flops::stage_fwd_flops(&gpt, 1, 0, micro);
        prop_assert!((total / single - 1.0).abs() < 1e-12);
    }

    /// Model-state bytes shrink (weakly) monotonically with tensor ways,
    /// and ZeRO-1 never uses more memory than the replicated layout.
    #[test]
    fn sharding_is_monotone(gpt in arb_gpt(), dp in 1usize..16) {
        let mut last = u64::MAX;
        for tp in [1usize, 2, 4, 8] {
            let bytes = memory::model_state_bytes(&gpt, 1, tp, 0);
            prop_assert!(bytes <= last);
            last = bytes;
            let z1 = memory::model_state_bytes_zero1(&gpt, 1, tp, dp, 0);
            prop_assert!(z1 <= bytes + 1);
        }
    }

    /// Message sizes scale exactly linearly with the microbatch.
    #[test]
    fn messages_scale_linearly(gpt in arb_gpt(), micro in 1u64..16) {
        prop_assert_eq!(
            messages::pp_message_bytes(&gpt, micro),
            micro * messages::pp_message_bytes(&gpt, 1)
        );
        prop_assert_eq!(
            messages::tp_allreduce_bytes(&gpt, micro),
            micro * messages::tp_allreduce_bytes(&gpt, 1)
        );
    }

    /// Every enumerated configuration validates, and every validating
    /// triple is enumerated (soundness + completeness).
    #[test]
    fn enumeration_is_sound_and_complete(g_pow in 3usize..8, layers in 8usize..40) {
        let g = 1usize << g_pow;
        let configs = ParallelConfig::enumerate(g, 8, layers);
        for cfg in &configs {
            prop_assert!(cfg.validate(g, 8, layers).is_ok());
        }
        // Completeness over a brute-force scan.
        for pp in 1..=g {
            for tp in [1usize, 2, 4, 8] {
                if !g.is_multiple_of(pp * tp) || pp > layers {
                    continue;
                }
                let cfg = ParallelConfig::new(pp, tp, g / (pp * tp));
                prop_assert!(configs.contains(&cfg), "{cfg} missing");
            }
        }
    }

    /// Batch decomposition is exact: every plan multiplies back to the
    /// global batch through `dp`.
    #[test]
    fn batch_decomposition_is_exact(global_pow in 4u32..11, dp_pow in 0u32..5) {
        let global = 1u64 << global_pow;
        let dp = 1usize << dp_pow;
        let mini = BatchConfig::new(global).minibatch(dp).expect("powers of two divide");
        for plan in MicrobatchPlan::enumerate(mini, 8) {
            prop_assert_eq!(plan.micro_batch * plan.n_microbatches * dp as u64, global);
        }
    }

    /// `divisors` is multiplicative-closed under the divisor relation.
    #[test]
    fn divisors_of_divisors_divide(n in 1u64..2000) {
        let ds = divisors(n);
        for &d in &ds {
            for &e in &divisors(d) {
                prop_assert!(n % e == 0);
            }
        }
    }

    /// 1F1B in-flight counts: earlier stages never hold fewer microbatches
    /// than later ones, and the first stage saturates at min(pp, n_mb).
    #[test]
    fn inflight_counts_are_monotone(pp in 1usize..12, n_mb in 1u64..64) {
        let mut last = u64::MAX;
        for s in 0..pp {
            let i = memory::one_f_one_b_inflight(pp, s, n_mb);
            prop_assert!(i <= last);
            prop_assert!(i >= 1);
            last = i;
        }
        prop_assert_eq!(memory::one_f_one_b_inflight(pp, 0, n_mb), (pp as u64).min(n_mb));
    }
}
