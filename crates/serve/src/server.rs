//! The serving loop: bounded admission, a seq-ordered reorder buffer,
//! worker threads, and graceful drain.

use crate::breaker::{Breaker, BreakerConfig, Transition};
use crate::request::{Control, ExecContext, ParseOutcome, RequestHandler};
use pipette_obs::{CostUnit, EventKind, Metrics, Trace, TraceConfig};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Server tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing jobs. Determinism of the response stream
    /// does not depend on this.
    pub workers: usize,
    /// Jobs the admission queue holds before shedding; requests arriving
    /// at a full queue get a typed `overloaded` rejection.
    pub queue_limit: usize,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Logical backoff hint carried by `overloaded` rejections, in the
    /// Table II cost units the deadline budget uses.
    pub retry_after_units: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_limit: 64,
            breaker: BreakerConfig::default(),
            retry_after_units: 4096,
        }
    }
}

/// What one drained server run did, with its telemetry trace.
#[derive(Debug)]
pub struct ServeSummary {
    /// Requests assigned a sequence number (jobs + sheds + parse errors).
    pub admitted: u64,
    /// Responses committed (always equals `admitted` after a drain).
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Lines that failed to parse.
    pub errors: u64,
    /// Requests served in degraded (analytic) mode.
    pub degraded_requests: u64,
    /// Times the circuit breaker opened.
    pub breaker_trips: u64,
    /// Whether a `shutdown` control ended the input.
    pub shutdown: bool,
    /// The server's own event trace: request lifecycle, shedding,
    /// breaker transitions, and final counters under one `serve` span.
    pub trace: Trace,
}

/// One finished request waiting in the reorder buffer.
struct Completion {
    response: String,
    outcome: String,
    degraded: bool,
}

/// State shared by the reader, workers, and committer.
struct Inner<J> {
    queue: VecDeque<(u64, J)>,
    completions: BTreeMap<u64, Completion>,
    /// Next sequence number to assign at admission.
    next_seq: u64,
    /// Next sequence number the committer will write.
    next_commit: u64,
    in_flight: usize,
    input_done: bool,
    saw_shutdown: bool,
    breaker: Breaker,
    shed: u64,
    errors: u64,
    degraded_requests: u64,
    trace: Trace,
}

/// The request loop. Usually driven via [`run_pipe`] / [`run_unix`];
/// the low-level [`Server::admit`] / [`Server::worker_loop`] /
/// [`Server::commit_loop`] API is public so tests can stage
/// deterministic scenarios (e.g. admitting a burst before any worker
/// runs, to exercise shedding).
pub struct Server<J> {
    config: ServerConfig,
    inner: Mutex<Inner<J>>,
    work_ready: Condvar,
    commit_ready: Condvar,
}

impl<J: Send> Server<J> {
    /// A fresh server; its trace records with wall-clock annotations off
    /// so the stream is bit-comparable across runs.
    pub fn new(config: ServerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                completions: BTreeMap::new(),
                next_seq: 0,
                next_commit: 0,
                in_flight: 0,
                input_done: false,
                saw_shutdown: false,
                breaker: Breaker::new(config.breaker),
                shed: 0,
                errors: 0,
                degraded_requests: 0,
                trace: Trace::new(TraceConfig::default()),
            }),
            work_ready: Condvar::new(),
            commit_ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<J>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parses and admits one input line. Every non-control line consumes
    /// a sequence number and will produce exactly one committed response
    /// (job result, typed `overloaded` rejection, or typed error).
    /// Returns `false` when a shutdown control was consumed — the caller
    /// must stop reading and call [`Server::finish_input`].
    pub fn admit<H>(&self, handler: &H, line: &str) -> bool
    where
        H: RequestHandler<Job = J>,
    {
        match handler.parse(line) {
            ParseOutcome::Control(Control::Shutdown) => {
                let mut inner = self.lock();
                inner.saw_shutdown = true;
                false
            }
            ParseOutcome::Error(message) => {
                let mut inner = self.lock();
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.errors += 1;
                inner.trace.push(EventKind::RequestStart {
                    seq,
                    op: "invalid".to_string(),
                });
                let response = handler.error_response(seq, &message);
                inner.completions.insert(
                    seq,
                    Completion {
                        response,
                        outcome: "error".to_string(),
                        degraded: false,
                    },
                );
                // Release the state lock before waking the committer so
                // it never wakes straight into a contended mutex.
                drop(inner);
                self.commit_ready.notify_all();
                true
            }
            ParseOutcome::Job { op, job } => {
                let mut inner = self.lock();
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.trace.push(EventKind::RequestStart { seq, op });
                let queue_len = inner.queue.len() as u64;
                if inner.queue.len() >= self.config.queue_limit {
                    // Deterministic shed: the decision depends only on
                    // queue occupancy at admission, and the rejection is
                    // committed in sequence like any other response.
                    inner.shed += 1;
                    let limit = self.config.queue_limit as u64;
                    let retry_after_units = self.config.retry_after_units;
                    inner.trace.push(EventKind::RequestShed {
                        seq,
                        queue_len,
                        limit,
                        retry_after_units,
                    });
                    let response =
                        handler.overloaded_response(seq, queue_len, limit, retry_after_units);
                    inner.completions.insert(
                        seq,
                        Completion {
                            response,
                            outcome: "overloaded".to_string(),
                            degraded: false,
                        },
                    );
                    drop(inner);
                    self.commit_ready.notify_all();
                } else {
                    inner.queue.push_back((seq, job));
                    drop(inner);
                    self.work_ready.notify_one();
                }
                true
            }
        }
    }

    /// Marks the input stream exhausted: no further admissions, workers
    /// drain the queue and exit, the committer exits once every assigned
    /// sequence number has been written.
    pub fn finish_input(&self) {
        let mut inner = self.lock();
        inner.input_done = true;
        drop(inner);
        self.work_ready.notify_all();
        self.commit_ready.notify_all();
    }

    fn push_transition(trace: &mut Trace, t: Transition) {
        trace.push(EventKind::BreakerTransition {
            from: t.from.name(),
            to: t.to.name(),
            failures: t.failures,
        });
    }

    /// Executes queued jobs until the queue is empty *and* the input is
    /// finished. Run from one or more worker threads; with one worker
    /// the breaker sees requests strictly in sequence order.
    pub fn worker_loop<H>(&self, handler: &H)
    where
        H: RequestHandler<Job = J>,
    {
        loop {
            let mut inner = self.lock();
            let (seq, job, degraded) = loop {
                if let Some((seq, job)) = inner.queue.pop_front() {
                    // The degrade decision is taken at dequeue, under the
                    // lock, so a single-worker server applies the breaker
                    // to requests strictly in admission order.
                    let degraded = inner.breaker.degrade_next();
                    inner.in_flight += 1;
                    break (seq, job, degraded);
                }
                if inner.input_done {
                    return;
                }
                inner = self
                    .work_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            };
            drop(inner);

            let exec = handler.execute(job, &ExecContext { seq, degraded });

            let mut inner = self.lock();
            inner.in_flight -= 1;
            let transition = if degraded {
                inner.breaker.record_degraded_served()
            } else {
                inner.breaker.record_result(exec.estimator_failure)
            };
            if let Some(t) = transition {
                Self::push_transition(&mut inner.trace, t);
            }
            let served_degraded = degraded || exec.degraded;
            if served_degraded {
                inner.degraded_requests += 1;
            }
            inner.completions.insert(
                seq,
                Completion {
                    response: exec.response,
                    outcome: exec.outcome,
                    degraded: served_degraded,
                },
            );
            drop(inner);
            self.commit_ready.notify_all();
        }
    }

    /// Writes responses strictly in sequence order until every admitted
    /// request has been committed and the input is finished. Run from a
    /// single committer thread (it owns the writer).
    ///
    /// # Errors
    ///
    /// Propagates the first write failure.
    pub fn commit_loop<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        loop {
            let mut inner = self.lock();
            let completion = loop {
                let want = inner.next_commit;
                if let Some(c) = inner.completions.remove(&want) {
                    inner.next_commit += 1;
                    inner.trace.push(EventKind::RequestDone {
                        seq: want,
                        outcome: c.outcome.clone(),
                        degraded: c.degraded,
                    });
                    break Some(c);
                }
                if inner.input_done && inner.next_commit >= inner.next_seq {
                    break None;
                }
                inner = self
                    .commit_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            };
            drop(inner);
            match completion {
                Some(c) => {
                    writer.write_all(c.response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    // Flush per response: an interactive client blocks on
                    // the reply before sending its next request.
                    writer.flush()?;
                }
                None => {
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
    }

    /// Consumes the drained server into its summary: counters are
    /// flushed into the trace and the whole stream is wrapped in a
    /// `serve` span costed in requests.
    pub fn into_summary(self) -> ServeSummary {
        let inner = self.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        let admitted = inner.next_seq;
        let breaker_trips = inner.breaker.trips();
        let mut trace = Trace::new(TraceConfig::default());
        let span = trace.open_span("serve");
        trace.absorb(inner.trace);
        let mut metrics = Metrics::new();
        metrics.counter("serve_requests_admitted").add(admitted);
        metrics.counter("serve_requests_shed").add(inner.shed);
        metrics.counter("serve_request_errors").add(inner.errors);
        metrics
            .counter("serve_degraded_requests")
            .add(inner.degraded_requests);
        metrics.counter("serve_breaker_trips").add(breaker_trips);
        metrics.emit_into(&mut trace);
        trace.close_span(span, CostUnit::Requests, admitted);
        ServeSummary {
            admitted,
            completed: inner.next_commit,
            shed: inner.shed,
            errors: inner.errors,
            degraded_requests: inner.degraded_requests,
            breaker_trips,
            shutdown: inner.saw_shutdown,
            trace,
        }
    }
}

/// Runs the full serving loop over an input/output pair: a reader
/// admitting newline-delimited requests, `config.workers` workers, and
/// one committer writing responses in admission order. Returns after a
/// graceful drain (EOF or a `shutdown` control): admission stops,
/// in-flight work finishes, and the output is flushed.
///
/// # Errors
///
/// Propagates the first read or write failure.
pub fn run_pipe<H, R, W>(
    handler: &H,
    config: ServerConfig,
    reader: R,
    writer: &mut W,
) -> io::Result<ServeSummary>
where
    H: RequestHandler,
    R: BufRead,
    W: Write + Send,
{
    let server = Server::new(config);
    let workers = config.workers.max(1);
    let mut read_error: Option<io::Error> = None;
    let mut write_result: io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| server.worker_loop(handler));
        }
        // The committer owns the writer for the duration of the drain so
        // responses stream out as they commit.
        let committer = scope.spawn(|| server.commit_loop(writer));
        for line in reader.lines() {
            match line {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if !server.admit(handler, &line) {
                        break;
                    }
                }
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            }
        }
        server.finish_input();
        write_result = match committer.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("committer thread panicked")),
        };
    });
    if let Some(e) = read_error {
        return Err(e);
    }
    write_result?;
    Ok(server.into_summary())
}

/// Serves connections on a Unix socket sequentially: each connection
/// runs the full pipe protocol (with worker-level concurrency *within*
/// the connection), and a `shutdown` control ends the accept loop after
/// draining its connection. Returns the summaries of all connections in
/// accept order.
///
/// # Errors
///
/// Propagates socket bind/accept failures and per-connection I/O
/// failures.
pub fn run_unix<H>(
    handler: &H,
    config: ServerConfig,
    path: &std::path::Path,
) -> io::Result<Vec<ServeSummary>>
where
    H: RequestHandler,
{
    // Crash-only bind: a stale socket file from a previous crash is
    // removed rather than treated as an error.
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let mut summaries = Vec::new();
    loop {
        let (stream, _addr) = listener.accept()?;
        let reader = io::BufReader::new(stream.try_clone()?);
        let mut writer = io::BufWriter::new(stream);
        let summary = run_pipe(handler, config, reader, &mut writer)?;
        let done = summary.shutdown;
        summaries.push(summary);
        if done {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Execution;

    /// Echo handler: `job:<n>` responds `ok:<seq>:<n>`, `fail:<n>`
    /// reports an estimator failure, `bad` fails to parse.
    struct Echo;

    impl RequestHandler for Echo {
        type Job = (String, bool);

        fn parse(&self, line: &str) -> ParseOutcome<Self::Job> {
            if line == "shutdown" {
                return ParseOutcome::Control(Control::Shutdown);
            }
            if let Some(rest) = line.strip_prefix("job:") {
                return ParseOutcome::Job {
                    op: "configure".to_string(),
                    job: (rest.to_string(), false),
                };
            }
            if let Some(rest) = line.strip_prefix("fail:") {
                return ParseOutcome::Job {
                    op: "configure".to_string(),
                    job: (rest.to_string(), true),
                };
            }
            ParseOutcome::Error(format!("unknown op in {line:?}"))
        }

        fn execute(&self, job: Self::Job, ctx: &ExecContext) -> Execution {
            let (payload, fail) = job;
            let fail = fail && !ctx.degraded;
            Execution {
                response: format!(
                    "{}:{}:{payload}",
                    if ctx.degraded { "degraded" } else { "ok" },
                    ctx.seq
                ),
                outcome: "ok".to_string(),
                estimator_failure: fail,
                degraded: false,
            }
        }

        fn overloaded_response(
            &self,
            seq: u64,
            queue_len: u64,
            limit: u64,
            retry_after_units: u64,
        ) -> String {
            format!("overloaded:{seq}:{queue_len}/{limit}:retry={retry_after_units}")
        }

        fn error_response(&self, seq: u64, message: &str) -> String {
            format!("error:{seq}:{message}")
        }
    }

    fn run_lines(config: ServerConfig, lines: &[&str]) -> (Vec<String>, ServeSummary) {
        let input = lines.join("\n");
        let mut out = Vec::new();
        let summary = run_pipe(&Echo, config, input.as_bytes(), &mut out).expect("pipe runs");
        let text = String::from_utf8(out).expect("utf8");
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn responses_commit_in_admission_order_at_any_worker_count() {
        let lines: Vec<String> = (0..24).map(|i| format!("job:{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let mut baseline: Option<Vec<String>> = None;
        for workers in [1, 2, 8] {
            let (responses, summary) = run_lines(
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
                &refs,
            );
            assert_eq!(summary.admitted, 24);
            assert_eq!(summary.completed, 24);
            assert_eq!(summary.shed, 0);
            match &baseline {
                None => baseline = Some(responses),
                Some(b) => assert_eq!(&responses, b, "workers = {workers}"),
            }
        }
        let baseline = baseline.expect("at least one run");
        assert_eq!(baseline[0], "ok:0:0");
        assert_eq!(baseline[23], "ok:23:23");
    }

    #[test]
    fn forced_shed_is_deterministic() {
        // Low-level API: admit everything before any worker runs, so the
        // queue occupancy at each admission is a pure function of the
        // input.
        let config = ServerConfig {
            workers: 1,
            queue_limit: 2,
            ..ServerConfig::default()
        };
        let server: Server<(String, bool)> = Server::new(config);
        for i in 0..5 {
            assert!(server.admit(&Echo, &format!("job:{i}")));
        }
        server.finish_input();
        server.worker_loop(&Echo);
        let mut out = Vec::new();
        server.commit_loop(&mut out).expect("commit");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            [
                "ok:0:0",
                "ok:1:1",
                "overloaded:2:2/2:retry=4096",
                "overloaded:3:2/2:retry=4096",
                "overloaded:4:2/2:retry=4096",
            ]
        );
        let summary = server.into_summary();
        assert_eq!(summary.shed, 3);
        assert_eq!(summary.trace.count_kind("request_shed"), 3);
    }

    #[test]
    fn parse_errors_get_typed_responses_in_sequence() {
        let (responses, summary) = run_lines(
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            &["job:a", "bad", "job:b"],
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0], "ok:0:a");
        assert!(responses[1].starts_with("error:1:"));
        assert_eq!(responses[2], "ok:2:b");
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn breaker_trips_degrades_and_recovers() {
        let config = ServerConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_requests: 2,
                halfopen_successes: 1,
            },
            ..ServerConfig::default()
        };
        let (responses, summary) = run_lines(
            config,
            &[
                "fail:a", "fail:b", // trip
                "job:c", "job:d", // degraded cooldown
                "job:e", // half-open probe closes
                "job:f", // healthy again
            ],
        );
        assert_eq!(
            responses,
            [
                "ok:0:a",
                "ok:1:b",
                "degraded:2:c",
                "degraded:3:d",
                "ok:4:e",
                "ok:5:f",
            ]
        );
        assert_eq!(summary.breaker_trips, 1);
        assert_eq!(summary.degraded_requests, 2);
        assert_eq!(summary.trace.count_kind("breaker_transition"), 3);
    }

    #[test]
    fn shutdown_drains_and_stops_reading() {
        let (responses, summary) = run_lines(
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            &["job:a", "job:b", "shutdown", "job:never"],
        );
        assert_eq!(responses, ["ok:0:a", "ok:1:b"]);
        assert!(summary.shutdown);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.completed, 2);
    }

    #[test]
    fn summary_trace_is_balanced_and_counted() {
        let (_, summary) = run_lines(
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            &["job:a", "bad", "job:b"],
        );
        assert_eq!(summary.trace.open_span_count(), 0);
        assert_eq!(summary.trace.count_kind("request_start"), 3);
        assert_eq!(summary.trace.count_kind("request_done"), 3);
        let jsonl = summary.trace.to_jsonl_stripped();
        assert!(jsonl.contains(r#""name":"serve""#));
        assert!(jsonl.contains(r#""name":"serve_degraded_requests""#));
        assert!(jsonl.contains(r#""unit":"requests""#));
    }

    #[test]
    fn unix_socket_serves_and_shuts_down() {
        let dir = std::env::temp_dir().join(format!("pipette-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("serve.sock");
        let spath = path.clone();
        let listener = std::thread::spawn(move || {
            run_unix(
                &Echo,
                ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                },
                &spath,
            )
        });
        // Wait for the socket to appear.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"job:x\njob:y\nshutdown\n").expect("send");
        let mut text = String::new();
        let mut reader = io::BufReader::new(stream);
        io::Read::read_to_string(&mut reader, &mut text).expect("read");
        assert_eq!(text, "ok:0:x\nok:1:y\n");
        let summaries = listener.join().expect("join").expect("serve ok");
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].shutdown);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
