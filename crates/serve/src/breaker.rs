//! Circuit breaker over memory-estimator failures.
//!
//! The estimator is the one component of the pipeline with a real
//! failure mode (degenerate training under heavy sample loss), and the
//! fallback — the analytic memory model — is always available. The
//! breaker turns repeated failures into a *policy*: after
//! `failure_threshold` consecutive failures the breaker opens and every
//! subsequent request is served in analytic mode without touching the
//! estimator at all; after `cooldown_requests` degraded requests it
//! half-opens and lets probe requests through; `halfopen_successes`
//! clean probes close it again, while a single probe failure re-opens
//! it.
//!
//! All transitions are counted in *requests*, never wall time, so a
//! request stream drives the breaker through an identical state
//! sequence on every replay.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive estimator failures that open the breaker.
    pub failure_threshold: u64,
    /// Degraded requests served while open before half-opening.
    pub cooldown_requests: u64,
    /// Successful probes needed to close from half-open.
    pub halfopen_successes: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_requests: 2,
            halfopen_successes: 2,
        }
    }
}

/// The breaker's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests run the full estimator path.
    Closed,
    /// Tripped: requests are forced into analytic (degraded) mode.
    Open,
    /// Probing: requests run the full path; outcomes decide reclosure.
    HalfOpen,
}

impl BreakerState {
    /// The state's name as written to telemetry.
    pub const fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A recorded state change, emitted as a `breaker_transition` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
    /// Consecutive failures observed at the transition.
    pub failures: u64,
}

/// The request-counted circuit breaker.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u64,
    cooldown_left: u64,
    probe_successes: u64,
    trips: u64,
}

impl Breaker {
    /// A closed breaker with the given tuning. Zero thresholds are
    /// clamped to 1 so every state remains reachable and leavable.
    pub fn new(config: BreakerConfig) -> Self {
        let config = BreakerConfig {
            failure_threshold: config.failure_threshold.max(1),
            cooldown_requests: config.cooldown_requests.max(1),
            halfopen_successes: config.halfopen_successes.max(1),
        };
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            probe_successes: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the next dequeued request must be served degraded.
    pub fn degrade_next(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Records the outcome of a request that ran the *full* estimator
    /// path (closed or half-open probe). Returns the transition taken,
    /// if any.
    pub fn record_result(&mut self, estimator_failure: bool) -> Option<Transition> {
        match self.state {
            BreakerState::Closed => {
                if estimator_failure {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.config.failure_threshold {
                        return Some(self.open());
                    }
                } else {
                    self.consecutive_failures = 0;
                }
                None
            }
            BreakerState::HalfOpen => {
                if estimator_failure {
                    self.consecutive_failures += 1;
                    Some(self.open())
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.halfopen_successes {
                        let from = self.state;
                        self.state = BreakerState::Closed;
                        self.consecutive_failures = 0;
                        Some(Transition {
                            from,
                            to: BreakerState::Closed,
                            failures: 0,
                        })
                    } else {
                        None
                    }
                }
            }
            // A request decided while open never reports here; it is
            // recorded via `record_degraded_served`.
            BreakerState::Open => None,
        }
    }

    /// Records one request served degraded while the breaker was open;
    /// exhausting the cooldown half-opens it.
    pub fn record_degraded_served(&mut self) -> Option<Transition> {
        if self.state != BreakerState::Open {
            return None;
        }
        self.cooldown_left = self.cooldown_left.saturating_sub(1);
        if self.cooldown_left == 0 {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
            Some(Transition {
                from: BreakerState::Open,
                to: BreakerState::HalfOpen,
                failures: self.consecutive_failures,
            })
        } else {
            None
        }
    }

    fn open(&mut self) -> Transition {
        let from = self.state;
        self.state = BreakerState::Open;
        self.cooldown_left = self.config.cooldown_requests;
        self.trips += 1;
        Transition {
            from,
            to: BreakerState::Open,
            failures: self.consecutive_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown_requests: 2,
            halfopen_successes: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = Breaker::new(cfg());
        assert!(b.record_result(true).is_none());
        // A success resets the streak.
        assert!(b.record_result(false).is_none());
        assert!(b.record_result(true).is_none());
        let t = b
            .record_result(true)
            .expect("second consecutive failure trips");
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(t.failures, 2);
        assert!(b.degrade_next());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn cooldown_half_opens_and_probes_close() {
        let mut b = Breaker::new(cfg());
        b.record_result(true);
        b.record_result(true);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.record_degraded_served().is_none());
        let t = b.record_degraded_served().expect("cooldown exhausted");
        assert_eq!(t.to, BreakerState::HalfOpen);
        assert!(!b.degrade_next(), "half-open lets probes through");
        assert!(b.record_result(false).is_none());
        let t = b.record_result(false).expect("enough probes close");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = Breaker::new(cfg());
        b.record_result(true);
        b.record_result(true);
        b.record_degraded_served();
        b.record_degraded_served();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let t = b.record_result(true).expect("probe failure reopens");
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn zero_thresholds_are_clamped() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown_requests: 0,
            halfopen_successes: 0,
        });
        let t = b.record_result(true).expect("threshold clamps to 1");
        assert_eq!(t.to, BreakerState::Open);
        let t = b.record_degraded_served().expect("cooldown clamps to 1");
        assert_eq!(t.to, BreakerState::HalfOpen);
        let t = b.record_result(false).expect("single probe closes");
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn replay_is_deterministic() {
        let outcomes = [true, true, false, true, true, false, false];
        let run = |outcomes: &[bool]| {
            let mut b = Breaker::new(cfg());
            let mut states = vec![b.state()];
            for &fail in outcomes {
                if b.degrade_next() {
                    b.record_degraded_served();
                } else {
                    b.record_result(fail);
                }
                states.push(b.state());
            }
            states
        };
        assert_eq!(run(&outcomes), run(&outcomes));
    }
}
