//! The request vocabulary: how the server loop talks to whatever
//! actually executes jobs.

/// Server-level control operations recognized at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Stop admitting, drain in-flight work, flush, and exit.
    Shutdown,
}

/// What one input line parsed into.
#[derive(Debug)]
pub enum ParseOutcome<J> {
    /// A runnable job. `op` names the operation for telemetry
    /// (`"configure"`, `"drill"`, …).
    Job {
        /// Operation name recorded in the `request_start` event.
        op: String,
        /// The parsed job, handed to [`RequestHandler::execute`].
        job: J,
    },
    /// A control operation consumed by the server itself (no sequence
    /// number, no response line).
    Control(Control),
    /// The line failed to parse; the server commits an error response in
    /// sequence without dispatching a worker.
    Error(String),
}

/// Execution context the server threads into [`RequestHandler::execute`].
#[derive(Debug, Clone, Copy)]
pub struct ExecContext {
    /// Logical sequence number of the request (admission order).
    pub seq: u64,
    /// Whether the circuit breaker has forced this request into degraded
    /// (analytic-memory) mode. The handler must skip estimator training
    /// and say so in its response.
    pub degraded: bool,
}

/// What executing one job produced.
#[derive(Debug)]
pub struct Execution {
    /// The response line (no trailing newline).
    pub response: String,
    /// Response status for the `request_done` event (`"ok"`,
    /// `"deadline"`, `"error"`, …).
    pub outcome: String,
    /// Whether the memory-estimator path failed; feeds the circuit
    /// breaker.
    pub estimator_failure: bool,
    /// Whether the response was served from a degraded (analytic) path,
    /// either because the breaker forced it or the handler fell back on
    /// its own.
    pub degraded: bool,
}

/// Supplies the server loop with parsing, execution, and the typed
/// rejection/error responses. Implementations must be deterministic:
/// the same line and context must yield byte-identical responses.
pub trait RequestHandler: Sync {
    /// The parsed job type dispatched to workers.
    type Job: Send;

    /// Parses one input line.
    fn parse(&self, line: &str) -> ParseOutcome<Self::Job>;

    /// Executes one job. Runs on a worker thread; everything it needs
    /// for determinism must come from `job` and `ctx`.
    fn execute(&self, job: Self::Job, ctx: &ExecContext) -> Execution;

    /// The typed `overloaded` rejection for a request shed at admission.
    fn overloaded_response(
        &self,
        seq: u64,
        queue_len: u64,
        limit: u64,
        retry_after_units: u64,
    ) -> String;

    /// The typed `error` response for a line that failed to parse.
    fn error_response(&self, seq: u64, message: &str) -> String;
}
