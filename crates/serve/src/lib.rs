//! `pipette-serve`: a hardened request-serving loop for the Pipette
//! configurator.
//!
//! The configurator itself is a pure function of its inputs; this crate
//! adds the operational shell a real cluster deployment needs (§robust
//! serving): a bounded admission queue with deterministic load-shedding,
//! per-request logical deadlines with cooperative cancellation, a
//! circuit breaker that degrades estimator failures into analytic-mode
//! responses, crash-only startup, and graceful drain on shutdown.
//!
//! # Design
//!
//! The crate is deliberately decoupled from the configurator: it depends
//! only on `pipette-obs` (itself dependency-free) and the standard
//! library. The actual request vocabulary — parsing a job spec, running
//! the configurator, rendering a response — is supplied by the caller
//! through the [`RequestHandler`] trait, so the server loop can be
//! tested with trivial handlers and the CLI can plug in the full
//! configurator without a dependency cycle.
//!
//! # Determinism
//!
//! Responses are written strictly in *admission order*: every input line
//! is assigned a logical sequence number at admission, workers complete
//! out of order into a reorder buffer, and a committer drains the buffer
//! in sequence. Identical requests therefore produce byte-identical
//! response streams at any worker count. Telemetry events carry the
//! request's sequence number, so the logical order of shedding and
//! breaker decisions is recoverable from the event payloads even though
//! the *stream position* of completion-time events may vary with worker
//! scheduling.

#![warn(missing_docs)]

mod breaker;
mod request;
mod server;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use request::{Control, ExecContext, Execution, ParseOutcome, RequestHandler};
pub use server::{run_pipe, run_unix, ServeSummary, Server, ServerConfig};
