//! Cross-thread stress for the serving loop — also the ThreadSanitizer
//! target in CI (`tsan` job): every admission/worker/committer
//! interleaving these tests provoke runs under `-Z sanitizer=thread`
//! on nightly, so a data race in the queue, reorder buffer, breaker,
//! or condvar protocol fails the build even when it never corrupts a
//! byte in practice.

use pipette_serve::{
    run_pipe, Control, ExecContext, Execution, ParseOutcome, RequestHandler, ServerConfig,
};

/// `job:<n>` answers `ok:<seq>:<n>`, `fail:<n>` reports an estimator
/// failure (breaker food), `bad` fails to parse.
struct Echo;

impl RequestHandler for Echo {
    type Job = (String, bool);

    fn parse(&self, line: &str) -> ParseOutcome<Self::Job> {
        if line == "shutdown" {
            return ParseOutcome::Control(Control::Shutdown);
        }
        if let Some(rest) = line.strip_prefix("job:") {
            return ParseOutcome::Job {
                op: "configure".to_string(),
                job: (rest.to_string(), false),
            };
        }
        if let Some(rest) = line.strip_prefix("fail:") {
            return ParseOutcome::Job {
                op: "configure".to_string(),
                job: (rest.to_string(), true),
            };
        }
        ParseOutcome::Error(format!("unknown op in {line:?}"))
    }

    fn execute(&self, job: Self::Job, ctx: &ExecContext) -> Execution {
        let (payload, fail) = job;
        // Mix the payload so every request does a little real work on
        // the worker thread instead of compiling down to a constant.
        let digest = payload
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b)));
        Execution {
            response: format!(
                "{}:{}:{payload}:{digest}",
                if ctx.degraded { "degraded" } else { "ok" },
                ctx.seq
            ),
            outcome: "ok".to_string(),
            estimator_failure: fail && !ctx.degraded,
            degraded: false,
        }
    }

    fn overloaded_response(&self, seq: u64, queue_len: u64, limit: u64, retry: u64) -> String {
        format!("overloaded:{seq}:{queue_len}/{limit}:retry={retry}")
    }

    fn error_response(&self, seq: u64, message: &str) -> String {
        format!("error:{seq}:{message}")
    }
}

fn run_lines(config: ServerConfig, lines: &[String]) -> Vec<String> {
    let input = lines.join("\n");
    let mut out = Vec::new();
    run_pipe(&Echo, config, input.as_bytes(), &mut out).expect("pipe runs");
    String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// The determinism contract at stress volume: hundreds of mixed
/// requests (no estimator failures, so the breaker stays closed and the
/// stream is a pure function of the input) must commit byte-identically
/// at every worker count.
#[test]
fn committed_stream_is_byte_identical_across_worker_counts() {
    let lines: Vec<String> = (0..240)
        .map(|i| match i % 5 {
            4 => format!("bad-op-{i}"),
            _ => format!("job:payload-{i}"),
        })
        .collect();
    let mut baseline: Option<Vec<String>> = None;
    for workers in [1, 2, 4, 8] {
        let responses = run_lines(
            ServerConfig {
                workers,
                queue_limit: 512,
                ..ServerConfig::default()
            },
            &lines,
        );
        assert_eq!(responses.len(), 240, "workers = {workers}");
        match &baseline {
            None => baseline = Some(responses),
            Some(b) => assert_eq!(&responses, b, "workers = {workers}"),
        }
    }
    let baseline = baseline.expect("at least one run");
    assert!(
        baseline[0].starts_with("ok:0:payload-0:"),
        "{}",
        baseline[0]
    );
    assert!(baseline[4].starts_with("error:4:"), "{}", baseline[4]);
}

/// Breaker churn under maximum contention: a long fail-heavy stream at
/// 8 workers exercises the trip/degrade/probe transitions from many
/// threads at once. The breaker's *decisions* depend on completion
/// order, so this asserts structure — one response per request, each
/// carrying its own sequence number — not byte equality.
#[test]
fn breaker_churn_under_contention_commits_every_request_in_order() {
    let lines: Vec<String> = (0..300)
        .map(|i| {
            if i % 3 == 0 {
                format!("fail:{i}")
            } else {
                format!("job:{i}")
            }
        })
        .collect();
    let responses = run_lines(
        ServerConfig {
            workers: 8,
            queue_limit: 512,
            ..ServerConfig::default()
        },
        &lines,
    );
    assert_eq!(responses.len(), 300);
    for (i, r) in responses.iter().enumerate() {
        let seq: u64 = r
            .split(':')
            .nth(1)
            .expect("seq field")
            .parse()
            .expect("seq");
        assert_eq!(seq, i as u64, "commit order broke at {r}");
        assert!(
            r.starts_with("ok:") || r.starts_with("degraded:"),
            "unexpected response {r}"
        );
    }
}

/// Load-shedding under a tiny queue with many workers: every admitted
/// request gets exactly one committed response, sheds included, and the
/// shed responses carry the configured retry hint. Occupancy at
/// admission races with worker drain, so which requests shed varies —
/// the invariant is accounting, not the shed set.
#[test]
fn shedding_with_concurrent_drain_accounts_for_every_request() {
    let lines: Vec<String> = (0..200).map(|i| format!("job:{i}")).collect();
    let responses = run_lines(
        ServerConfig {
            workers: 4,
            queue_limit: 2,
            retry_after_units: 7,
            ..ServerConfig::default()
        },
        &lines,
    );
    assert_eq!(responses.len(), 200);
    for (i, r) in responses.iter().enumerate() {
        let seq: u64 = r
            .split(':')
            .nth(1)
            .expect("seq field")
            .parse()
            .expect("seq");
        assert_eq!(seq, i as u64, "commit order broke at {r}");
        assert!(
            r.starts_with("ok:") || (r.starts_with("overloaded:") && r.ends_with("retry=7")),
            "unexpected response {r}"
        );
    }
}

/// Shutdown mid-stream: requests after the control line are never
/// admitted, and the drain still commits everything admitted before it
/// at any worker count.
#[test]
fn shutdown_drains_admitted_work_at_any_worker_count() {
    let mut lines: Vec<String> = (0..50).map(|i| format!("job:{i}")).collect();
    lines.push("shutdown".to_string());
    lines.extend((50..80).map(|i| format!("job:{i}")));
    for workers in [1, 8] {
        let responses = run_lines(
            ServerConfig {
                workers,
                queue_limit: 512,
                ..ServerConfig::default()
            },
            &lines,
        );
        assert_eq!(responses.len(), 50, "workers = {workers}");
        assert!(responses[49].starts_with("ok:49:49:"), "{}", responses[49]);
    }
}
