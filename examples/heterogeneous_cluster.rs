//! Heterogeneity deep-dive: how much do real-world link differences cost,
//! and how much does fine-grained worker dedication win back?
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```
//!
//! Builds the same 8-node cluster twice — once with perfectly homogeneous
//! links (the datasheet fantasy) and once with realistic per-link
//! heterogeneity — then compares a fixed configuration under (a) the ideal
//! fabric, (b) the real fabric with the naive placement, and (c) the real
//! fabric after simulated-annealing worker dedication.

use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette_cluster::{presets, Cluster, HeterogeneityModel};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, ComputeProfiler, Mapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 8;
    let seed = 7;

    // Real cluster: heterogeneous attained bandwidths.
    let real = presets::mid_range(nodes).build(seed);
    // Fantasy cluster: same shape, every link at (mean-efficiency ×)
    // nominal speed.
    let mut ideal_preset = presets::mid_range(nodes);
    ideal_preset.heterogeneity = HeterogeneityModel::none();
    let ideal = ideal_preset.build(seed);

    let gpt = GptConfig::gpt_1_1b();
    let cfg = ParallelConfig::new(2, 8, 4);
    let plan = MicrobatchPlan::new(64, 2)?;
    println!(
        "configuration: {cfg}, microbatch {}, model {gpt}\n",
        plan.micro_batch
    );

    let t_ideal = measure(
        &ideal,
        &gpt,
        cfg,
        plan,
        &Mapping::identity(cfg, *ideal.topology()),
    )?;
    let naive = Mapping::identity(cfg, *real.topology());
    let t_naive = measure(&real, &gpt, cfg, plan, &naive)?;

    // Fine-grained worker dedication on the real cluster.
    let (profiled, _) = real.profiler().profile(real.bandwidth(), seed);
    let compute = ComputeProfiler::default().profile(
        real.bandwidth(),
        &real.gpu().clone(),
        &gpt,
        cfg,
        plan,
        seed,
    );
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let annealer = Annealer::new(AnnealerConfig {
        iterations: 30_000,
        ..Default::default()
    });
    let (dedicated, _, stats) = annealer.anneal(&naive, |m| model.estimate(cfg, m, plan, &compute));
    let t_dedicated = measure(&real, &gpt, cfg, plan, &dedicated)?;

    println!("ideal homogeneous fabric          : {t_ideal:.3} s/iteration");
    println!(
        "real fabric, naive placement      : {t_naive:.3} s/iteration  ({:+.1} % vs ideal)",
        (t_naive / t_ideal - 1.0) * 100.0
    );
    println!(
        "real fabric, worker dedication    : {t_dedicated:.3} s/iteration  ({:+.1} % vs naive)",
        (t_dedicated / t_naive - 1.0) * 100.0
    );
    println!(
        "\nannealer: {} evaluations, {} accepted, best found after {} improvements",
        stats.evaluations, stats.accepted, stats.improvements
    );
    println!(
        "the dedication recovers {:.0} % of the heterogeneity penalty",
        ((t_naive - t_dedicated) / (t_naive - t_ideal).max(1e-9) * 100.0).clamp(0.0, 100.0)
    );
    Ok(())
}

fn measure(
    cluster: &Cluster,
    gpt: &GptConfig,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    mapping: &Mapping,
) -> Result<f64, Box<dyn std::error::Error>> {
    Ok(ClusterRun::new(cluster, gpt)
        .execute(cfg, mapping, plan)?
        .iteration_seconds)
}
