//! Baseline shootout: Pipette vs AMP, Varuna, and hand-tuned Megatron-LM
//! on one cluster — a miniature of the paper's Fig. 6.
//!
//! ```sh
//! cargo run --release --example baseline_shootout
//! ```
//!
//! Every method recommends a configuration for the same job; every
//! recommendation is then launched on the simulated cluster (OOM failures
//! count as launch attempts, exactly like a real tuning session).

use pipette::baselines::{first_runnable, AmpConfigurator, MegatronTuner, VarunaConfigurator};
use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_sim::ClusterRun;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::mid_range(8).build(21);
    let gpt = GptConfig::gpt_1_1b();
    let global_batch = 256;
    println!("cluster: {cluster}");
    println!("job    : {gpt}, global batch {global_batch}\n");
    println!(
        "{:<22} {:>20} {:>7} {:>12} {:>9}",
        "method", "(pp,tp,dp)", "micro", "iter time", "launches"
    );

    let runner = ClusterRun::new(&cluster, &gpt);

    // Hand-tuned Megatron-LM: an expert fixes tp = 8 and tries the rest.
    if let Some(mlm) = MegatronTuner::new(&cluster, &gpt, global_batch).tune(&runner) {
        row(
            "Megatron-LM (manual)",
            &mlm.config.to_string(),
            mlm.plan.micro_batch,
            mlm.measured.iteration_seconds,
            mlm.trials,
        );
    }

    // Varuna: pipeline-parallel only, needs activation recomputation.
    let vr_runner = ClusterRun::new(&cluster, &gpt).with_recompute(true);
    let vr = VarunaConfigurator::new(&cluster, &gpt, global_batch).rank();
    if let Some(hit) = first_runnable(&vr, &vr_runner) {
        row(
            "Varuna (pp-only)",
            &hit.candidate.config.to_string(),
            hit.candidate.plan.micro_batch,
            hit.measured.iteration_seconds,
            hit.attempts,
        );
    }

    // AMP: Eq. 1 ranking over datasheet bandwidths, memory-unaware.
    let amp = AmpConfigurator::new(&cluster, &gpt, global_batch).rank();
    if let Some(hit) = first_runnable(&amp, &runner) {
        row(
            "AMP (Eq. 1)",
            &hit.candidate.config.to_string(),
            hit.candidate.plan.micro_batch,
            hit.measured.iteration_seconds,
            hit.attempts,
        );
    }

    // Pipette, full pipeline (latency + memory estimators + dedication).
    let rec = Pipette::new(&cluster, &gpt, global_batch, PipetteOptions::default()).run()?;
    let measured = runner.execute(rec.config, &rec.mapping, rec.plan)?;
    row(
        "Pipette (this crate)",
        &rec.config.to_string(),
        rec.plan.micro_batch,
        measured.iteration_seconds,
        1,
    );

    println!("\nPipette needs one launch because its memory estimator pre-filters OOM configs;");
    println!("the baselines burn launches discovering them (the paper's Fig. 5b).");
    Ok(())
}

fn row(method: &str, cfg: &str, micro: u64, seconds: f64, launches: usize) {
    println!("{method:<22} {cfg:>20} {micro:>7} {seconds:>10.3} s {launches:>9}");
}
