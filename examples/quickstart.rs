//! Quickstart: configure LLM training for a cluster in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic 4-node V100 cluster, asks Pipette for the best
//! 3D-parallel configuration of a 1.1B-parameter GPT at global batch 256,
//! and verifies the recommendation by running it on the simulated cluster.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_sim::ClusterRun;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node (32-GPU) mid-range cluster with realistic link
    // heterogeneity. The seed makes the cluster reproducible.
    let cluster = presets::mid_range(4).build(42);
    let gpt = GptConfig::gpt_1_1b();
    let global_batch = 256;

    println!("cluster : {cluster}");
    println!("model   : {gpt}");
    println!("batch   : {global_batch} samples/iteration\n");

    // Run Algorithm 1: profile the network, train the memory estimator,
    // enumerate (pp, tp, dp, microbatch), and anneal the worker mapping.
    let recommendation =
        Pipette::new(&cluster, &gpt, global_batch, PipetteOptions::default()).run()?;

    println!("recommended configuration : {}", recommendation.config);
    println!(
        "microbatch                : {} ({} microbatches/iteration)",
        recommendation.plan.micro_batch, recommendation.plan.n_microbatches
    );
    println!(
        "estimated iteration time  : {:.3} s",
        recommendation.estimated_seconds
    );
    println!(
        "candidates examined       : {} ({} rejected by the memory estimator)",
        recommendation.examined, recommendation.memory_rejected
    );
    if let Some(stats) = recommendation.anneal_stats {
        println!(
            "worker dedication         : {:.1} % latency cut over the default placement",
            stats.improvement() * 100.0
        );
    }
    println!("configuration overhead    : {}", recommendation.overhead);

    // Verify on the (simulated) cluster — the recommendation must fit in
    // GPU memory and the measured time should be near the estimate.
    let runner = ClusterRun::new(&cluster, &gpt);
    let measured = runner.execute(
        recommendation.config,
        &recommendation.mapping,
        recommendation.plan,
    )?;
    println!(
        "\nmeasured iteration time   : {:.3} s",
        measured.iteration_seconds
    );
    println!(
        "peak GPU memory           : {:.1} GiB of {:.0} GiB",
        measured.peak_memory_bytes as f64 / (1u64 << 30) as f64,
        cluster.gpu().memory_gib()
    );
    let err = (recommendation.estimated_seconds - measured.iteration_seconds).abs()
        / measured.iteration_seconds;
    println!("estimation error          : {:.1} %", err * 100.0);
    Ok(())
}
