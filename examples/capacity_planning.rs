//! Capacity planning: which models fit on this cluster, and at what cost?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! Uses Pipette's memory machinery the way an ML-platform team would when
//! sizing a training job: for a ladder of GPT scales on an 8-node A100
//! cluster, find the smallest pipeline depth that fits, the learned memory
//! estimate for its first stage, and the projected days for a 300K-step
//! run under the best configuration Pipette finds.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::report::training_days;
use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ClusterRun;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::high_end(8).build(11);
    let global_batch = 256;
    println!("cluster: {cluster}, global batch {global_batch}\n");

    let ladder = [
        GptConfig::gpt_1_1b(),
        GptConfig::gpt_3_1b(),
        GptConfig::gpt_8_1b(),
        GptConfig::gpt_11_1b(),
    ];

    println!(
        "{:<34} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "model", "min pp", "peak mem", "config", "iter time", "300K run"
    );
    for gpt in &ladder {
        let runner = ClusterRun::new(&cluster, gpt);
        // Smallest pipeline depth whose best-case (micro = 1, tp = 8)
        // memory fits — the "will it even run" question.
        let mut min_pp = None;
        for pp in [1usize, 2, 4, 8] {
            if pp > gpt.n_layers {
                break;
            }
            let dp = 64 / (pp * 8);
            if dp == 0 || global_batch % dp as u64 != 0 {
                continue;
            }
            let cfg = ParallelConfig::new(pp, 8, dp);
            let plan = MicrobatchPlan::new(global_batch / dp as u64, 1)?;
            if runner.peak_memory(cfg, plan).peak_bytes <= cluster.gpu().memory_bytes {
                min_pp = Some((pp, cfg, plan));
                break;
            }
        }
        let Some((pp, probe_cfg, probe_plan)) = min_pp else {
            println!(
                "{:<34} does not fit on this cluster at any pipeline depth",
                gpt.to_string()
            );
            continue;
        };
        let peak = runner.peak_memory(probe_cfg, probe_plan).peak_bytes;

        // Full Pipette pass for the actual recommendation.
        let options = PipetteOptions {
            seed: 3,
            ..PipetteOptions::default()
        };
        let rec = Pipette::new(&cluster, gpt, global_batch, options).run()?;
        let measured = runner.execute(rec.config, &rec.mapping, rec.plan)?;
        println!(
            "{:<34} {:>8} {:>9.1} GiB {:>12} {:>10.2} s {:>7.1} d",
            gpt.to_string(),
            pp,
            peak as f64 / (1u64 << 30) as f64,
            rec.config.to_string(),
            measured.iteration_seconds,
            training_days(measured.iteration_seconds, 300_000),
        );
    }
    Ok(())
}
