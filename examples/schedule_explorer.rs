//! Schedule explorer: visualize how the pipeline schedules differ.
//!
//! ```sh
//! cargo run --release --example schedule_explorer
//! ```
//!
//! Renders text Gantt charts of GPipe vs 1F1B for the same workload,
//! reports per-stage idle fractions, and compares the training-feature
//! variants (selective/full recomputation, ZeRO-1, interleaving) on time
//! and memory — the trade-off space the Pipette paper's §II sketches in
//! its Fig. 2.

use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::compute::{stage_bwd_time_s, stage_fwd_time_s};
use pipette_sim::engine::ChainSpec;
use pipette_sim::trace::{idle_fractions, render_gantt};
use pipette_sim::{
    ActivationMode, CommModel, IterationSim, Mapping, MemorySim, PipelineSchedule, TrainingOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::mid_range(4).build(5);
    let gpt = GptConfig::gpt_1_1b();
    let cfg = ParallelConfig::new(4, 8, 1);
    let plan = MicrobatchPlan::new(8, 1)?;
    let mapping = Mapping::identity(cfg, *cluster.topology());
    let gpu = cluster.gpu().clone();

    println!(
        "workload: {gpt}, {cfg}, {} microbatches\n",
        plan.n_microbatches
    );

    // Build the replica-0 chain and trace both schedules.
    let comm = CommModel::new(cluster.bandwidth());
    let msg = pipette_model::messages::pp_message_bytes(&gpt, plan.micro_batch);
    let chain = mapping.pipeline_chain(0, 0);
    for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
        let spec = ChainSpec {
            pp: cfg.pp,
            n_mb: plan.n_microbatches,
            schedule,
            fwd_time: (0..cfg.pp)
                .map(|s| stage_fwd_time_s(&gpt, &gpu, cfg.pp, cfg.tp, s, plan.micro_batch))
                .collect(),
            bwd_time: (0..cfg.pp)
                .map(|s| stage_bwd_time_s(&gpt, &gpu, cfg.pp, cfg.tp, s, plan.micro_batch))
                .collect(),
            fwd_comm: (0..cfg.pp - 1)
                .map(|s| comm.p2p(chain[s], chain[s + 1], msg))
                .collect(),
            bwd_comm: (0..cfg.pp - 1)
                .map(|s| comm.p2p(chain[s + 1], chain[s], msg))
                .collect(),
        };
        let (result, events) = spec.trace();
        println!("{schedule:?} — makespan {:.3} s", result.makespan);
        print!(
            "{}",
            render_gantt(&events, cfg.pp, 76).expect("traced schedule is non-empty")
        );
        let idle = idle_fractions(&events, cfg.pp);
        let idle_str: Vec<String> = idle.iter().map(|f| format!("{:.0}%", f * 100.0)).collect();
        println!("idle per stage: {}\n", idle_str.join(" "));
    }

    // Feature comparison on the full iteration (memory-efficient schedule,
    // activation/optimizer variants, interleaving).
    println!("feature comparison (same workload, full iteration with dp=1):");
    println!(
        "{:<28} {:>12} {:>12}",
        "variant", "iter time", "peak memory"
    );
    let variants: Vec<(&str, TrainingOptions)> = vec![
        ("1F1B (default)", TrainingOptions::new()),
        (
            "GPipe",
            TrainingOptions::new().with_schedule(PipelineSchedule::GPipe),
        ),
        (
            "1F1B + interleave v=2",
            TrainingOptions::new().with_interleaving(2),
        ),
        (
            "1F1B + selective recompute",
            TrainingOptions::new().with_activation(ActivationMode::Selective),
        ),
        (
            "1F1B + full recompute",
            TrainingOptions::new().with_activation(ActivationMode::FullRecompute),
        ),
    ];
    for (name, options) in variants {
        let time = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(options)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let mem = MemorySim::new(1)
            .with_options(options)
            .report(&gpt, cfg, plan)
            .peak_bytes;
        println!(
            "{name:<28} {time:>10.3} s {:>9.1} GiB",
            mem as f64 / (1u64 << 30) as f64
        );
    }
    Ok(())
}
